//! Property-based tests for D4M associative arrays and key-set algebra.

use obscor_assoc::{io, Assoc, KeySet};
use proptest::prelude::*;

fn arb_keys() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-z]{1,6}", 0..40)
}

fn arb_triples() -> impl Strategy<Value = Vec<(String, String, String)>> {
    prop::collection::vec(("[a-z]{1,5}", "[a-z]{1,4}", "[a-zA-Z0-9 ]{0,8}"), 0..60)
}

proptest! {
    /// Intersection is commutative, union is commutative.
    #[test]
    fn set_ops_commute(a in arb_keys(), b in arb_keys()) {
        let (ka, kb): (KeySet, KeySet) = (a.into_iter().collect(), b.into_iter().collect());
        prop_assert_eq!(ka.intersect(&kb), kb.intersect(&ka));
        prop_assert_eq!(ka.union(&kb), kb.union(&ka));
    }

    /// Intersection and union are idempotent and absorb.
    #[test]
    fn set_ops_idempotent(a in arb_keys()) {
        let ka: KeySet = a.into_iter().collect();
        prop_assert_eq!(ka.intersect(&ka).clone(), ka.clone());
        prop_assert_eq!(ka.union(&ka).clone(), ka.clone());
        prop_assert!(ka.minus(&ka).is_empty());
    }

    /// |A| = |A∩B| + |A\B| — the partition law behind every correlation
    /// fraction in the paper.
    #[test]
    fn partition_law(a in arb_keys(), b in arb_keys()) {
        let (ka, kb): (KeySet, KeySet) = (a.into_iter().collect(), b.into_iter().collect());
        prop_assert_eq!(ka.len(), ka.intersect(&kb).len() + ka.minus(&kb).len());
    }

    /// Inclusion-exclusion: |A∪B| = |A| + |B| − |A∩B|.
    #[test]
    fn inclusion_exclusion(a in arb_keys(), b in arb_keys()) {
        let (ka, kb): (KeySet, KeySet) = (a.into_iter().collect(), b.into_iter().collect());
        prop_assert_eq!(
            ka.union(&kb).len() + ka.intersect(&kb).len(),
            ka.len() + kb.len()
        );
    }

    /// Overlap fractions live in [0, 1].
    #[test]
    fn overlap_fraction_bounded(a in arb_keys(), b in arb_keys()) {
        let (ka, kb): (KeySet, KeySet) = (a.into_iter().collect(), b.into_iter().collect());
        if let Some(f) = ka.overlap_fraction(&kb) {
            prop_assert!((0.0..=1.0).contains(&f));
        } else {
            prop_assert!(ka.is_empty());
        }
    }

    /// Prefix selection returns exactly the matching keys.
    #[test]
    fn prefix_selection_exact(a in arb_keys(), p in "[a-z]{0,3}") {
        let ka: KeySet = a.iter().cloned().collect();
        let selected = ka.with_prefix(&p);
        for k in ka.iter() {
            prop_assert_eq!(selected.contains(k), k.starts_with(&p));
        }
    }

    /// Assoc construction: nnz never exceeds input length, and every
    /// surviving triple is retrievable.
    #[test]
    fn assoc_construction_consistent(t in arb_triples()) {
        let a = Assoc::from_triples_last(t.clone());
        prop_assert!(a.nnz() <= t.len());
        // Last-wins: the final triple of the input is always what's stored
        // at its coordinate.
        if let Some((r, c, v)) = t.last() {
            prop_assert_eq!(a.get(r, c), Some(v));
        }
        // All stored entries came from the input.
        for (r, c, v) in a.iter() {
            prop_assert!(t.iter().any(|(tr, tc, tv)| tr == r && tc == c && tv == v));
        }
    }

    /// Transpose is an involution on associative arrays.
    #[test]
    fn assoc_transpose_involution(t in arb_triples()) {
        let a = Assoc::from_triples_last(t);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    /// Row selection then union of parts reconstructs the array.
    #[test]
    fn assoc_row_partition(t in arb_triples(), split in "[a-z]") {
        let a = Assoc::from_triples_last(t);
        let lo: KeySet = a.row_keys().iter().filter(|k| *k < split.as_str()).collect();
        let hi: KeySet = a.row_keys().iter().filter(|k| *k >= split.as_str()).collect();
        let (pa, pb) = (a.rows(&lo), a.rows(&hi));
        prop_assert_eq!(pa.nnz() + pb.nnz(), a.nnz());
    }

    /// TSV round-trips any array whose values avoid the record separators.
    #[test]
    fn tsv_round_trip(t in prop::collection::vec(
        ("[a-z]{1,5}", "[a-z]{1,4}", "[a-zA-Z0-9 ]{0,8}"), 0..40)
    ) {
        let a = Assoc::from_triples_last(t);
        let text = io::to_tsv(&a);
        prop_assert_eq!(io::from_tsv(&text).unwrap(), a);
    }

    /// `and_then` produces the intersection pattern.
    #[test]
    fn and_then_is_intersection(t1 in arb_triples(), t2 in arb_triples()) {
        let a = Assoc::from_triples_last(t1);
        let b = Assoc::from_triples_last(t2);
        let c = a.and_then(&b, |x, _| x.clone());
        for (r, cl, _) in c.iter() {
            prop_assert!(a.get(r, cl).is_some() && b.get(r, cl).is_some());
        }
        prop_assert!(c.nnz() <= a.nnz().min(b.nnz()));
    }
}
