//! Out-of-core hierarchical accumulation under a memory budget.
//!
//! The in-memory [`crate::hier::HierarchicalAccumulator`] keeps every carry
//! level resident, so a window is bounded by RAM. This module removes that
//! bound: [`SpillAccumulator`] is the same binary-counter carry chain, but
//! each carry-level CSR part can be *evicted* to a [`SpillStore`] (encoded
//! with the CRC-protected codec-v2 frames from [`crate::serialize`]) and
//! *reloaded* when the carry chain or the final tree reduction needs it
//! again. A memory budget caps the tracked live bytes; when placing or
//! reloading a part would exceed it, the coldest (least recently touched)
//! resident level is spilled first.
//!
//! Degradation, not corruption: a spill frame that fails to decode after
//! bounded retry (same transient/permanent [`FaultClass`] taxonomy as the
//! archive restore path) is **quarantined** — its contiguous leaf interval
//! and packet count are recorded in the [`SpillReport`] and the build
//! continues with the surviving parts. The result is either bit-identical
//! to the in-memory build (clean media) or explicitly coverage-qualified;
//! it is never silently wrong.
//!
//! # Accounting model
//!
//! "Live bytes" counts the length-based heap footprint
//! ([`Csr::heap_bytes`]) of every resident carry part **plus** the part
//! currently in flight through the carry chain, and a merge pre-charges
//! its output before releasing its inputs — so the tracked peak honestly
//! covers the two inputs and the output of every pairwise merge. The
//! partial-leaf COO buffer (bounded by `leaf_capacity`) and transient
//! codec buffers are outside the budget; DESIGN.md §16 documents the
//! boundary.
//!
//! # Determinism
//!
//! `ewise_add` is associative and commutative and CSR is a canonical form,
//! so eviction/reload schedules cannot change the final matrix: the spilled
//! build is bit-identical to the in-memory hierarchical build and to
//! [`crate::hier::accumulate_flat`] for any budget, including budgets that
//! force an eviction on every carry. `tests/ooc_differential.rs` proves
//! this over a grid and under random budget schedules.
//!
//! # Metrics (opt-in)
//!
//! Gated behind [`enable_spill_metrics`] so the pinned default metrics
//! schema never changes: `hypersparse.spill.{bytes_written,bytes_read,
//! evictions,reloads}_total` and the per-level merge spans
//! `span.hypersparse.spill.merge.level{k}.{ns,calls_total}`, all pinned by
//! `tests/metrics_optin.rs`.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::hier::DEFAULT_LEAF_CAPACITY;
use crate::ops::ewise_add;
use crate::serialize;
use crate::value::Value;
use crate::Index;
use obscor_obs::FaultClass;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Opt in to `hypersparse.spill.*` metrics emission for this process.
///
/// Off by default so the pinned default metrics schema never changes; the
/// CLI enables it whenever `--memory-budget` is given.
pub fn enable_spill_metrics() {
    METRICS_ENABLED.store(true, Ordering::Relaxed); // ordering: set-once enable flag; callers tolerate a stale false
}

/// Whether [`enable_spill_metrics`] has been called.
pub fn spill_metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed) // ordering: enable-flag read; staleness only delays metric emission
}

/// A fault raised by a [`SpillMedium`] or by decoding a spill frame,
/// classified by the workspace fault taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpillFault {
    /// A read failed in a way a retry may fix (short read, interrupted
    /// syscall, injected transient fault).
    TransientRead,
    /// The slot does not exist in the medium (permanent).
    Missing,
    /// An OS-level I/O failure (permanent).
    Io(String),
    /// The frame was fetched but failed CRC/structural decoding
    /// (permanent).
    Corrupt(String),
}

impl SpillFault {
    /// Classify for retry/quarantine policy: only transient reads are
    /// worth retrying.
    pub fn class(&self) -> FaultClass {
        match self {
            SpillFault::TransientRead => FaultClass::Transient,
            _ => FaultClass::Permanent,
        }
    }
}

impl std::fmt::Display for SpillFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillFault::TransientRead => write!(f, "transient read failure"),
            SpillFault::Missing => write!(f, "spill slot missing"),
            SpillFault::Io(e) => write!(f, "spill i/o error: {e}"),
            SpillFault::Corrupt(e) => write!(f, "spill frame corrupt: {e}"),
        }
    }
}

impl std::error::Error for SpillFault {}

/// Byte-level storage behind a [`SpillStore`]: a flat map from slot id to
/// encoded frame. Implementations must be usable from multiple threads
/// (the streaming collector owns one per service).
pub trait SpillMedium: Send + Sync {
    /// Human-readable label for reports and errors.
    fn label(&self) -> String;
    /// Persist `bytes` under `slot`, overwriting any previous content.
    fn store(&self, slot: u64, bytes: &[u8]) -> Result<(), SpillFault>;
    /// Read back the bytes stored under `slot`.
    fn fetch(&self, slot: u64) -> Result<Vec<u8>, SpillFault>;
    /// Best-effort space reclaim once a slot is no longer needed.
    fn discard(&self, _slot: u64) {}
}

/// In-memory [`SpillMedium`] for tests and differential harnesses: same
/// code path as the disk medium, no filesystem.
#[derive(Debug, Default)]
pub struct MemMedium {
    slots: Mutex<BTreeMap<u64, Vec<u8>>>,
}

impl MemMedium {
    /// An empty in-memory medium.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, Vec<u8>>> {
        self.slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Number of slots currently stored.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no slots are stored.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Internal consistency: every stored frame is non-empty (the codec
    /// never emits zero-length encodings).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (slot, bytes) in self.lock().iter() {
            if bytes.is_empty() {
                return Err(format!("slot {slot} holds an empty frame"));
            }
        }
        Ok(())
    }
}

impl SpillMedium for MemMedium {
    fn label(&self) -> String {
        "mem".into()
    }

    fn store(&self, slot: u64, bytes: &[u8]) -> Result<(), SpillFault> {
        self.lock().insert(slot, bytes.to_vec());
        Ok(())
    }

    fn fetch(&self, slot: u64) -> Result<Vec<u8>, SpillFault> {
        self.lock().get(&slot).cloned().ok_or(SpillFault::Missing)
    }

    fn discard(&self, slot: u64) {
        self.lock().remove(&slot);
    }
}

/// Disk-backed [`SpillMedium`]: one codec-v2 file per slot inside a
/// uniquely named directory that is removed (best effort) on drop.
#[derive(Debug)]
pub struct DirMedium {
    dir: PathBuf,
}

impl DirMedium {
    /// Create a fresh uniquely named spill directory under `base`
    /// (`obscor-spill-<pid>-<n>`), creating `base` itself if needed. The
    /// directory and its frames are deleted when the medium is dropped.
    pub fn create_in(base: &Path) -> Result<Self, SpillFault> {
        std::fs::create_dir_all(base).map_err(|e| SpillFault::Io(e.to_string()))?;
        let pid = std::process::id();
        // A create_dir race (two media picking the same name) surfaces as
        // AlreadyExists; retry with the next suffix — no global counter.
        for attempt in 0..4096u32 {
            let dir = base.join(format!("obscor-spill-{pid}-{attempt}"));
            match std::fs::create_dir(&dir) {
                Ok(()) => return Ok(Self { dir }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(SpillFault::Io(e.to_string())),
            }
        }
        Err(SpillFault::Io("no unique spill directory name available".into()))
    }

    /// The directory frames are written into.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    fn slot_path(&self, slot: u64) -> PathBuf {
        self.dir.join(format!("part-{slot:08x}.obsc"))
    }

    /// Internal consistency: the spill directory still exists.
    pub fn check_invariants(&self) -> Result<(), String> {
        if !self.dir.is_dir() {
            return Err(format!("spill directory {} is gone", self.dir.display()));
        }
        Ok(())
    }
}

impl Drop for DirMedium {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl SpillMedium for DirMedium {
    fn label(&self) -> String {
        self.dir.display().to_string()
    }

    fn store(&self, slot: u64, bytes: &[u8]) -> Result<(), SpillFault> {
        std::fs::write(self.slot_path(slot), bytes).map_err(io_fault)
    }

    fn fetch(&self, slot: u64) -> Result<Vec<u8>, SpillFault> {
        std::fs::read(self.slot_path(slot)).map_err(io_fault)
    }

    fn discard(&self, slot: u64) {
        let _ = std::fs::remove_file(self.slot_path(slot));
    }
}

/// Map an OS error onto the fault taxonomy: interrupted reads are
/// transient, a missing file is [`SpillFault::Missing`], everything else
/// is a permanent I/O fault.
fn io_fault(e: std::io::Error) -> SpillFault {
    match e.kind() {
        std::io::ErrorKind::Interrupted => SpillFault::TransientRead,
        std::io::ErrorKind::NotFound => SpillFault::Missing,
        _ => SpillFault::Io(e.to_string()),
    }
}

/// Handle to one spilled CSR part.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpillHandle {
    slot: u64,
    encoded_len: u64,
}

impl SpillHandle {
    /// The medium slot this part lives in.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Encoded frame size in bytes.
    pub fn encoded_len(&self) -> u64 {
        self.encoded_len
    }
}

/// CRC-framed CSR offload store over a [`SpillMedium`], with bounded retry
/// for transient faults. Permanent faults (bad magic, CRC mismatch,
/// missing slot) are returned to the caller for quarantine.
pub struct SpillStore {
    medium: Arc<dyn SpillMedium>,
    next_slot: AtomicU64,
    max_attempts: u32,
}

impl std::fmt::Debug for SpillStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillStore")
            .field("medium", &self.medium.label())
            .field("max_attempts", &self.max_attempts)
            .finish()
    }
}

impl SpillStore {
    /// A store with the default retry budget (4 attempts, matching the
    /// archive restore policy).
    pub fn new(medium: Arc<dyn SpillMedium>) -> Self {
        Self::with_retry(medium, 4)
    }

    /// A store retrying transient faults up to `max_attempts` times.
    pub fn with_retry(medium: Arc<dyn SpillMedium>, max_attempts: u32) -> Self {
        Self { medium, next_slot: AtomicU64::new(0), max_attempts: max_attempts.max(1) }
    }

    /// Label of the underlying medium.
    pub fn label(&self) -> String {
        self.medium.label()
    }

    /// Encode `a` as a codec-v2 frame and persist it, returning the slot
    /// handle.
    pub fn store_csr<V: Value>(&self, a: &Csr<V>) -> Result<SpillHandle, SpillFault> {
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed); // ordering: slot ids only need uniqueness, not ordering
        let bytes = serialize::encode(a);
        let mut last = SpillFault::TransientRead;
        for _ in 0..self.max_attempts {
            match self.medium.store(slot, &bytes) {
                Ok(()) => {
                    if spill_metrics_enabled() {
                        obscor_obs::counter("hypersparse.spill.bytes_written_total")
                            .add(bytes.len() as u64);
                    }
                    return Ok(SpillHandle { slot, encoded_len: bytes.len() as u64 });
                }
                Err(f) if f.class() == FaultClass::Transient => last = f,
                Err(f) => return Err(f),
            }
        }
        Err(last)
    }

    /// Fetch and decode the part behind `handle`, retrying transient
    /// faults (including truncated frames) up to the retry budget.
    pub fn fetch_csr<V: Value>(&self, handle: &SpillHandle) -> Result<Csr<V>, SpillFault> {
        let mut last = SpillFault::TransientRead;
        for _ in 0..self.max_attempts {
            let bytes = match self.medium.fetch(handle.slot) {
                Ok(b) => b,
                Err(f) if f.class() == FaultClass::Transient => {
                    last = f;
                    continue;
                }
                Err(f) => return Err(f),
            };
            match serialize::decode::<V>(&bytes) {
                Ok(csr) => {
                    if spill_metrics_enabled() {
                        obscor_obs::counter("hypersparse.spill.bytes_read_total")
                            .add(bytes.len() as u64);
                    }
                    return Ok(csr);
                }
                Err(e) if e.class() == FaultClass::Transient => {
                    // A truncated frame may be a short read; retry.
                    last = SpillFault::TransientRead;
                }
                Err(e) => return Err(SpillFault::Corrupt(e.to_string())),
            }
        }
        Err(last)
    }

    /// Best-effort space reclaim for a no-longer-needed slot.
    pub fn discard(&self, handle: &SpillHandle) {
        self.medium.discard(handle.slot);
    }

    /// Internal consistency: the retry budget is positive (the
    /// constructor clamps it, so a zero here means memory corruption).
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("retry budget is zero".into());
        }
        Ok(())
    }
}

/// Configuration of a [`SpillAccumulator`].
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// Triples per leaf before compaction (same meaning as the in-memory
    /// accumulator's leaf capacity).
    pub leaf_capacity: usize,
    /// Tracked-live-byte budget; `None` means unbounded (parts still spill
    /// only if [`SpillAccumulator::set_budget`] later imposes one).
    pub memory_budget: Option<u64>,
    /// Bounded-retry budget for transient spill faults.
    pub max_attempts: u32,
}

impl Default for SpillConfig {
    fn default() -> Self {
        Self { leaf_capacity: DEFAULT_LEAF_CAPACITY, memory_budget: None, max_attempts: 4 }
    }
}

/// Lifetime counters of a [`SpillAccumulator`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Triples pushed in total.
    pub pushed: u64,
    /// Leaves compacted (or accepted pre-compacted).
    pub leaves: u64,
    /// Pairwise merges performed by the binary-counter carry chain.
    pub carry_merges: u64,
    /// Pairwise merges performed by the finalize tree reduction.
    pub tree_merges: u64,
    /// Resident parts written out to the spill store.
    pub evictions: u64,
    /// Spilled parts read back for a merge.
    pub reloads: u64,
    /// Times the tracked live bytes exceeded the budget with nothing left
    /// to evict (infeasibly small budget); the build continues and stays
    /// bit-identical, but the budget promise is void for that window.
    pub budget_overruns: u64,
    /// High-water mark of the tracked live bytes.
    pub peak_live_bytes: u64,
}

impl SpillStats {
    /// Total pairwise merges. Closed form with no quarantined parts:
    /// `leaves - popcount(leaves)` carry merges mid-stream, and after
    /// finalize the tree reduction brings the total to `leaves - 1` —
    /// *any* pairwise merge tree over `L` parts performs exactly `L - 1`
    /// merges (each merge destroys one part), which replaces the pure
    /// binary-counter identity once the finalize tree runs.
    pub fn merges(&self) -> u64 {
        self.carry_merges + self.tree_merges
    }
}

/// One part dropped from the build because its spill frame could not be
/// recovered. Parts are labelled with a contiguous leaf *span* (the merge
/// tree only ever joins adjacent runs): the span covers every leaf the
/// part folded, plus any hole a previous quarantine punched between them
/// — re-reporting a hole is idempotent, so the union of all quarantined
/// spans is exactly the set of lost leaves and a differential harness can
/// reconstruct the loss from the report alone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedPart {
    /// Carry level (`log2` of the covered leaf count) at quarantine time.
    pub level: usize,
    /// First leaf index (in push order) the part covered.
    pub first_leaf: u64,
    /// Number of consecutive leaves the part covered.
    pub n_leaves: u64,
    /// Pushed triples the part covered.
    pub packets: u64,
    /// The classified fault that exhausted retry.
    pub error: String,
}

/// Coverage-qualified outcome of a spilled build, mirroring the archive
/// restore's `RestoreReport`: exact packet accounting, the quarantined
/// parts, and the lifetime [`SpillStats`].
#[derive(Clone, Debug)]
pub struct SpillReport {
    /// Triples pushed into the accumulator over its lifetime.
    pub packets_expected: u64,
    /// Triples covered by parts that made it into the final matrix.
    pub packets_restored: u64,
    /// Parts lost to unrecoverable spill faults (empty on clean media).
    pub quarantined: Vec<QuarantinedPart>,
    /// Lifetime counters.
    pub stats: SpillStats,
}

impl SpillReport {
    /// Fraction of pushed triples represented in the final matrix, in
    /// `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.packets_expected == 0 {
            1.0
        } else {
            self.packets_restored as f64 / self.packets_expected as f64
        }
    }

    /// Whether the build lost nothing (the bit-identity case).
    pub fn is_exact(&self) -> bool {
        self.quarantined.is_empty() && self.packets_restored == self.packets_expected
    }

    /// Integer-exact internal consistency: restored plus quarantined
    /// packets account for every pushed triple, and stats agree.
    pub fn check_invariants(&self) -> Result<(), String> {
        let lost: u64 = self.quarantined.iter().map(|q| q.packets).sum();
        if self.packets_restored + lost != self.packets_expected {
            return Err(format!(
                "packet accounting broken: {} restored + {} lost != {} expected",
                self.packets_restored, lost, self.packets_expected
            ));
        }
        if self.stats.pushed != self.packets_expected {
            return Err("stats.pushed disagrees with packets_expected".into());
        }
        for q in &self.quarantined {
            if q.n_leaves == 0 {
                return Err("quarantined part covers zero leaves".into());
            }
        }
        Ok(())
    }
}

/// A carry part: its leaf interval, packet count, and residency state.
struct Part<V: Value> {
    first_leaf: u64,
    n_leaves: u64,
    packets: u64,
    state: PartState<V>,
}

enum PartState<V: Value> {
    /// In memory, charged against the budget; `touch` is the LRU clock.
    Resident { csr: Csr<V>, bytes: u64, touch: u64 },
    /// Offloaded; `est_bytes` is the heap size it had when evicted.
    Spilled { handle: SpillHandle, est_bytes: u64 },
}

impl<V: Value> Part<V> {
    fn size_est(&self) -> u64 {
        match &self.state {
            PartState::Resident { bytes, .. } => *bytes,
            PartState::Spilled { est_bytes, .. } => *est_bytes,
        }
    }
}

/// A loaded part ready to merge.
struct Loaded<V: Value> {
    csr: Csr<V>,
    bytes: u64,
    first_leaf: u64,
    n_leaves: u64,
    packets: u64,
}

/// `floor(log2(n))` for `n >= 1` (`0` for `n == 0`), used to label merge
/// spans and quarantined parts by carry level.
fn floor_log2(n: u64) -> usize {
    usize::try_from(u64::BITS - 1 - n.max(1).leading_zeros()).unwrap_or(63)
}

/// Time one pairwise merge under its per-level span (opt-in).
fn timed_merge<V: Value>(level: usize, a: &Csr<V>, b: &Csr<V>) -> Csr<V> {
    let _span = if spill_metrics_enabled() {
        Some(obscor_obs::span(&format!("hypersparse.spill.merge.level{level}")))
    } else {
        None
    };
    ewise_add(a, b)
}

/// The out-of-core hierarchical accumulator: same carry chain and final
/// tree reduction as [`crate::hier::HierarchicalAccumulator`], with
/// budget-aware eviction/reload of carry parts through a [`SpillStore`].
/// See the module docs for the accounting and determinism contracts.
pub struct SpillAccumulator<V: Value> {
    leaf_capacity: usize,
    budget: Option<u64>,
    buffer: Coo<V>,
    levels: Vec<Option<Part<V>>>,
    store: SpillStore,
    clock: u64,
    live_bytes: u64,
    stats: SpillStats,
    quarantined: Vec<QuarantinedPart>,
}

impl<V: Value> std::fmt::Debug for SpillAccumulator<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillAccumulator")
            .field("leaf_capacity", &self.leaf_capacity)
            .field("budget", &self.budget)
            .field("live_bytes", &self.live_bytes)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<V: Value> SpillAccumulator<V> {
    /// Create an accumulator spilling through `medium`.
    ///
    /// # Panics
    /// Panics if `config.leaf_capacity == 0`.
    pub fn new(config: SpillConfig, medium: Arc<dyn SpillMedium>) -> Self {
        assert!(config.leaf_capacity > 0, "leaf capacity must be positive");
        Self {
            leaf_capacity: config.leaf_capacity,
            budget: config.memory_budget,
            buffer: Coo::with_capacity(config.leaf_capacity),
            levels: Vec::new(),
            store: SpillStore::with_retry(medium, config.max_attempts),
            clock: 0,
            live_bytes: 0,
            stats: SpillStats::default(),
            quarantined: Vec::new(),
        }
    }

    /// Append one triple, carrying if the leaf fills.
    #[inline]
    pub fn push(&mut self, row: Index, col: Index, val: V) {
        self.buffer.push(row, col, val);
        self.stats.pushed += 1;
        if self.buffer.len() >= self.leaf_capacity {
            self.flush_leaf();
        }
    }

    /// Append one unit-valued triple (a single packet).
    #[inline]
    pub fn push_edge(&mut self, row: Index, col: Index) {
        self.push(row, col, V::one());
    }

    /// Insert a pre-compacted CSR leaf (the streaming-ingest entry point;
    /// same counting convention as the in-memory accumulator). Empty
    /// leaves are ignored.
    pub fn push_csr_leaf(&mut self, leaf: Csr<V>) {
        if leaf.is_empty() {
            return;
        }
        self.flush_leaf();
        let packets = leaf.nnz() as u64;
        self.stats.pushed += packets;
        let first_leaf = self.stats.leaves;
        self.stats.leaves += 1;
        self.carry_in(leaf, first_leaf, packets);
    }

    /// Compact the current partial leaf and carry it up the level chain.
    pub fn flush_leaf(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let packets = self.buffer.len() as u64;
        let leaf = std::mem::replace(&mut self.buffer, Coo::with_capacity(self.leaf_capacity));
        let csr = leaf.into_csr();
        let first_leaf = self.stats.leaves;
        self.stats.leaves += 1;
        self.carry_in(csr, first_leaf, packets);
    }

    /// Replace the memory budget mid-stream (the random-budget-schedule
    /// property tests drive this) and enforce it immediately.
    pub fn set_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
        self.enforce_budget();
    }

    /// The current memory budget.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    /// Tracked live bytes right now.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Triples currently buffered in the partial leaf.
    pub fn buffered_len(&self) -> usize {
        self.buffer.len()
    }

    /// Internal consistency: partial leaf below capacity, every resident
    /// part valid, carry merges bounded by the binary-counter law, and
    /// live bytes equal to the sum over resident parts.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.buffer.len() >= self.leaf_capacity {
            return Err("partial leaf at or above capacity (missed flush)".into());
        }
        let mut resident = 0u64;
        for (k, slot) in self.levels.iter().enumerate() {
            if let Some(part) = slot {
                if part.n_leaves == 0 {
                    return Err(format!("level {k}: part covers zero leaves"));
                }
                if let PartState::Resident { csr, bytes, .. } = &part.state {
                    csr.check_invariants().map_err(|e| format!("level {k}: {e}"))?;
                    if *bytes != csr.heap_bytes() {
                        return Err(format!("level {k}: stale byte accounting"));
                    }
                    resident += bytes;
                }
            }
        }
        if resident != self.live_bytes {
            return Err(format!(
                "live bytes {} disagree with resident sum {resident}",
                self.live_bytes
            ));
        }
        if self.stats.carry_merges >= self.stats.leaves.max(1) {
            return Err("more carry merges than a binary carry chain allows".into());
        }
        Ok(())
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn charge(&mut self, bytes: u64) {
        self.live_bytes += bytes;
        if self.live_bytes > self.stats.peak_live_bytes {
            self.stats.peak_live_bytes = self.live_bytes;
        }
    }

    fn release(&mut self, bytes: u64) {
        self.live_bytes = self.live_bytes.saturating_sub(bytes);
    }

    /// Make room for `bytes` *before* charging them: evict coldest-first
    /// until the addition fits the budget, then charge. Counting the
    /// overrun here (rather than after the fact) keeps the tracked peak
    /// within the budget whenever the budget is feasible at all.
    fn reserve(&mut self, bytes: u64) {
        if let Some(budget) = self.budget {
            while self.live_bytes.saturating_add(bytes) > budget {
                match self.coldest_resident() {
                    Some(k) if self.evict_level(k) => {}
                    _ => {
                        self.stats.budget_overruns += 1;
                        break;
                    }
                }
            }
        }
        self.charge(bytes);
    }

    /// Index of the least-recently-touched resident level, if any.
    fn coldest_resident(&self) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (k, slot) in self.levels.iter().enumerate() {
            if let Some(Part { state: PartState::Resident { touch, .. }, .. }) = slot {
                if best.is_none_or(|(t, _)| *touch < t) {
                    best = Some((*touch, k));
                }
            }
        }
        best.map(|(_, k)| k)
    }

    /// Spill the resident part at level `k`. Returns `false` (leaving the
    /// part resident) if the store cannot persist it.
    fn evict_level(&mut self, k: usize) -> bool {
        let Some(part) = self.levels[k].take() else { return false };
        let Part { first_leaf, n_leaves, packets, state } = part;
        match state {
            PartState::Resident { csr, bytes, touch } => match self.store.store_csr(&csr) {
                Ok(handle) => {
                    self.stats.evictions += 1;
                    if spill_metrics_enabled() {
                        obscor_obs::counter("hypersparse.spill.evictions_total").inc();
                    }
                    self.release(bytes);
                    self.levels[k] = Some(Part {
                        first_leaf,
                        n_leaves,
                        packets,
                        state: PartState::Spilled { handle, est_bytes: bytes },
                    });
                    true
                }
                Err(_) => {
                    // The medium refused the write; keep the part resident
                    // rather than lose data — the budget is best-effort
                    // when the spill device itself fails.
                    self.levels[k] = Some(Part {
                        first_leaf,
                        n_leaves,
                        packets,
                        state: PartState::Resident { csr, bytes, touch },
                    });
                    false
                }
            },
            spilled => {
                self.levels[k] = Some(Part { first_leaf, n_leaves, packets, state: spilled });
                false
            }
        }
    }

    /// Evict coldest-first until the tracked live bytes fit the budget;
    /// count an overrun if nothing evictable remains.
    fn enforce_budget(&mut self) {
        let Some(budget) = self.budget else { return };
        while self.live_bytes > budget {
            match self.coldest_resident() {
                Some(k) if self.evict_level(k) => {}
                _ => {
                    self.stats.budget_overruns += 1;
                    break;
                }
            }
        }
    }

    /// Bring a part into memory (charging its bytes) or quarantine it.
    fn load_part(&mut self, part: Part<V>) -> Result<Loaded<V>, QuarantinedPart> {
        let Part { first_leaf, n_leaves, packets, state } = part;
        match state {
            PartState::Resident { csr, bytes, .. } => {
                Ok(Loaded { csr, bytes, first_leaf, n_leaves, packets })
            }
            PartState::Spilled { handle, .. } => match self.store.fetch_csr::<V>(&handle) {
                Ok(csr) => {
                    self.stats.reloads += 1;
                    if spill_metrics_enabled() {
                        obscor_obs::counter("hypersparse.spill.reloads_total").inc();
                    }
                    self.store.discard(&handle);
                    let bytes = csr.heap_bytes();
                    self.reserve(bytes);
                    Ok(Loaded { csr, bytes, first_leaf, n_leaves, packets })
                }
                Err(fault) => {
                    self.store.discard(&handle);
                    Err(QuarantinedPart {
                        level: floor_log2(n_leaves),
                        first_leaf,
                        n_leaves,
                        packets,
                        error: fault.to_string(),
                    })
                }
            },
        }
    }

    /// Carry one compacted leaf up the level chain (binary counter),
    /// evicting/reloading around the budget as it goes.
    fn carry_in(&mut self, leaf: Csr<V>, first_leaf: u64, packets: u64) {
        let mut carry = leaf;
        let mut carry_bytes = carry.heap_bytes();
        let mut meta = (first_leaf, 1u64, packets);
        self.reserve(carry_bytes);
        let mut k = 0usize;
        loop {
            if k == self.levels.len() {
                self.levels.push(None);
            }
            match self.levels[k].take() {
                None => {
                    let touch = self.tick();
                    self.levels[k] = Some(Part {
                        first_leaf: meta.0,
                        n_leaves: meta.1,
                        packets: meta.2,
                        state: PartState::Resident { csr: carry, bytes: carry_bytes, touch },
                    });
                    self.enforce_budget();
                    return;
                }
                Some(existing) => match self.load_part(existing) {
                    Ok(loaded) => {
                        let merged = timed_merge(k, &loaded.csr, &carry);
                        let merged_bytes = merged.heap_bytes();
                        // Reserve the output before the inputs release so
                        // the tracked peak covers the merge working set
                        // (the inputs are out of the level table, so the
                        // reservation can only evict colder levels).
                        self.reserve(merged_bytes);
                        self.release(loaded.bytes + carry_bytes);
                        carry = merged;
                        carry_bytes = merged_bytes;
                        // The existing part covers leaves before the
                        // carry's. The merged part is labelled with the
                        // full span up to the carry's end: a quarantine
                        // may have punched a hole between the two, and a
                        // span keeps later quarantine reports a superset
                        // of the true loss (holes are already reported
                        // by their own quarantine entries).
                        meta = (
                            loaded.first_leaf,
                            (meta.0 + meta.1) - loaded.first_leaf,
                            loaded.packets + meta.2,
                        );
                        self.stats.carry_merges += 1;
                        k += 1;
                    }
                    Err(q) => {
                        // The stored sibling is unrecoverable: quarantine
                        // it and let the carry take the slot — degraded
                        // coverage, never a wrong matrix.
                        self.quarantined.push(q);
                        let touch = self.tick();
                        self.levels[k] = Some(Part {
                            first_leaf: meta.0,
                            n_leaves: meta.1,
                            packets: meta.2,
                            state: PartState::Resident { csr: carry, bytes: carry_bytes, touch },
                        });
                        self.enforce_budget();
                        return;
                    }
                },
            }
        }
    }

    /// Finish: flush the partial leaf, reduce every surviving part to one
    /// matrix, and report coverage. When every part fits in the budget at
    /// once the reduction is the rayon pairwise tree
    /// ([`crate::ops::merge_all`]); otherwise an adjacent-pair tree runs
    /// sequentially, loading pairs and re-spilling intermediates so the
    /// tracked live bytes stay budgeted. Both shapes perform exactly
    /// `parts - 1` merges and yield the identical matrix.
    pub fn finalize(mut self) -> (Csr<V>, SpillReport) {
        self.flush_leaf();
        let mut work: Vec<Part<V>> = self.levels.drain(..).flatten().collect();
        // Adjacent parts in leaf order cover contiguous spans; merging
        // neighbours keeps every intermediate's span contiguous, so
        // quarantine reports stay span-exact even for intermediates.
        work.sort_by_key(|p| p.first_leaf);
        let total_est: u64 = work.iter().map(Part::size_est).sum();
        let fits = match self.budget {
            None => true,
            // merge_all's transient working set is bounded by twice the
            // input total (outputs of a round never exceed its inputs).
            Some(b) => total_est.saturating_mul(2) <= b,
        };
        let matrix = if fits {
            self.reduce_in_memory(work)
        } else {
            self.reduce_budgeted(work)
        };
        let lost: u64 = self.quarantined.iter().map(|q| q.packets).sum();
        let report = SpillReport {
            packets_expected: self.stats.pushed,
            packets_restored: self.stats.pushed.saturating_sub(lost),
            quarantined: std::mem::take(&mut self.quarantined),
            stats: self.stats,
        };
        (matrix, report)
    }

    /// Everything fits: load all parts and hand them to the rayon tree.
    fn reduce_in_memory(&mut self, work: Vec<Part<V>>) -> Csr<V> {
        let mut parts: Vec<Csr<V>> = Vec::with_capacity(work.len());
        let mut loaded_bytes = 0u64;
        for part in work {
            match self.load_part(part) {
                Ok(loaded) => {
                    loaded_bytes += loaded.bytes;
                    parts.push(loaded.csr);
                }
                Err(q) => self.quarantined.push(q),
            }
        }
        self.stats.tree_merges += (parts.len() as u64).saturating_sub(1);
        let matrix = crate::ops::merge_all(parts);
        self.release(loaded_bytes);
        self.reserve(matrix.heap_bytes());
        matrix
    }

    /// Budget-aware sequential pairwise tree: rounds of adjacent-pair
    /// merges, spilling each round's outputs whenever the tracked live
    /// bytes exceed the budget.
    fn reduce_budgeted(&mut self, mut work: Vec<Part<V>>) -> Csr<V> {
        // Park every input on the medium first: within a round the live
        // set is then exactly one pair plus its output, so the peak stays
        // at the merge working set instead of a whole round's residue.
        work = work.into_iter().map(|p| self.spill_part(p)).collect();
        while work.len() > 1 {
            let mut next: Vec<Part<V>> = Vec::with_capacity(work.len() / 2 + 1);
            let mut pending: Option<Part<V>> = None;
            for part in work {
                let Some(a) = pending.take() else {
                    pending = Some(part);
                    continue;
                };
                let a = match self.load_part(a) {
                    Ok(l) => l,
                    Err(q) => {
                        self.quarantined.push(q);
                        pending = Some(part);
                        continue;
                    }
                };
                let b = match self.load_part(part) {
                    Ok(l) => l,
                    Err(q) => {
                        self.quarantined.push(q);
                        // `a` survives: re-wrap it, park it, keep pairing.
                        let a = self.repack(a);
                        pending = Some(self.spill_part(a));
                        continue;
                    }
                };
                let level = floor_log2(a.n_leaves.max(b.n_leaves));
                let merged = timed_merge(level, &a.csr, &b.csr);
                let merged_bytes = merged.heap_bytes();
                self.reserve(merged_bytes);
                self.release(a.bytes + b.bytes);
                self.stats.tree_merges += 1;
                let touch = self.tick();
                let out = Part {
                    first_leaf: a.first_leaf,
                    // Span, not sum: quarantined holes between the pair
                    // are already reported by their own entries.
                    n_leaves: (b.first_leaf + b.n_leaves) - a.first_leaf,
                    packets: a.packets + b.packets,
                    state: PartState::Resident { csr: merged, bytes: merged_bytes, touch },
                };
                // The output is not needed again until the next round:
                // park it so the next pair starts from an empty live set.
                next.push(self.spill_part(out));
            }
            // An odd tail rejoins the reduction next round, untouched.
            next.extend(pending.take());
            work = next;
        }
        match work.pop() {
            Some(last) => match self.load_part(last) {
                Ok(loaded) => loaded.csr,
                Err(q) => {
                    self.quarantined.push(q);
                    Csr::empty()
                }
            },
            None => Csr::empty(),
        }
    }

    /// Re-wrap a loaded part as a resident [`Part`].
    fn repack(&mut self, loaded: Loaded<V>) -> Part<V> {
        let touch = self.tick();
        Part {
            first_leaf: loaded.first_leaf,
            n_leaves: loaded.n_leaves,
            packets: loaded.packets,
            state: PartState::Resident { csr: loaded.csr, bytes: loaded.bytes, touch },
        }
    }

    /// Spill a resident part immediately (finalize path); on store failure
    /// the part stays resident and the budget is best-effort.
    fn spill_part(&mut self, part: Part<V>) -> Part<V> {
        let Part { first_leaf, n_leaves, packets, state } = part;
        match state {
            PartState::Resident { csr, bytes, touch } => match self.store.store_csr(&csr) {
                Ok(handle) => {
                    self.stats.evictions += 1;
                    if spill_metrics_enabled() {
                        obscor_obs::counter("hypersparse.spill.evictions_total").inc();
                    }
                    self.release(bytes);
                    Part {
                        first_leaf,
                        n_leaves,
                        packets,
                        state: PartState::Spilled { handle, est_bytes: bytes },
                    }
                }
                Err(_) => Part {
                    first_leaf,
                    n_leaves,
                    packets,
                    state: PartState::Resident { csr, bytes, touch },
                },
            },
            spilled => Part { first_leaf, n_leaves, packets, state: spilled },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hier::accumulate_flat;

    fn triples(n: usize, seed: u64) -> Vec<(Index, Index, u64)> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (((state >> 33) % 512) as Index, ((state >> 10) % 512) as Index, 1u64)
            })
            .collect()
    }

    fn spilled(
        t: &[(Index, Index, u64)],
        leaf_capacity: usize,
        budget: Option<u64>,
    ) -> (Csr<u64>, SpillReport) {
        let cfg = SpillConfig { leaf_capacity, memory_budget: budget, max_attempts: 4 };
        let mut acc = SpillAccumulator::new(cfg, Arc::new(MemMedium::new()));
        for &(r, c, v) in t {
            acc.push(r, c, v);
        }
        acc.check_invariants().unwrap();
        acc.finalize()
    }

    #[test]
    fn unbounded_budget_matches_flat() {
        let t = triples(10_000, 42);
        let (m, report) = spilled(&t, 256, None);
        assert_eq!(m, accumulate_flat(t));
        assert!(report.is_exact());
        assert_eq!(report.stats.evictions, 0);
        report.check_invariants().unwrap();
    }

    #[test]
    fn zero_budget_forces_eviction_on_every_carry_and_stays_identical() {
        let t = triples(10_000, 7);
        let (m, report) = spilled(&t, 128, Some(0));
        assert_eq!(m, accumulate_flat(t));
        assert!(report.is_exact());
        assert!(report.stats.evictions > 0, "{:?}", report.stats);
        assert!(report.stats.reloads > 0, "{:?}", report.stats);
        report.check_invariants().unwrap();
    }

    #[test]
    fn merge_closed_form_holds_after_finalize() {
        // Any pairwise tree over L parts does exactly L - 1 merges; the
        // carry chain contributes leaves - popcount(leaves) of them
        // mid-stream and the finalize tree the remaining popcount - 1.
        for (n, cap) in [(0usize, 8usize), (7, 1), (64, 4), (100, 8), (999, 16)] {
            for budget in [None, Some(0u64), Some(1 << 16)] {
                let t = triples(n, 3);
                let cfg =
                    SpillConfig { leaf_capacity: cap, memory_budget: budget, max_attempts: 4 };
                let mut acc = SpillAccumulator::new(cfg, Arc::new(MemMedium::new()));
                for &(r, c, v) in &t {
                    acc.push(r, c, v);
                }
                let mid = acc.stats();
                assert_eq!(
                    mid.carry_merges,
                    mid.leaves - u64::from(mid.leaves.count_ones()),
                    "carry law (n={n}, cap={cap}, budget={budget:?})"
                );
                let (_, report) = acc.finalize();
                assert_eq!(
                    report.stats.merges(),
                    report.stats.leaves.saturating_sub(1),
                    "tree closed form (n={n}, cap={cap}, budget={budget:?})"
                );
            }
        }
    }

    #[test]
    fn mid_stream_budget_changes_preserve_identity() {
        let t = triples(5_000, 11);
        let cfg = SpillConfig { leaf_capacity: 64, memory_budget: None, max_attempts: 4 };
        let mut acc = SpillAccumulator::new(cfg, Arc::new(MemMedium::new()));
        for (i, &(r, c, v)) in t.iter().enumerate() {
            acc.push(r, c, v);
            match i {
                1_000 => acc.set_budget(Some(0)),
                2_500 => acc.set_budget(Some(1 << 14)),
                4_000 => acc.set_budget(None),
                _ => {}
            }
        }
        let (m, report) = acc.finalize();
        assert_eq!(m, accumulate_flat(t));
        assert!(report.is_exact());
        assert!(report.stats.evictions > 0);
    }

    #[test]
    fn feasible_budget_bounds_tracked_peak() {
        let t = triples(20_000, 19);
        let budget = 1 << 20; // 1 MiB: ample for 512-key leaves, forces order
        let (m, report) = spilled(&t, 512, Some(budget));
        assert_eq!(m, accumulate_flat(t));
        assert_eq!(report.stats.budget_overruns, 0, "{:?}", report.stats);
        assert!(report.stats.peak_live_bytes <= budget, "{:?}", report.stats);
    }

    #[test]
    fn csr_leaf_entry_point_matches_triples() {
        let t = triples(4_000, 23);
        let flat = accumulate_flat(t.clone());
        for chunk in [37usize, 256, 4_000] {
            let cfg = SpillConfig { leaf_capacity: 64, memory_budget: Some(0), max_attempts: 4 };
            let mut acc = SpillAccumulator::new(cfg, Arc::new(MemMedium::new()));
            for part in t.chunks(chunk) {
                acc.push_csr_leaf(Coo::from_triples(part.iter().copied()).into_csr());
            }
            let (m, report) = acc.finalize();
            assert_eq!(m, flat, "chunk = {chunk}");
            assert!(report.is_exact());
        }
    }

    #[test]
    fn dir_medium_round_trips_and_cleans_up() {
        let medium = DirMedium::create_in(&std::env::temp_dir()).unwrap();
        let dir = medium.path().to_path_buf();
        assert!(dir.is_dir());
        let t = triples(3_000, 5);
        let cfg = SpillConfig { leaf_capacity: 128, memory_budget: Some(0), max_attempts: 4 };
        let mut acc = SpillAccumulator::new(cfg, Arc::new(medium));
        for &(r, c, v) in &t {
            acc.push(r, c, v);
        }
        let (m, report) = acc.finalize();
        assert_eq!(m, accumulate_flat(t));
        assert!(report.stats.evictions > 0);
        // finalize consumed the accumulator (and with it the store's Arc
        // on the medium), so the directory is already gone.
        assert!(!dir.exists(), "spill dir should be removed on drop");
    }

    #[test]
    fn two_dir_media_never_collide() {
        let base = std::env::temp_dir();
        let a = DirMedium::create_in(&base).unwrap();
        let b = DirMedium::create_in(&base).unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn store_round_trips_through_codec_v2() {
        let store = SpillStore::new(Arc::new(MemMedium::new()));
        let a: Csr<u64> = Coo::from_triples(triples(1_000, 2)).into_csr();
        let h = store.store_csr(&a).unwrap();
        assert_eq!(h.encoded_len(), 28 + 16 * a.nnz() as u64);
        assert_eq!(store.fetch_csr::<u64>(&h).unwrap(), a);
    }

    #[test]
    fn corrupt_frame_is_a_permanent_fault() {
        let medium = Arc::new(MemMedium::new());
        let store = SpillStore::new(Arc::clone(&medium) as Arc<dyn SpillMedium>);
        let a: Csr<u64> = Coo::from_triples(triples(100, 2)).into_csr();
        let h = store.store_csr(&a).unwrap();
        // Flip a payload bit behind the store's back.
        let mut bytes = medium.fetch(h.slot()).unwrap();
        bytes[30] ^= 1;
        medium.store(h.slot(), &bytes).unwrap();
        let err = store.fetch_csr::<u64>(&h).unwrap_err();
        assert_eq!(err.class(), FaultClass::Permanent);
        assert!(matches!(err, SpillFault::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn missing_slot_is_missing() {
        let store = SpillStore::new(Arc::new(MemMedium::new()));
        let h = SpillHandle { slot: 99, encoded_len: 0 };
        assert_eq!(store.fetch_csr::<u64>(&h).unwrap_err(), SpillFault::Missing);
    }

    #[test]
    fn constructors_satisfy_invariants() {
        let mem = MemMedium::new();
        mem.check_invariants().unwrap();
        mem.store(0, b"x").unwrap();
        mem.check_invariants().unwrap();
        let dir = DirMedium::create_in(&std::env::temp_dir()).unwrap();
        dir.check_invariants().unwrap();
        SpillStore::new(Arc::new(MemMedium::new())).check_invariants().unwrap();
        // with_retry clamps a zero budget up to one attempt.
        let clamped = SpillStore::with_retry(Arc::new(MemMedium::new()), 0);
        clamped.check_invariants().unwrap();
    }

    #[test]
    fn floor_log2_matches_ilog2() {
        assert_eq!(floor_log2(0), 0);
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(1 << 13), 13);
        assert_eq!(floor_log2(u64::MAX), 63);
    }

    #[test]
    fn empty_accumulator_finalizes_empty() {
        let cfg = SpillConfig::default();
        let acc = SpillAccumulator::<u64>::new(cfg, Arc::new(MemMedium::new()));
        let (m, report) = acc.finalize();
        assert!(m.is_empty());
        assert!(report.is_exact());
        assert_eq!(report.packets_expected, 0);
        assert!((report.coverage() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "leaf capacity")]
    fn zero_leaf_capacity_panics() {
        let cfg = SpillConfig { leaf_capacity: 0, ..SpillConfig::default() };
        let _ = SpillAccumulator::<u64>::new(cfg, Arc::new(MemMedium::new()));
    }
}
