//! Analysis configuration: bin thresholds and fit grids.

use obscor_stats::fit::{default_mc_alpha_grid, default_mc_beta_grid};
use obscor_stats::zipf::{default_alpha_grid, default_delta_grid};
use obscor_telescope::{FaultPlan, RetryPolicy};

/// Configuration of the archive → restore matrix path: instead of
/// building each window matrix directly, serialize it into leaf matrices
/// (the paper's hierarchical LBNL archive), optionally injure them with a
/// seeded [`FaultPlan`], and rebuild through the recovering restore. The
/// default analysis path skips all of this (`AnalysisConfig::archive` is
/// `None`).
#[derive(Clone, Debug, PartialEq)]
pub struct ArchiveConfig {
    /// Leaf matrices per window archive (the paper uses `2^13` leaves of
    /// `2^17` packets; scaled runs use fewer).
    pub n_leaves: usize,
    /// Seeded fault injection applied to every window's archive before
    /// restoration; `None` archives and restores cleanly.
    pub fault_plan: Option<FaultPlan>,
    /// Retry/backoff policy of the recovering restore.
    pub retry: RetryPolicy,
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        Self { n_leaves: 16, fault_plan: None, retry: RetryPolicy::default() }
    }
}

impl ArchiveConfig {
    /// A clean archive path with `n_leaves` leaves per window.
    pub fn with_leaves(n_leaves: usize) -> Self {
        Self { n_leaves, ..Self::default() }
    }

    /// An archive path injured by `plan`.
    pub fn with_fault_plan(plan: FaultPlan) -> Self {
        Self { fault_plan: Some(plan), ..Self::default() }
    }
}

/// Configuration of the out-of-core matrix build: window matrices are
/// accumulated through the bounded-memory spill/merge scheduler
/// ([`obscor_hypersparse::SpillAccumulator`]), evicting carry-level CSR
/// parts to disk whenever tracked live bytes exceed the budget. The
/// produced matrices are bit-identical to the direct build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpillSettings {
    /// Tracked-live-byte budget for each window's hierarchical fold.
    pub memory_budget: u64,
    /// Directory spill files are created under; the system temp dir when
    /// `None`.
    pub spill_dir: Option<std::path::PathBuf>,
}

impl SpillSettings {
    /// Budgeted out-of-core build spilling to the system temp dir.
    pub fn with_budget(memory_budget: u64) -> Self {
        Self { memory_budget, spill_dir: None }
    }
}

/// Knobs of the correlation analysis. The defaults reproduce the paper's
/// procedure.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisConfig {
    /// Minimum sources a log2 degree bin must hold to enter the
    /// correlation statistics (guards the bright tail where a bin may
    /// hold one or two sources).
    pub min_bin_sources: usize,
    /// Zipf–Mandelbrot α grid for the Fig 3 fit.
    pub zm_alphas: Vec<f64>,
    /// Zipf–Mandelbrot δ grid for the Fig 3 fit.
    pub zm_deltas: Vec<f64>,
    /// Modified-Cauchy α grid for the Fig 5-8 fits.
    pub mc_alphas: Vec<f64>,
    /// Modified-Cauchy β grid for the Fig 5-8 fits.
    pub mc_betas: Vec<f64>,
    /// When set, window matrices are built through the archive → restore
    /// path (serialize to leaves, optionally fault-inject, recover) and
    /// the analysis records a [`obscor_telescope::RestoreReport`] per
    /// window. `None` (the default) builds matrices directly.
    pub archive: Option<ArchiveConfig>,
    /// When set (and `archive` is `None`), window matrices are built
    /// through the out-of-core spill path under the given memory budget
    /// and the analysis records a [`obscor_hypersparse::SpillReport`]
    /// per window. `None` (the default) builds matrices fully in memory.
    pub spill: Option<SpillSettings>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            min_bin_sources: 10,
            zm_alphas: default_alpha_grid(),
            zm_deltas: default_delta_grid(),
            mc_alphas: default_mc_alpha_grid(),
            mc_betas: default_mc_beta_grid(),
            archive: None,
            spill: None,
        }
    }
}

impl AnalysisConfig {
    /// A coarser configuration for fast tests: smaller grids, same
    /// structure.
    pub fn fast() -> Self {
        Self {
            min_bin_sources: 5,
            zm_alphas: (2..=16).map(|i| i as f64 * 0.25).collect(),
            zm_deltas: vec![0.0, 1.0, 2.0, 4.0],
            mc_alphas: (1..=16).map(|i| i as f64 * 0.25).collect(),
            mc_betas: (0..20).map(|i| 0.05 * 1.5f64.powi(i)).collect(),
            archive: None,
            spill: None,
        }
    }

    /// The same configuration, with matrices built through the archive →
    /// restore path.
    pub fn with_archive(mut self, archive: ArchiveConfig) -> Self {
        self.archive = Some(archive);
        self
    }

    /// The same configuration, with matrices built out-of-core under
    /// `spill`'s memory budget.
    pub fn with_spill(mut self, spill: SpillSettings) -> Self {
        self.spill = Some(spill);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grids_are_nonempty() {
        let c = AnalysisConfig::default();
        assert!(!c.zm_alphas.is_empty());
        assert!(!c.zm_deltas.is_empty());
        assert!(!c.mc_alphas.is_empty());
        assert!(!c.mc_betas.is_empty());
        assert!(c.min_bin_sources > 0);
    }

    #[test]
    fn fast_is_smaller_than_default() {
        let (f, d) = (AnalysisConfig::fast(), AnalysisConfig::default());
        assert!(f.zm_alphas.len() < d.zm_alphas.len());
        assert!(f.mc_alphas.len() < d.mc_alphas.len());
        assert!(f.mc_betas.len() < d.mc_betas.len());
    }

    #[test]
    fn archive_path_is_off_by_default() {
        assert!(AnalysisConfig::default().archive.is_none());
        assert!(AnalysisConfig::fast().archive.is_none());
        let with = AnalysisConfig::fast().with_archive(ArchiveConfig::with_leaves(4));
        assert_eq!(with.archive.as_ref().map(|a| a.n_leaves), Some(4));
        assert!(with.archive.unwrap().fault_plan.is_none());
        let plan = FaultPlan::new(3, 0.5).unwrap();
        let faulted = ArchiveConfig::with_fault_plan(plan.clone());
        assert_eq!(faulted.fault_plan, Some(plan));
    }

    #[test]
    fn spill_path_is_off_by_default() {
        assert!(AnalysisConfig::default().spill.is_none());
        assert!(AnalysisConfig::fast().spill.is_none());
        let with = AnalysisConfig::fast().with_spill(SpillSettings::with_budget(1 << 20));
        let spill = with.spill.unwrap();
        assert_eq!(spill.memory_budget, 1 << 20);
        assert!(spill.spill_dir.is_none());
    }
}
