//! TSV import/export for associative arrays.
//!
//! D4M's interchange format is triple-per-line TSV (`row<TAB>col<TAB>val`),
//! which is also how curated repositories publish enriched products in the
//! paper's trusted-sharing framework.

use crate::Assoc;

/// Errors from TSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsvError {
    /// A line had fewer than three tab-separated fields.
    BadLine {
        /// 1-based line number of the malformed line.
        line_no: usize,
    },
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsvError::BadLine { line_no } => write!(f, "malformed TSV triple at line {line_no}"),
        }
    }
}

impl std::error::Error for TsvError {}

/// Serialize to triple-per-line TSV, rows in key order.
pub fn to_tsv(a: &Assoc<String>) -> String {
    let mut out = String::new();
    for (r, c, v) in a.iter() {
        out.push_str(r);
        out.push('\t');
        out.push_str(c);
        out.push('\t');
        out.push_str(v);
        out.push('\n');
    }
    out
}

/// Parse triple-per-line TSV; blank lines are skipped, later duplicates win.
/// Values may themselves contain tabs (everything after the second tab).
pub fn from_tsv(text: &str) -> Result<Assoc<String>, TsvError> {
    let mut triples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (r, c, v) = match (parts.next(), parts.next(), parts.next()) {
            (Some(r), Some(c), Some(v)) => (r, c, v),
            _ => return Err(TsvError::BadLine { line_no: i + 1 }),
        };
        triples.push((r.to_string(), c.to_string(), v.to_string()));
    }
    Ok(Assoc::from_triples_last(triples))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let a = Assoc::from_triples_last(vec![
            ("r1".into(), "c1".into(), "v1".into()),
            ("r1".into(), "c2".into(), "v2".into()),
            ("r2".into(), "c1".into(), "v3".into()),
        ]);
        let text = to_tsv(&a);
        assert_eq!(from_tsv(&text).unwrap(), a);
    }

    #[test]
    fn blank_lines_skipped() {
        let a = from_tsv("r\tc\tv\n\nr2\tc\tv2\n").unwrap();
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = from_tsv("r\tc\tv\nbad line\n").unwrap_err();
        assert_eq!(err, TsvError::BadLine { line_no: 2 });
    }

    #[test]
    fn value_may_contain_tabs() {
        let a = from_tsv("r\tc\tv with\ttab\n").unwrap();
        assert_eq!(a.get("r", "c"), Some(&"v with\ttab".to_string()));
    }

    #[test]
    fn empty_input_gives_empty_array() {
        assert!(from_tsv("").unwrap().is_empty());
        assert_eq!(to_tsv(&Assoc::new()), "");
    }
}
