//! Substrate ablation: hierarchical vs flat matrix accumulation, serial
//! vs parallel COO compaction, and concurrent streaming build — the
//! design choices behind refs [34][35] of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use obscor_hypersparse::{hier, Coo, HierarchicalAccumulator, StreamingBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn synth_triples(n: usize, sources: u32) -> Vec<(u32, u32, u64)> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..n)
        .map(|_| {
            // Heavy-ish head: low source ids much more likely.
            let r: f64 = rng.random();
            let src = ((r * r * sources as f64) as u32).min(sources - 1);
            let dst = rng.random_range(0u32..1 << 24) | (44 << 24);
            (src, dst, 1u64)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let n = 1 << 20;
    let triples = synth_triples(n, 50_000);

    let mut g = c.benchmark_group("hypersparse_insert");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n as u64));

    g.bench_function("flat_single_sort", |b| {
        b.iter(|| black_box(hier::accumulate_flat(triples.iter().copied())))
    });

    for leaf_log2 in [14u32, 17] {
        g.bench_with_input(
            BenchmarkId::new("hierarchical", format!("leaf=2^{leaf_log2}")),
            &leaf_log2,
            |b, &ll| {
                b.iter(|| {
                    let mut acc = HierarchicalAccumulator::with_leaf_capacity(1 << ll);
                    acc.extend(triples.iter().copied());
                    black_box(acc.finalize())
                })
            },
        );
    }

    g.bench_function("coo_compact_serial", |b| {
        b.iter(|| {
            black_box(Coo::from_triples(triples.iter().copied()).into_csr_serial())
        })
    });
    g.bench_function("coo_compact_parallel", |b| {
        b.iter(|| {
            black_box(Coo::from_triples(triples.iter().copied()).into_csr_parallel())
        })
    });

    for workers in [2usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("streaming_concurrent", format!("{workers}w")),
            &workers,
            |b, &w| {
                b.iter(|| {
                    let mut sb = StreamingBuilder::new(w, 1 << 14, 8);
                    for chunk in triples.chunks(1 << 12) {
                        sb.send_batch(chunk.to_vec());
                    }
                    black_box(sb.finish())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
