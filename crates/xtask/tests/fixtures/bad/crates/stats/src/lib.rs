// Audit fixture: seeds a `float-eq` violation.

pub fn is_zero(x: f64) -> bool {
    x == 0.0 // seeded float-eq violation
}

pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12 // fine: epsilon comparison
}
