//! Fig 8: the relative one-month drop `1/(β+1)` as a function of source
//! packets (paper: above 20 %, rising to ~50 % near d ≈ 10^3 scaled).

use criterion::{criterion_group, criterion_main, Criterion};
use obscor_bench::{bench_nv, fixture};
use obscor_core::fitscan::{drop_by_degree, fit_curves};
use obscor_core::temporal::temporal_curves;
use obscor_core::AnalysisConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(bench_nv(), 42);
    let config = AnalysisConfig::default();
    let curves: Vec<_> = f
        .degrees
        .iter()
        .flat_map(|wd| temporal_curves(wd, &f.monthly_sources, config.min_bin_sources))
        .collect();
    let fits = fit_curves(&curves, &config);
    let series = drop_by_degree(&fits);

    eprintln!("\n=== FIG 8 (regenerated) ===");
    eprintln!("  d        one-month drop 1/(beta+1)");
    for (d, drop) in &series {
        eprintln!("  2^{:<6} {:>9.3}", (*d as f64).log2() as u32, drop);
    }

    c.bench_function("fig8/drop_by_degree", |b| {
        b.iter(|| black_box(drop_by_degree(&fits)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
