//! Every public constructor of `Assoc` and `KeySet` produces a value
//! satisfying `check_invariants`, as required by the `cargo xtask audit`
//! invariant-coverage rule, plus property tests that the invariants survive
//! the set algebra and array transforms used by the correlation pipeline.

use obscor_assoc::{Assoc, KeySet};
use proptest::prelude::*;

#[test]
fn keyset_new_satisfies_invariants() {
    assert!(KeySet::new().check_invariants().is_ok());
}

#[test]
fn keyset_from_iter_satisfies_invariants() {
    let ks = KeySet::from_iter(vec!["b".to_string(), "a".to_string(), "b".to_string()]);
    assert!(ks.check_invariants().is_ok());
    assert_eq!(ks.len(), 2);
}

#[test]
fn keyset_from_sorted_unique_satisfies_invariants() {
    let ks = KeySet::from_sorted_unique(vec!["a".to_string(), "b".to_string(), "c".to_string()]);
    assert!(ks.check_invariants().is_ok());
}

#[test]
fn assoc_new_satisfies_invariants() {
    assert!(Assoc::<String>::new().check_invariants().is_ok());
}

#[test]
fn assoc_from_triples_last_satisfies_invariants() {
    let a = Assoc::from_triples_last(vec![
        ("r2".into(), "c1".into(), "x".to_string()),
        ("r1".into(), "c2".into(), "y".to_string()),
        ("r2".into(), "c1".into(), "z".to_string()),
    ]);
    assert!(a.check_invariants().is_ok());
    assert_eq!(a.get("r2", "c1"), Some(&"z".to_string()));
}

#[test]
fn assoc_from_triples_with_satisfies_invariants() {
    let a = Assoc::from_triples_with(
        vec![
            ("r".into(), "c".into(), 1u64),
            ("r".into(), "c".into(), 2),
            ("s".into(), "c".into(), 3),
        ],
        |old, new| old + new,
    );
    assert!(a.check_invariants().is_ok());
    assert_eq!(a.get("r", "c"), Some(&3));
}

#[test]
fn assoc_from_triples_sum_satisfies_invariants() {
    let a = Assoc::from_triples_sum(vec![
        ("r".into(), "c".into(), 1.5),
        ("r".into(), "c".into(), 2.5),
    ]);
    assert!(a.check_invariants().is_ok());
    assert_eq!(a.get("r", "c"), Some(&4.0));
}

fn arb_keys() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-z]{1,5}", 0..30)
}

fn arb_triples() -> impl Strategy<Value = Vec<(String, String, String)>> {
    prop::collection::vec(("[a-z]{1,4}", "[a-z]{1,3}", "[a-z0-9]{0,6}"), 0..50)
}

proptest! {
    /// Every KeySet construction path lands in the invariant set, and the
    /// set algebra maps it into itself.
    #[test]
    fn keyset_algebra_preserves_invariants(a in arb_keys(), b in arb_keys()) {
        let ka = KeySet::from_iter(a);
        let kb = KeySet::from_iter(b);
        prop_assert!(ka.check_invariants().is_ok());
        prop_assert!(ka.intersect(&kb).check_invariants().is_ok());
        prop_assert!(ka.union(&kb).check_invariants().is_ok());
        prop_assert!(ka.minus(&kb).check_invariants().is_ok());
    }

    /// Assoc construction and its transforms (transpose, row/col selection,
    /// map) all preserve the structural invariants.
    #[test]
    fn assoc_transforms_preserve_invariants(t in arb_triples(), p in "[a-z]{0,2}") {
        let a = Assoc::from_triples_last(t);
        prop_assert!(a.check_invariants().is_ok());
        prop_assert!(a.transpose().check_invariants().is_ok());
        prop_assert!(a.rows_with_prefix(&p).check_invariants().is_ok());
        prop_assert!(a.map(|v| v.len()).check_invariants().is_ok());
    }
}
