//! Token lexer for the audit engine.
//!
//! Runs over the *blanked* source produced by [`crate::scan`] (comments and
//! string/char contents replaced by spaces, newlines kept), so every token
//! it emits is real code. Tokens carry byte spans and 1-based line numbers;
//! rules match on token kinds and texts instead of raw substrings, which is
//! what lets them tell `1.max(2)` from `1.0`, `<< 32` from `<< 320`, and
//! `MyInstant` from `Instant` without ad-hoc boundary hacks.
//!
//! The lexer is deliberately lossy where the audit does not care: raw-string
//! prefixes (`r#"`) lex as an ident plus punctuation around a [`TokKind::Str`]
//! token, and doc comments are already gone before we run.

/// The kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifiers and keywords (`fn`, `HashMap`, `x`).
    Ident,
    /// A lifetime (`'a`), tick included in the span.
    Lifetime,
    /// An integer literal, suffix glued (`123`, `0xFF`, `1u64`).
    Int,
    /// A float literal, suffix glued (`1.0`, `2.5e-3`, `1f64`).
    Float,
    /// A (blanked) string literal, quotes included.
    Str,
    /// A (blanked) char literal, ticks included.
    Char,
    /// An operator or separator, multi-byte operators merged (`::`, `<<`).
    Punct,
    /// An opening delimiter: `(`, `[`, or `{`.
    Open,
    /// A closing delimiter: `)`, `]`, or `}`.
    Close,
}

/// One token: kind, byte span into the blanked code, 1-based line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of the first byte.
    pub line: usize,
}

/// Multi-byte operators, longest first so maximal munch applies.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex blanked source into a token stream.
pub fn lex(code: &str) -> Vec<Tok> {
    let bytes = code.as_bytes();
    let mut toks: Vec<Tok> = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        // Identifier / keyword.
        if is_ident_start(b) {
            i += 1;
            while i < bytes.len() && is_ident_cont(bytes[i]) {
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, start, end: i, line });
            continue;
        }
        // Number literal.
        if b.is_ascii_digit() {
            let (end, kind) = lex_number(bytes, i, toks.last());
            toks.push(Tok { kind, start, end, line });
            i = end;
            continue;
        }
        // String literal (already blanked: no escapes remain inside).
        if b == b'"' {
            i += 1;
            while i < bytes.len() && bytes[i] != b'"' {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 1).min(bytes.len());
            toks.push(Tok { kind: TokKind::Str, start, end: i, line });
            continue;
        }
        // Char literal vs lifetime.
        if b == b'\'' {
            if i + 1 < bytes.len() && is_ident_start(bytes[i + 1]) {
                let mut j = i + 1;
                while j < bytes.len() && is_ident_cont(bytes[j]) {
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == b'\'' {
                    // Unblanked `'y'` (unit-test input): a char literal.
                    toks.push(Tok { kind: TokKind::Char, start, end: j + 1, line });
                    i = j + 1;
                } else {
                    toks.push(Tok { kind: TokKind::Lifetime, start, end: j, line });
                    i = j;
                }
                continue;
            }
            // Blanked char literal: tick, spaces, tick — all on one line.
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] == b' ' {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'\'' {
                toks.push(Tok { kind: TokKind::Char, start, end: j + 1, line });
                i = j + 1;
            } else {
                toks.push(Tok { kind: TokKind::Punct, start, end: i + 1, line });
                i += 1;
            }
            continue;
        }
        // Delimiters.
        if matches!(b, b'(' | b'[' | b'{') {
            toks.push(Tok { kind: TokKind::Open, start, end: i + 1, line });
            i += 1;
            continue;
        }
        if matches!(b, b')' | b']' | b'}') {
            toks.push(Tok { kind: TokKind::Close, start, end: i + 1, line });
            i += 1;
            continue;
        }
        // Multi-byte operators, maximal munch. Non-ASCII bytes (em-dashes
        // in char literals, unicode idents) are consumed as whole chars so
        // slicing below never lands inside a UTF-8 sequence.
        if !b.is_ascii() {
            let mut end = i + 1;
            while end < bytes.len() && (bytes[end] & 0b1100_0000) == 0b1000_0000 {
                end += 1;
            }
            toks.push(Tok { kind: TokKind::Punct, start, end, line });
            i = end;
            continue;
        }
        let rest = &code[i..];
        if let Some(op) = PUNCTS.iter().find(|op| rest.starts_with(**op)) {
            toks.push(Tok { kind: TokKind::Punct, start, end: i + op.len(), line });
            i += op.len();
            continue;
        }
        toks.push(Tok { kind: TokKind::Punct, start, end: i + 1, line });
        i += 1;
    }
    toks
}

/// Lex a number starting at `bytes[at]`; returns `(end, kind)`.
///
/// Handles `_` separators, `0x`/`0o`/`0b` prefixes, decimal points,
/// exponents, and glued suffixes (`1u64`, `1f32`). A `.` after the digit
/// run is part of the literal only when a digit follows *and* the previous
/// token is not `.` (so tuple chains `x.0.1` stay two integers) — the same
/// disambiguation rustc uses.
fn lex_number(bytes: &[u8], at: usize, prev: Option<&Tok>) -> (usize, TokKind) {
    let mut i = at;
    let mut kind = TokKind::Int;
    // Radix prefixes never carry fractional parts.
    if bytes[i] == b'0' && i + 1 < bytes.len() && matches!(bytes[i + 1], b'x' | b'o' | b'b') {
        i += 2;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        return (i, TokKind::Int);
    }
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
        i += 1;
    }
    let after_tuple_index = prev.is_some_and(|t| t.kind == TokKind::Punct && t.end == at && {
        // A `.` token directly before this number means tuple indexing.
        t.end - t.start == 1 && bytes[t.start] == b'.'
    });
    if !after_tuple_index
        && i + 1 < bytes.len()
        && bytes[i] == b'.'
        && bytes[i + 1].is_ascii_digit()
    {
        kind = TokKind::Float;
        i += 1;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
    }
    // Exponent (`1e5`, `2.5e-3`).
    if i < bytes.len()
        && matches!(bytes[i], b'e' | b'E')
        && (i + 1 < bytes.len()
            && (bytes[i + 1].is_ascii_digit()
                || (matches!(bytes[i + 1], b'+' | b'-')
                    && i + 2 < bytes.len()
                    && bytes[i + 2].is_ascii_digit())))
    {
        kind = TokKind::Float;
        i += 1;
        if matches!(bytes[i], b'+' | b'-') {
            i += 1;
        }
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
    }
    // Glued suffix: `u64`, `usize`, `f64`, ...
    if i < bytes.len() && is_ident_start(bytes[i]) {
        let suffix_start = i;
        while i < bytes.len() && is_ident_cont(bytes[i]) {
            i += 1;
        }
        if bytes[suffix_start] == b'f' {
            kind = TokKind::Float;
        }
    }
    (i, kind)
}

/// Compute, for every `Open` token, the index of its matching `Close`
/// token (and vice versa). Unmatched delimiters map to themselves.
pub fn match_delims(toks: &[Tok], code: &str) -> Vec<usize> {
    let mut matches: Vec<usize> = (0..toks.len()).collect();
    let mut stack: Vec<usize> = Vec::new();
    for (idx, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Open => stack.push(idx),
            TokKind::Close => {
                // Pop to the nearest open of the same family; tolerate
                // mismatches (macro-heavy code) by popping unconditionally.
                if let Some(open) = stack.pop() {
                    let ob = code.as_bytes()[toks[open].start];
                    let cb = code.as_bytes()[t.start];
                    let pairs = matches!(
                        (ob, cb),
                        (b'(', b')') | (b'[', b']') | (b'{', b'}')
                    );
                    if pairs {
                        matches[open] = idx;
                        matches[idx] = open;
                    } else {
                        // Put the open back: this close had no partner.
                        stack.push(open);
                    }
                }
            }
            _ => {}
        }
    }
    matches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(code: &str) -> Vec<(TokKind, String)> {
        lex(code).into_iter().map(|t| (t.kind, code[t.start..t.end].to_string())).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = texts("let x = a::b(c);");
        let strs: Vec<&str> = t.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(strs, vec!["let", "x", "=", "a", "::", "b", "(", "c", ")", ";"]);
        assert_eq!(t[4].0, TokKind::Punct);
        assert_eq!(t[6].0, TokKind::Open);
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let t = texts("1 1.0 2.5e-3 1e5 0xFF 1_000 1u64 1f32 7usize");
        let kinds: Vec<TokKind> = t.iter().map(|(k, _)| *k).collect();
        use TokKind::{Float, Int};
        assert_eq!(kinds, vec![Int, Float, Float, Float, Int, Int, Int, Float, Int]);
    }

    #[test]
    fn tuple_index_chains_are_integers() {
        let t = texts("x.0.1");
        let kinds: Vec<TokKind> = t.iter().map(|(k, _)| *k).collect();
        use TokKind::{Ident, Int, Punct};
        assert_eq!(kinds, vec![Ident, Punct, Int, Punct, Int]);
    }

    #[test]
    fn method_on_int_literal_is_not_a_float() {
        let t = texts("1.max(2)");
        assert_eq!(t[0].0, TokKind::Int);
        assert_eq!(t[0].1, "1");
        assert_eq!(t[1].1, ".");
    }

    #[test]
    fn shift_operators_merge() {
        let t = texts("a << 32 >> 2 <<= 1");
        let strs: Vec<&str> = t.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(strs, vec!["a", "<<", "32", ">>", "2", "<<=", "1"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = texts("fn f<'a>(x: &'a str) { ' ' }");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "'a"));
        assert!(t.iter().any(|(k, _)| *k == TokKind::Char));
        let u = texts("'y'");
        assert_eq!(u[0].0, TokKind::Char);
    }

    #[test]
    fn blanked_strings_are_single_tokens() {
        let t = texts("f(\"      \") + 1");
        assert_eq!(t[2].0, TokKind::Str);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn delimiter_matching() {
        let code = "f(a[b{c}d])";
        let toks = lex(code);
        let m = match_delims(&toks, code);
        // `(` at index 1 matches `)` at the last index.
        assert_eq!(m[1], toks.len() - 1);
        assert_eq!(m[toks.len() - 1], 1);
        // `{` matches `}`.
        let open_brace = toks
            .iter()
            .position(|t| t.kind == TokKind::Open && &code[t.start..t.end] == "{")
            .expect("has brace");
        assert_eq!(&code[toks[m[open_brace]].start..toks[m[open_brace]].end], "}");
    }
}
