//! Degree histograms `n_t(d)` and their derived probabilities.

use std::collections::BTreeMap;

/// Histogram of a positive-integer network quantity ("degree" `d` in the
/// paper: source packets, fan-out, etc.).
///
/// Stores exact per-value counts in sorted order, from which the paper's
/// probability `p_t(d)`, cumulative probability `P_t(d)`, and `d_max` are
/// derived.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegreeHistogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl DegreeHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of observed degrees. Zero degrees are
    /// rejected (a source with no packets is not a source).
    ///
    /// # Panics
    /// Panics on a zero degree.
    pub fn from_degrees<I: IntoIterator<Item = u64>>(degrees: I) -> Self {
        let mut h = Self::new();
        for d in degrees {
            h.add(d);
        }
        h
    }

    /// Record one observation of degree `d`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn add(&mut self, d: u64) {
        assert!(d > 0, "degrees are positive by construction");
        *self.counts.entry(d).or_insert(0) += 1;
        self.total += 1;
    }

    /// Record `n` observations of degree `d`.
    pub fn add_count(&mut self, d: u64, n: u64) {
        assert!(d > 0, "degrees are positive by construction");
        if n == 0 {
            return;
        }
        *self.counts.entry(d).or_insert(0) += n;
        self.total += n;
    }

    /// The count `n_t(d)`.
    pub fn count(&self, d: u64) -> u64 {
        self.counts.get(&d).copied().unwrap_or(0)
    }

    /// Total observations `Σ_d n_t(d)` (the normalization factor).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct degree values observed.
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }

    /// The largest observed degree `d_max`.
    pub fn d_max(&self) -> u64 {
        self.counts.keys().next_back().copied().unwrap_or(0)
    }

    /// The probability `p_t(d) = n_t(d) / Σ n_t`.
    pub fn probability(&self, d: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count(d) as f64 / self.total as f64
    }

    /// The cumulative probability `P_t(d) = Σ_{i ≤ d} p_t(i)`.
    pub fn cumulative(&self, d: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let below: u64 = self.counts.range(..=d).map(|(_, &c)| c).sum();
        below as f64 / self.total as f64
    }

    /// Iterate `(degree, count)` in increasing degree order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&d, &c)| (d, c))
    }

    /// Mean degree.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u128 = self.counts.iter().map(|(&d, &c)| d as u128 * c as u128).sum();
        sum as f64 / self.total as f64
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &DegreeHistogram) {
        for (d, c) in other.iter() {
            self.add_count(d, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DegreeHistogram {
        DegreeHistogram::from_degrees(vec![1, 1, 1, 2, 4, 4, 8])
    }

    #[test]
    fn counts_and_total() {
        let h = sample();
        assert_eq!(h.count(1), 3);
        assert_eq!(h.count(4), 2);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.total(), 7);
        assert_eq!(h.support_size(), 4);
        assert_eq!(h.d_max(), 8);
    }

    #[test]
    fn probabilities_normalize() {
        let h = sample();
        let mass: f64 = h.iter().map(|(d, _)| h.probability(d)).sum();
        assert!((mass - 1.0).abs() < 1e-12);
        assert!((h.probability(1) - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_is_monotone_and_reaches_one() {
        let h = sample();
        assert!((h.cumulative(h.d_max()) - 1.0).abs() < 1e-12);
        assert!(h.cumulative(1) <= h.cumulative(2));
        assert!((h.cumulative(2) - 4.0 / 7.0).abs() < 1e-12);
        assert_eq!(h.cumulative(0), 0.0);
    }

    #[test]
    fn empty_histogram() {
        let h = DegreeHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.d_max(), 0);
        assert_eq!(h.probability(5), 0.0);
        assert_eq!(h.cumulative(5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn mean_matches_manual() {
        let h = sample();
        let manual = (1 + 1 + 1 + 2 + 4 + 4 + 8) as f64 / 7.0;
        assert!((h.mean() - manual).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample();
        let b = DegreeHistogram::from_degrees(vec![1, 16]);
        a.merge(&b);
        assert_eq!(a.count(1), 4);
        assert_eq!(a.d_max(), 16);
        assert_eq!(a.total(), 9);
    }

    #[test]
    fn add_count_zero_is_noop() {
        let mut h = DegreeHistogram::new();
        h.add_count(5, 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.count(5), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_degree_rejected() {
        let mut h = DegreeHistogram::new();
        h.add(0);
    }
}
