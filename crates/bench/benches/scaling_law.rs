//! Scaling extension: the sources-vs-packets exponent of each window
//! (the paper's `sources ∝ N_V^{1/2}` observation) and its cost.

use criterion::{criterion_group, criterion_main, Criterion};
use obscor_bench::{bench_nv, fixture};
use obscor_core::scaling::source_scaling;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(bench_nv(), 42);

    eprintln!("\n=== SCALING: unique sources vs packets ===");
    eprintln!("window                 exponent     R^2");
    for w in &f.windows {
        if let Some(law) = source_scaling(&w.window.packets, 8) {
            eprintln!("{:<22} {:>8.3} {:>7.3}", w.label, law.exponent, law.r_squared);
        }
    }

    let w = &f.windows[0];
    let mut g = c.benchmark_group("scaling_law");
    g.sample_size(20);
    g.bench_function("source_scaling_full_window", |b| {
        b.iter(|| black_box(source_scaling(&w.window.packets, 8)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
