//! Source-file model for the audit pass.
//!
//! Rust source is loaded once and preprocessed into a form the rules can
//! scan without tripping over comments, string literals, or test code:
//!
//! * [`SourceFile::code`] is the original text with every comment and every
//!   string/char literal blanked out (replaced by spaces, newlines kept),
//!   so byte offsets and line numbers still line up with the original.
//! * [`SourceFile::test_lines`] marks lines inside `#[cfg(test)]` /
//!   `#[test]` items — project rules apply to *library* code only.
//! * [`SourceFile::allows`] carries `audit:allow(<rule>)` markers collected
//!   from comments. A marker suppresses the named rule on its own line and
//!   on the following line, so it can sit either inline or just above the
//!   code it justifies. Markers are expected to carry a trailing
//!   justification comment; the audit does not parse it, reviewers do.

use std::collections::HashSet;
use std::path::PathBuf;

/// A preprocessed Rust source file.
pub struct SourceFile {
    /// Absolute (or caller-relative) path used for reading.
    pub path: PathBuf,
    /// Workspace-relative path used in diagnostics.
    pub rel: String,
    /// Original text.
    pub raw: String,
    /// Text with comments and string/char literals blanked.
    pub code: String,
    /// 1-based line -> set of rule names allowed on that line.
    pub allows: Vec<HashSet<String>>,
    /// 1-based line -> true when the line belongs to test-only code.
    pub test_lines: Vec<bool>,
}

impl SourceFile {
    /// Load and preprocess one file. `rel` is the path shown in diagnostics.
    pub fn load(path: PathBuf, rel: String) -> std::io::Result<Self> {
        let raw = std::fs::read_to_string(&path)?;
        Ok(Self::from_source(path, rel, raw))
    }

    /// Preprocess in-memory source (used by the fixture tests).
    pub fn from_source(path: PathBuf, rel: String, raw: String) -> Self {
        let code = blank_comments_and_strings(&raw);
        let n_lines = raw.lines().count() + 1;
        let mut allows = vec![HashSet::new(); n_lines + 1];
        for (i, line) in raw.lines().enumerate() {
            for rule in parse_allow_markers(line) {
                allows[i + 1].insert(rule.clone());
                if i + 2 <= n_lines {
                    allows[i + 2].insert(rule);
                }
            }
        }
        let test_lines = mark_test_lines(&code, n_lines);
        Self { path, rel, raw, code, allows, test_lines }
    }

    /// Lines of the blanked code, 1-based alongside their line numbers.
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.code.lines().enumerate().map(|(i, l)| (i + 1, l))
    }

    /// Whether `rule` is suppressed on `line` (1-based).
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.get(line).is_some_and(|s| s.contains(rule))
    }

    /// Whether `line` (1-based) is test-only code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }
}

/// Extract every `audit:allow(<rule>)` marker on a line.
fn parse_allow_markers(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(at) = rest.find("audit:allow(") {
        let tail = &rest[at + "audit:allow(".len()..];
        if let Some(close) = tail.find(')') {
            let rule = tail[..close].trim();
            if !rule.is_empty() {
                out.push(rule.to_string());
            }
            rest = &tail[close + 1..];
        } else {
            break;
        }
    }
    out
}

/// Replace comments and string/char literal *contents* with spaces,
/// preserving newlines so line numbers are unchanged.
fn blank_comments_and_strings(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Helper closures operate on `out`: push the original byte, or a blank.
    fn blank(b: u8) -> u8 {
        if b == b'\n' {
            b'\n'
        } else {
            b' '
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        // Line comment.
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                out.push(blank(bytes[i]));
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let mut depth = 1;
            out.push(b' ');
            out.push(b' ');
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else {
                    out.push(blank(bytes[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw string literal r"..." / r#"..."# (and byte-raw br...).
        if b == b'r' || (b == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'r') {
            let start = if b == b'b' { i + 1 } else { i };
            let mut j = start + 1;
            let mut hashes = 0;
            while j < bytes.len() && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'"' && is_token_boundary(bytes, i) {
                // Emit the prefix verbatim, blank the contents.
                for &pb in &bytes[i..=j] {
                    out.push(pb);
                }
                i = j + 1;
                'raw: while i < bytes.len() {
                    if bytes[i] == b'"' {
                        let mut k = i + 1;
                        let mut seen = 0;
                        while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            for &pb in &bytes[i..k] {
                                out.push(pb);
                            }
                            i = k;
                            break 'raw;
                        }
                    }
                    out.push(blank(bytes[i]));
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary string literal (and b"...").
        if b == b'"' || (b == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'"') {
            if b == b'b' {
                out.push(b'b');
                i += 1;
            }
            out.push(b'"');
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\\' && i + 1 < bytes.len() {
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if bytes[i] == b'"' {
                    out.push(b'"');
                    i += 1;
                    break;
                } else {
                    out.push(blank(bytes[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime: 'x' or '\n' is a char; 'a (no closing
        // quote within two chars) is a lifetime.
        if b == b'\'' {
            if i + 2 < bytes.len() && bytes[i + 1] == b'\\' {
                // Escaped char literal: skip to closing quote.
                out.push(b'\'');
                i += 1;
                while i < bytes.len() && bytes[i] != b'\'' {
                    out.push(b' ');
                    i += 1;
                }
                if i < bytes.len() {
                    out.push(b'\'');
                    i += 1;
                }
                continue;
            }
            if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                out.push(b'\'');
                out.push(b' ');
                out.push(b'\'');
                i += 3;
                continue;
            }
            // Lifetime: keep the tick, scanning continues normally.
            out.push(b'\'');
            i += 1;
            continue;
        }
        out.push(b);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A raw-string prefix must not be glued to a preceding identifier
/// (`writer"x"` is not a raw string; `r"x"` after a boundary is).
fn is_token_boundary(bytes: &[u8], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = bytes[i - 1];
    !(prev.is_ascii_alphanumeric() || prev == b'_')
}

/// Mark every line covered by a `#[cfg(test)]` or `#[test]` item.
fn mark_test_lines(code: &str, n_lines: usize) -> Vec<bool> {
    let mut marked = vec![false; n_lines + 2];
    let bytes = code.as_bytes();
    let line_of = build_line_index(code);
    let mut search = 0;
    while let Some(found) = find_from(code, search, "#[cfg(test)]").or_else(|| {
        // `#[test]` fns outside a cfg(test) mod are still test code.
        find_from(code, search, "#[test]")
    }) {
        // Find the opening brace of the annotated item, then match braces.
        let mut j = found;
        while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] == b';' {
            search = found + 1;
            continue;
        }
        let mut depth = 0usize;
        let mut k = j;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let (start_line, end_line) = (line_of(found), line_of(k.min(bytes.len() - 1)));
        for line in start_line..=end_line {
            if line < marked.len() {
                marked[line] = true;
            }
        }
        search = k.max(found + 1);
    }
    marked
}

/// Earliest occurrence of either needle at/after `from`.
fn find_from(haystack: &str, from: usize, needle: &str) -> Option<usize> {
    haystack.get(from..).and_then(|h| h.find(needle)).map(|p| p + from)
}

/// Byte offset -> 1-based line number lookup.
fn build_line_index(s: &str) -> impl Fn(usize) -> usize + '_ {
    let starts: Vec<usize> = std::iter::once(0)
        .chain(s.bytes().enumerate().filter(|&(_, b)| b == b'\n').map(|(i, _)| i + 1))
        .collect();
    move |offset: usize| match starts.binary_search(&offset) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// True when `tok` occurs in `s` as a whole identifier-ish token.
pub fn has_token(s: &str, tok: &str) -> bool {
    find_token(s, tok, 0).is_some()
}

/// Offset of the first whole-token occurrence of `tok` at/after `from`.
pub fn find_token(s: &str, tok: &str, from: usize) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut at = from;
    while let Some(pos) = s.get(at..).and_then(|h| h.find(tok)).map(|p| p + at) {
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + tok.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(pos);
        }
        at = pos + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn prep(src: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from("mem.rs"), "mem.rs".into(), src.to_string())
    }

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = prep("let x = \"panic!(boo)\"; // unwrap() here\nlet y = 1;\n");
        assert!(!f.code.contains("panic!"));
        assert!(!f.code.contains("unwrap"));
        assert!(f.code.contains("let y = 1;"));
        assert_eq!(f.code.lines().count(), f.raw.lines().count());
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = prep("let p = r#\"x as u32\"#; let q = 2;\n");
        assert!(!f.code.contains("as u32"));
        assert!(f.code.contains("let q = 2;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = prep("fn f<'a>(x: &'a str) -> char { 'y' }\nlet z = '\\n';\n");
        assert!(f.code.contains("fn f<'a>(x: &'a str)"));
        assert!(!f.code.contains('y'));
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let f = prep(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
    }

    #[test]
    fn allow_markers_cover_their_line_and_the_next() {
        let src = "// audit:allow(panic-path) — justified\nx.unwrap();\ny.unwrap();\n";
        let f = prep(src);
        assert!(f.is_allowed("panic-path", 1));
        assert!(f.is_allowed("panic-path", 2));
        assert!(!f.is_allowed("panic-path", 3));
    }

    #[test]
    fn token_search_respects_boundaries() {
        assert!(has_token("x as u32", "u32"));
        assert!(!has_token("x as u32x", "u32"));
        assert!(!has_token("au32", "u32"));
        assert_eq!(find_token("u32 u32", "u32", 1), Some(4));
    }
}
