//! Forecasting: predict future observatory-outpost overlap from the
//! fitted modified-Cauchy beam model, with a held-out evaluation.
//!
//! ```sh
//! cargo run --release --example forecasting
//! ```

use obscor::anonymize::sharing::Holder;
use obscor::core::forecast::forecast_all;
use obscor::core::temporal::temporal_curves;
use obscor::core::{AnalysisConfig, WindowDegrees};
use obscor::honeyfarm::observe_all_months;
use obscor::netmodel::Scenario;

fn main() {
    let scenario = Scenario::paper_scaled(1 << 17, 71);
    let config = AnalysisConfig::default();
    println!(
        "world: {} sources; fitting on months 0..10, predicting months 10..15\n",
        scenario.population.len()
    );

    // Measure the temporal curves of the first two windows.
    let holder = Holder::new("telescope", &[5u8; 32]);
    let months = observe_all_months(&scenario);
    let monthly: Vec<_> = months.iter().map(|m| m.source_keys().clone()).collect();
    let mut curves = Vec::new();
    for w in 0..2 {
        let wd = WindowDegrees::capture(&scenario, w, &holder);
        curves.extend(temporal_curves(&wd, &monthly, 30));
    }

    let cutoff = 10;
    let evals = forecast_all(&curves, cutoff, &config);
    println!(
        "{} curves evaluated (windows early enough to leave a held-out tail)\n",
        evals.len()
    );
    println!("window                bin     model MAE  persistence MAE  winner");
    let mut wins = 0;
    for e in &evals {
        let winner = if e.model_wins() { "model" } else { "persistence" };
        if e.model_wins() {
            wins += 1;
        }
        println!(
            "{:<21} d=2^{:<3} {:>9.4} {:>16.4}  {winner}",
            e.window_label,
            e.bin,
            e.model_mae(),
            e.baseline_mae()
        );
    }
    println!(
        "\nmodified-Cauchy forecast beats persistence on {wins}/{} curves",
        evals.len()
    );

    // Show one forecast in detail.
    if let Some(e) = evals.iter().max_by_key(|e| e.held_out.len()) {
        println!(
            "\ndetail: window {} bin 2^{} (fit on months 0..{}):",
            e.window_label, e.bin, e.cutoff
        );
        println!("  month  predicted  actual");
        for ((m, p), a) in e.held_out.iter().zip(&e.predicted).zip(&e.actual) {
            println!("  {m:>5} {p:>10.3} {a:>7.3}");
        }
    }
}
