// Deterministic counterparts to the seeded concurrency violations:
// ordered iteration, documented atomics, declared enable flags, and
// integer reductions — all of which must pass the audit untouched.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

pub fn metrics_enabled() -> bool {
    // ordering: enable-flag read; staleness only delays metric emission
    METRICS_ENABLED.load(Ordering::Relaxed)
}

pub fn rows(m: &BTreeMap<u32, u64>) -> Vec<u32> {
    let mut out = Vec::new();
    for k in m.keys() {
        out.push(*k);
    }
    out
}

pub fn hash_without_ordered_sink(m: &HashMap<u32, u64>) -> u64 {
    m.values().sum()
}

pub fn hits(c: &AtomicU64) -> u64 {
    // ordering: monotonic counter snapshot; staleness is acceptable
    c.load(Ordering::Relaxed)
}
