//! CLI entry point:
//! `cargo xtask audit [--format text|json] [--root <dir>] [--baseline <file>] [--update-baseline]`.
//!
//! Exit codes: `0` clean (or all findings baselined), `1` new violations,
//! `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::baseline::{self, Baseline};

const USAGE: &str = "usage: cargo xtask audit [options]

Options:
  --format <text|json>   output format (default text); --json is an alias
  --root <dir>           workspace root to audit (default .)
  --baseline <file>      ratchet baseline: only findings NOT in the file fail
  --update-baseline      regenerate the baseline from current findings
                         (requires --baseline) and exit 0

Runs the workspace static-analysis gate. Rules:
  index-cast           truncating `as u32`/`as usize`/`as Index` casts
  panic-path           unwrap/expect/panic! in panic-free crates
  float-eq             floating-point ==/!= in stats and core::fitscan
  invariant-coverage   public constructors without check_invariants tests
  instant-timing       ad-hoc Instant/SystemTime timing outside the obs crate
  key-pack             ad-hoc `as u64` key packing outside hypersparse::keypack
  map-iter-order       HashMap/HashSet iteration order reaching ordered output
  nonassoc-reduce      rayon float reduce/fold/sum outside blessed helpers
  atomic-ordering      Ordering::* sites without an `// ordering:` note
  shared-static-mut    process-global mutable statics outside the obs registry
  allow-justification  audit:allow markers without a justification

Suppress a single site with `// audit:allow(<rule>) — justification`.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut command: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--format" => match it.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    let got = other.unwrap_or("<missing>");
                    eprintln!("error: --format expects `text` or `json`, got `{got}`\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root requires a directory argument\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --baseline requires a file argument\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--update-baseline" => update_baseline = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if command.is_none() && !arg.starts_with('-') => command = Some(arg),
            _ => {
                eprintln!("error: unrecognized argument `{arg}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if command.as_deref() != Some("audit") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    if update_baseline && baseline_path.is_none() {
        eprintln!("error: --update-baseline requires --baseline <file>\n\n{USAGE}");
        return ExitCode::from(2);
    }

    // Default root: the workspace directory `cargo xtask` runs from (cargo
    // sets the cwd to the invocation directory; the alias lives in the
    // workspace `.cargo/config.toml`, so this is the workspace root), or
    // CARGO_MANIFEST_DIR's grandparent when run via `cargo run -p xtask`.
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    let report = match xtask::audit(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: audit failed: {e}");
            return ExitCode::from(2);
        }
    };

    if update_baseline {
        let path = baseline_path.expect("checked above");
        let b = Baseline::from_diagnostics(&report.diagnostics);
        if let Err(e) = b.save(&path) {
            eprintln!("error: cannot write baseline `{}`: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "audit: baseline `{}` updated ({} entr{})",
            path.display(),
            b.entries.len(),
            if b.entries.len() == 1 { "y" } else { "ies" }
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = baseline_path {
        let b = match Baseline::load(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: cannot read baseline `{}`: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let gate = baseline::gate(&report.diagnostics, &b);
        if json {
            println!("{}", report.to_json_gated(Some(&gate)));
        } else {
            for &i in &gate.new {
                println!("{}", report.diagnostics[i].render());
            }
            if !gate.stale.is_empty() {
                println!(
                    "audit: note: {} stale baseline entr{} (fixed or moved); \
                     run --update-baseline to shrink the ratchet",
                    gate.stale.len(),
                    if gate.stale.len() == 1 { "y" } else { "ies" }
                );
            }
            if gate.new.is_empty() {
                println!(
                    "audit: clean ({} files scanned, {} baselined finding(s))",
                    report.files_scanned, gate.baselined
                );
            } else {
                println!(
                    "audit: {} new violation(s) ({} files scanned, {} baselined)",
                    gate.new.len(),
                    report.files_scanned,
                    gate.baselined
                );
            }
        }
        return if gate.new.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) };
    }

    if json {
        println!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{}", d.render());
        }
        if report.is_clean() {
            println!("audit: clean ({} files scanned)", report.files_scanned);
        } else {
            println!(
                "audit: {} violation(s) ({} files scanned)",
                report.diagnostics.len(),
                report.files_scanned
            );
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
