//! Trusted data sharing: correlating anonymized observations.
//!
//! Two observatories anonymize their source lists under private CryptoPAN
//! keys. Naive intersection of the published (anonymized) sets finds
//! nothing — then each of the paper's three trusted-sharing workflows
//! recovers the true overlap without ever co-locating raw data.
//!
//! ```sh
//! cargo run --release --example data_sharing
//! ```

use obscor::anonymize::sharing::{raw_overlap, Holder};
use obscor::anonymize::CryptoPan;
use obscor::netmodel::Scenario;
use obscor::telescope::capture_window;

fn main() {
    let scenario = Scenario::paper_scaled(1 << 15, 99);

    // Two windows, six weeks apart, play the role of two observatories.
    let w0 = capture_window(&scenario, &scenario.caida_windows[0]);
    let w1 = capture_window(&scenario, &scenario.caida_windows[1]);
    let sources = |w: &obscor::telescope::TelescopeWindow| -> Vec<u32> {
        let mut v: Vec<u32> = w.window.packets.iter().map(|p| p.src.0).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let (raw_a, raw_b) = (sources(&w0), sources(&w1));
    let truth = raw_overlap(&raw_a, &raw_b);
    println!(
        "observatory A: {} sources   observatory B: {} sources   true overlap: {}",
        raw_a.len(),
        raw_b.len(),
        truth
    );

    // Each holder anonymizes under its own key before publishing.
    let holder_a = Holder::new("telescope", &[11u8; 32]);
    let holder_b = Holder::new("honeyfarm", &[22u8; 32]);
    let pub_a = holder_a.publish(&raw_a);
    let pub_b = holder_b.publish(&raw_b);
    println!(
        "\nnaive intersection of published sets: {} (anonymization schemes differ!)",
        raw_overlap(&pub_a, &pub_b)
    );

    // Workflow 1: send-back deanonymization (what the paper used).
    let returned_a = holder_a.deanonymize_subset(&pub_a, pub_a.len()).unwrap();
    let returned_b = holder_b.deanonymize_subset(&pub_b, pub_b.len()).unwrap();
    println!(
        "workflow 1 (send-back):            overlap {} == truth {}",
        raw_overlap(&returned_a, &returned_b),
        truth
    );

    // Workflow 2: re-anonymize under a common third scheme.
    let common = CryptoPan::new(&[33u8; 32]);
    let common_a = holder_a.reanonymize_subset(&pub_a, &common, pub_a.len()).unwrap();
    let common_b = holder_b.reanonymize_subset(&pub_b, &common, pub_b.len()).unwrap();
    println!(
        "workflow 2 (common scheme):        overlap {} == truth {}",
        raw_overlap(&common_a, &common_b),
        truth
    );

    // Workflow 3: transformation tables for large sets.
    let table_a = holder_a.transformation_table(&pub_a, &common);
    let table_b = holder_b.transformation_table(&pub_b, &common);
    let mapped_a = table_a.translate_all(&pub_a);
    let mapped_b = table_b.translate_all(&pub_b);
    println!(
        "workflow 3 (transformation table): overlap {} == truth {}",
        raw_overlap(&mapped_a, &mapped_b),
        truth
    );

    // The caps that make workflow 1 "small subsets only" are enforced:
    let err = holder_a.deanonymize_subset(&pub_a, 10).unwrap_err();
    println!("\ngovernance: {err}");
}
