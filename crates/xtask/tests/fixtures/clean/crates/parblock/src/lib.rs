// `blocking-in-par` negatives: the lock is taken before the parallel
// extent begins, and only lock-free math runs on the rayon workers.

use rayon::prelude::*;
use std::sync::Mutex;

pub fn tally(items: &[u64], slot: &Mutex<u64>) -> u64 {
    let base = *slot.lock().unwrap_or_else(|e| e.into_inner());
    items.par_iter().map(|x| x + base).sum()
}
