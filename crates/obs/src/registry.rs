//! Name → metric registry, plus the process-wide global instance.
//!
//! A [`Registry`] owns three maps (counters, gauges, histograms) keyed by
//! metric name. Lookups take a `Mutex`; the returned `Arc` is lock-free to
//! update, so hot paths resolve once and record many times. The global
//! registry (via [`global`]) is what the convenience functions in the crate
//! root and [`crate::span::SpanTimer`] use; an owned `Registry` is available
//! for tests that need isolation.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};

/// A set of named metrics.
///
/// Metric names are dot-separated lowercase paths (`stage.capture.packets_total`);
/// the same name always resolves to the same metric object for the lifetime
/// of the registry. Counters, gauges, and histograms live in separate
/// namespaces, but reusing one name across kinds is confusing and the
/// snapshot schema tests treat it as a smell — don't.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// A point-in-time copy of every registered metric.
    ///
    /// Concurrent recording may land between the three map snapshots; each
    /// individual metric is read atomically, so values are never torn, only
    /// possibly from slightly different instants.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = {
            let map = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
            map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
        };
        let gauges = {
            let map = self.gauges.lock().unwrap_or_else(PoisonError::into_inner);
            map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
        };
        let histograms = {
            let map = self.histograms.lock().unwrap_or_else(PoisonError::into_inner);
            map.iter().map(|(k, v)| (k.clone(), HistogramSnapshot::of(v))).collect()
        };
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// The process-wide registry used by the crate-root convenience functions.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_metric() {
        let r = Registry::new();
        r.counter("a.total").add(3);
        r.counter("a.total").add(4);
        assert_eq!(r.counter("a.total").get(), 7);
    }

    #[test]
    fn kinds_are_separate_namespaces() {
        let r = Registry::new();
        r.counter("x").add(1);
        r.gauge("x").set(9);
        r.histogram("x").observe(5);
        let snap = r.snapshot();
        assert_eq!(snap.counters["x"], 1);
        assert_eq!(snap.gauges["x"], 9);
        assert_eq!(snap.histograms["x"].count, 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("z.last").inc();
        r.counter("a.first").inc();
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
    }

    #[test]
    fn global_is_shared() {
        global().counter("obs.test.global_is_shared").add(2);
        assert_eq!(global().counter("obs.test.global_is_shared").get(), 2);
    }
}
