//! Unit suite for the compressed bitmap substrate: container form
//! selection and hysteresis, every container-pair operation combination,
//! rank/select, the month matrix sweep, and constructor invariants.
//!
//! The whole file sits inside an explicitly `#[cfg(test)]`-marked module
//! (not just the gated `mod tests;` declaration in `mod.rs`) so the audit
//! scanner, which classifies each file independently, sees every helper
//! here as test code.

#[cfg(test)]
mod suite {

use crate::bitset::container::{Container, ARRAY_MAX, BITMAP_MIN};
use crate::bitset::{metrics, BitSet, MonthMatrix};
use crate::keys::NumKeySet;

/// Keys that land entirely in chunk 0 with the given lows.
fn set_of(lows: &[u32]) -> BitSet {
    BitSet::from_iter(lows.iter().copied())
}

fn kind_name(k: metrics::Kind) -> &'static str {
    match k {
        metrics::Kind::Array => "array",
        metrics::Kind::Bitmap => "bitmap",
        metrics::Kind::Runs => "runs",
    }
}

/// The container a freshly built single-chunk set uses.
fn only_kind(s: &BitSet) -> &'static str {
    let census = s.container_census();
    match census {
        (1, 0, 0) => "array",
        (0, 1, 0) => "bitmap",
        (0, 0, 1) => "runs",
        other => panic!("expected one container, got census {other:?}"),
    }
}

// --- constructor invariants -----------------------------------------------

#[test]
fn bitset_constructors_uphold_invariants() {
    let e = BitSet::new();
    e.check_invariants().unwrap();
    assert!(e.is_empty());

    let a = BitSet::from_iter([5u32, 1, 5, 1 << 20, 3]);
    a.check_invariants().unwrap();
    assert_eq!(a.len(), 4);

    let b = BitSet::from_sorted_unique(&[1, 2, 3, 70_000, 1 << 30]);
    b.check_invariants().unwrap();
    assert_eq!(b.len(), 5);

    let n = NumKeySet::from_iter([9u32, 7, 7, 1 << 17]);
    let c = BitSet::from_num_key_set(&n);
    c.check_invariants().unwrap();
    assert_eq!(c.to_num_key_set(), n);

    // Collected form too.
    let d: BitSet = [3u32, 1].into_iter().collect();
    d.check_invariants().unwrap();
}

#[test]
fn month_matrix_constructors_uphold_invariants() {
    let months: Vec<NumKeySet> = (0..4)
        .map(|m| NumKeySet::from_iter((0..100u32).map(|i| i * (m + 2) + (m << 16))))
        .collect();
    let mm = MonthMatrix::from_months(&months);
    mm.check_invariants().unwrap();
    assert_eq!(mm.n_months(), 4);

    let sets: Vec<BitSet> = months.iter().map(BitSet::from_num_key_set).collect();
    let mm2 = MonthMatrix::from_bit_sets(&sets);
    mm2.check_invariants().unwrap();
    for (m, month) in months.iter().enumerate() {
        assert_eq!(mm2.month_len(m), month.len());
        assert_eq!(mm2.month_set(m).to_num_key_set(), *month);
    }

    // Empty months are representable: no chunks, zero lens.
    let empty = MonthMatrix::from_months(&[NumKeySet::new(), NumKeySet::new()]);
    empty.check_invariants().unwrap();
    assert_eq!(empty.month_len(0), 0);
    assert_eq!(empty.overlap_counts(&set_of(&[1, 2, 3])), vec![0, 0]);
}

// --- container form selection ---------------------------------------------

#[test]
fn density_picks_container_form() {
    // Sparse scatter: array.
    let sparse = BitSet::from_iter((0..100u32).map(|i| i * 631));
    assert_eq!(only_kind(&sparse), "array");
    sparse.check_invariants().unwrap();

    // Dense scatter above ARRAY_MAX (stride 2 defeats run compression): bitmap.
    let dense = BitSet::from_iter((0..6000u32).map(|i| i * 2));
    assert_eq!(only_kind(&dense), "bitmap");
    dense.check_invariants().unwrap();

    // One contiguous slab: runs.
    let slab = BitSet::from_iter(0..10_000u32);
    assert_eq!(only_kind(&slab), "runs");
    slab.check_invariants().unwrap();

    // A full chunk is a single run.
    let full = BitSet::from_iter(0..65_536u32);
    assert_eq!(only_kind(&full), "runs");
    assert_eq!(full.len(), 65_536);
    full.check_invariants().unwrap();
}

#[test]
fn hysteresis_promotes_above_array_max_only() {
    let mut s = BitSet::from_iter((0..ARRAY_MAX as u32).map(|i| i * 3));
    assert_eq!(only_kind(&s), "array");
    // At the boundary: still an array.
    assert_eq!(s.len(), ARRAY_MAX);
    // One past the boundary: promotes.
    assert!(s.insert(1));
    assert_eq!(only_kind(&s), "bitmap");
    s.check_invariants().unwrap();
    // Removing back to ARRAY_MAX does NOT demote (hysteresis band).
    assert!(s.remove(1));
    assert_eq!(only_kind(&s), "bitmap");
    s.check_invariants().unwrap();
    // Flapping across the promote boundary never changes form again.
    for _ in 0..10 {
        assert!(s.insert(1));
        assert!(s.remove(1));
    }
    assert_eq!(only_kind(&s), "bitmap");
}

#[test]
fn hysteresis_demotes_below_bitmap_min() {
    let mut s = BitSet::from_iter((0..(ARRAY_MAX as u32 + 1)).map(|i| i * 3));
    assert_eq!(only_kind(&s), "bitmap");
    // Shrink to exactly BITMAP_MIN: still a bitmap.
    let keys: Vec<u32> = s.iter().collect();
    for &k in &keys[BITMAP_MIN..] {
        assert!(s.remove(k));
    }
    assert_eq!(s.len(), BITMAP_MIN);
    assert_eq!(only_kind(&s), "bitmap");
    s.check_invariants().unwrap();
    // One below: demotes to an array with identical contents.
    assert!(s.remove(keys[0]));
    assert_eq!(only_kind(&s), "array");
    assert_eq!(s.len(), BITMAP_MIN - 1);
    s.check_invariants().unwrap();
    assert_eq!(
        s.to_num_key_set().as_slice(),
        &keys[1..BITMAP_MIN],
        "demotion must preserve contents"
    );
}

#[test]
fn mutation_matches_rebuild_across_forms() {
    // Drive one set through array → bitmap → runs-optimized → array
    // territory and compare against from_iter rebuilds at every stage.
    let mut s = BitSet::new();
    let mut model: Vec<u32> = Vec::new();
    // Grow a slab (run territory) plus scatter.
    for k in 0..5000u32 {
        s.insert(k);
        model.push(k);
    }
    for k in (100_000..101_000u32).step_by(7) {
        s.insert(k);
        model.push(k);
    }
    s.optimize();
    s.check_invariants().unwrap();
    assert_eq!(s.to_num_key_set(), NumKeySet::from_iter(model.iter().copied()));
    // Punch holes in the slab (runs must split) and re-verify.
    for k in (0..5000u32).step_by(3) {
        assert!(s.remove(k));
        model.retain(|&x| x != k);
    }
    s.check_invariants().unwrap();
    assert_eq!(s.to_num_key_set(), NumKeySet::from_iter(model.iter().copied()));
    // Inserting into run gaps merges runs back.
    for k in (0..5000u32).step_by(3) {
        assert!(s.insert(k));
        assert!(!s.insert(k));
        model.push(k);
    }
    s.optimize();
    s.check_invariants().unwrap();
    assert_eq!(s.to_num_key_set(), NumKeySet::from_iter(model.iter().copied()));
}

// --- cross-form operation grid --------------------------------------------

/// One single-chunk set per physical form, with varied contents.
fn form_zoo() -> Vec<(&'static str, BitSet)> {
    vec![
        ("empty", BitSet::new()),
        ("singleton", set_of(&[777])),
        ("array", BitSet::from_iter((0..1000u32).map(|i| i * 61))),
        ("bitmap", BitSet::from_iter((0..9000u32).map(|i| i * 7))),
        ("runs", BitSet::from_iter(2000..30_000u32)),
        ("full-chunk", BitSet::from_iter(0..65_536u32)),
        ("multi-chunk", BitSet::from_iter((0..40_000u32).map(|i| i * 11))),
    ]
}

#[test]
fn operation_grid_matches_num_key_set() {
    let zoo = form_zoo();
    for (na, a) in &zoo {
        let oa = a.to_num_key_set();
        for (nb, b) in &zoo {
            let ob = b.to_num_key_set();
            let ctx = format!("{na} vs {nb}");
            assert_eq!(a.overlap_count(b), oa.overlap_count(&ob), "overlap {ctx}");
            assert_eq!(a.overlap_fraction(b), oa.overlap_fraction(&ob), "fraction {ctx}");
            let isect = a.intersect(b);
            isect.check_invariants().unwrap();
            assert_eq!(isect.to_num_key_set(), oa.intersect(&ob), "intersect {ctx}");
            let un = a.union(b);
            un.check_invariants().unwrap();
            let mut expect: Vec<u32> = oa.iter().chain(ob.iter()).collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(un.to_num_key_set().as_slice(), &expect[..], "union {ctx}");
        }
    }
}

#[test]
fn rank_select_round_trip() {
    for (name, s) in form_zoo() {
        let keys: Vec<u32> = s.iter().collect();
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(s.rank(k), i, "rank of {k} in {name}");
            assert_eq!(s.select(i), Some(k), "select {i} in {name}");
        }
        assert_eq!(s.select(keys.len()), None, "select past end in {name}");
        // rank of a key past everything is the cardinality.
        assert_eq!(s.rank(u32::MAX), keys.iter().filter(|&&k| k < u32::MAX).count());
        assert_eq!(s.rank(0), 0);
    }
}

#[test]
fn contains_and_membership_queries() {
    for (name, s) in form_zoo() {
        let oracle = s.to_num_key_set();
        // Probe members, near-misses, and chunk edges.
        let probes: Vec<u32> = oracle
            .iter()
            .take(50)
            .flat_map(|k| [k, k.wrapping_add(1), k.wrapping_sub(1)])
            .chain([0, 65_535, 65_536, u32::MAX])
            .collect();
        for p in probes {
            assert_eq!(s.contains(p), oracle.contains(p), "contains({p}) in {name}");
        }
    }
}

// --- month matrix ----------------------------------------------------------

#[test]
fn month_matrix_sweep_equals_pairwise() {
    // 15 months of mixed-density sets spanning several chunks, with
    // overlap structure (stride multiples share keys across months).
    let months: Vec<NumKeySet> = (0..15usize)
        .map(|m| {
            let base = (m as u32 % 3) << 16;
            match m % 4 {
                0 => NumKeySet::from_iter((0..4000u32).map(|i| base + i * 2)),
                1 => NumKeySet::from_iter(base..base + 9000),
                2 => NumKeySet::from_iter((0..500u32).map(|i| base + i * 131)),
                _ => NumKeySet::new(),
            }
        })
        .collect();
    let mm = MonthMatrix::from_months(&months);
    mm.check_invariants().unwrap();

    let probes = [
        NumKeySet::from_iter((0..3000u32).map(|i| i * 3)),
        NumKeySet::from_iter(0..70_000u32),
        NumKeySet::from_iter([5u32, 1 << 16, (2 << 16) + 4, 1 << 24]),
        NumKeySet::new(),
    ];
    for probe in &probes {
        let bits = BitSet::from_num_key_set(probe);
        let counts = mm.overlap_counts(&bits);
        assert_eq!(counts.len(), 15);
        for (m, month) in months.iter().enumerate() {
            assert_eq!(counts[m], probe.overlap_count(month), "month {m}");
        }
    }
}

// --- metrics gating --------------------------------------------------------

#[test]
fn census_reports_forms_without_metrics() {
    // container_census is a pure query: usable with metrics off, and the
    // Kind names stay stable for the bench labels.
    let s = BitSet::from_iter(0..70_000u32);
    let (arrays, bitmaps, runs) = s.container_census();
    assert_eq!(arrays + bitmaps + runs, 2, "two chunks");
    assert_eq!(kind_name(metrics::Kind::Array), "array");
    assert_eq!(kind_name(metrics::Kind::Bitmap), "bitmap");
    assert_eq!(kind_name(metrics::Kind::Runs), "runs");
}

// --- container edge cases (direct, crate-private) --------------------------

#[test]
fn container_boundary_keys() {
    // Keys at word and chunk boundaries exercise the mask edges.
    let edges: Vec<u16> = vec![0, 1, 63, 64, 65, 127, 128, 65_534, 65_535];
    let c = Container::from_sorted(&edges);
    c.check_invariants().unwrap();
    for &k in &edges {
        assert!(c.contains(k));
    }
    assert!(!c.contains(2));
    assert_eq!(c.to_vec(), edges);

    // A runs container touching both chunk ends.
    let mut r = Container::from_sorted(&[0]);
    for k in 1..200u16 {
        r.insert(k);
    }
    r.insert(65_535);
    r.optimize();
    r.check_invariants().unwrap();
    assert_eq!(r.card(), 201);
    assert_eq!(r.rank(65_535), 200);
    assert_eq!(r.select(200), Some(65_535));

    // Removing the interior of a run splits it cleanly.
    assert!(r.remove(100));
    r.check_invariants().unwrap();
    assert!(!r.contains(100));
    assert!(r.contains(99) && r.contains(101));
}

#[test]
fn select_walks_bitmap_words() {
    // Bitmap select must skip whole words by popcount, including words
    // that are all-zero or all-ones.
    let keys: Vec<u16> = (0..ARRAY_MAX as u32 + 64)
        .map(|i| (i * 3 % 60_000) as u16)
        .collect::<std::collections::BTreeSet<u16>>()
        .into_iter()
        .collect();
    let c = Container::from_sorted(&keys);
    assert_eq!(kind_name(c.kind()), "bitmap");
    for (i, &k) in keys.iter().enumerate().step_by(97) {
        assert_eq!(c.select(i), Some(k));
        assert_eq!(c.rank(k), i);
    }
    assert_eq!(c.select(keys.len()), None);
}

}
