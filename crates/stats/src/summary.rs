//! Scalar summaries.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation on the sorted
/// sample. Returns `None` for an empty slice.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile requires q in [0,1]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (0.5-quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Geometric mean of positive values; `None` if empty or any value ≤ 0.
pub fn geometric_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[7.0]), Some(7.0));
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[]), None);
    }

    #[test]
    #[should_panic(expected = "q in [0,1]")]
    fn bad_quantile_panics() {
        let _ = quantile(&[1.0], 1.5);
    }
}
