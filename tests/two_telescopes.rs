//! Integration: cross-telescope visibility of the same world.

use obscor::hypersparse::reduce;
use obscor::netmodel::Scenario;
use obscor::stats::binning::log2_bin;
use obscor::telescope::{capture_window, capture_window_at, matrix};
use std::collections::{BTreeMap, HashMap};

fn cross_visibility(nv: usize, seed: u64) -> BTreeMap<u32, (usize, usize)> {
    let scenario = Scenario::paper_scaled(nv, seed);
    let spec = &scenario.caida_windows[0];
    let a = capture_window(&scenario, spec);
    let b = capture_window_at(&scenario, spec, 45);
    let da: HashMap<u32, u64> =
        reduce::source_packets(&matrix::build_matrix(&a)).into_iter().collect();
    let db: HashMap<u32, u64> =
        reduce::source_packets(&matrix::build_matrix(&b)).into_iter().collect();
    let mut bins: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
    for (ip, &d) in &da {
        let e = bins.entry(log2_bin(d)).or_insert((0, 0));
        e.0 += 1;
        if db.contains_key(ip) {
            e.1 += 1;
        }
    }
    bins
}

#[test]
fn bright_sources_are_seen_by_both_telescopes() {
    let bins = cross_visibility(1 << 15, 5150);
    let mut checked = 0;
    for (&bin, &(n, shared)) in &bins {
        if bin >= 5 && n >= 10 {
            let frac = shared as f64 / n as f64;
            assert!(frac > 0.95, "bin 2^{bin}: cross-visibility {frac}");
            checked += 1;
        }
    }
    assert!(checked >= 3, "too few bright bins: {checked}");
}

#[test]
fn cross_visibility_rises_with_brightness() {
    let bins = cross_visibility(1 << 15, 5151);
    let fracs: Vec<(u32, f64)> = bins
        .iter()
        .filter(|(_, (n, _))| *n >= 15)
        .map(|(&b, &(n, s))| (b, s as f64 / n as f64))
        .collect();
    assert!(fracs.len() >= 3);
    let dimmest = fracs.first().unwrap().1;
    let brightest = fracs.last().unwrap().1;
    assert!(
        brightest >= dimmest,
        "visibility should not fall with brightness: {dimmest} -> {brightest}"
    );
    assert!(dimmest < 0.999, "even the dimmest bin is fully shared — no contrast");
}

#[test]
fn second_telescope_window_is_well_formed() {
    let scenario = Scenario::paper_scaled(1 << 14, 5152);
    let w = capture_window_at(&scenario, &scenario.caida_windows[1], 45);
    assert_eq!(w.packets(), scenario.n_v);
    // Every packet targets the second darkspace.
    assert!(w.window.packets.iter().all(|p| (p.dst.0 >> 24) as u8 == 45));
    // Determinism.
    let w2 = capture_window_at(&scenario, &scenario.caida_windows[1], 45);
    assert_eq!(w.window, w2.window);
    // And it differs from the first telescope's view.
    let primary = capture_window(&scenario, &scenario.caida_windows[1]);
    assert_ne!(w.window.packets, primary.window.packets);
}
