//! p-norms, including the fractional norms used for heavy-tailed fits.
//!
//! The paper fits its temporal models by minimizing the `| |^{1/2}` norm of
//! the residual. Fractional norms (`0 < p < 1`) weight many small errors
//! more heavily relative to a few large ones than the familiar `p ≥ 1`
//! norms do, which keeps a fit honest across the faint tail of a
//! heavy-tailed curve instead of letting the bright head dominate.

/// The p-norm `(Σ |x_i|^p)^{1/p}` for `p > 0`.
///
/// # Panics
/// Panics if `p <= 0` or not finite.
pub fn pnorm(xs: &[f64], p: f64) -> f64 {
    assert!(p > 0.0 && p.is_finite(), "p-norm requires finite p > 0");
    xs.iter().map(|x| x.abs().powf(p)).sum::<f64>().powf(1.0 / p)
}

/// The p-norm of the element-wise difference of two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length or `p` is invalid.
pub fn residual_pnorm(a: &[f64], b: &[f64], p: f64) -> f64 {
    assert_eq!(a.len(), b.len(), "residual requires equal lengths");
    assert!(p > 0.0 && p.is_finite(), "p-norm requires finite p > 0");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs().powf(p))
        .sum::<f64>()
        .powf(1.0 / p)
}

/// The zero-"norm": the number of nonzero entries (the `| |_0` of
/// Table II applied to a vector).
pub fn zero_norm(xs: &[f64]) -> usize {
    // audit:allow(float-eq) — the zero-"norm" counts exact nonzeros by definition (Table II)
    xs.iter().filter(|x| **x != 0.0).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2_is_euclidean() {
        assert!((pnorm(&[3.0, 4.0], 2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn p1_is_sum_of_abs() {
        assert!((pnorm(&[1.0, -2.0, 3.0], 1.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn half_norm_known_value() {
        // (|1|^.5 + |4|^.5)^2 = (1 + 2)^2 = 9.
        assert!((pnorm(&[1.0, 4.0], 0.5) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn half_norm_weights_small_errors_relatively_more() {
        // Same 2-norm, but the spread-out error vector has larger 1/2-norm.
        let concentrated = [2.0, 0.0, 0.0, 0.0];
        let spread = [1.0, 1.0, 1.0, 1.0];
        assert!(pnorm(&spread, 0.5) > pnorm(&concentrated, 0.5));
        assert_eq!(pnorm(&concentrated, 2.0), pnorm(&spread, 2.0));
    }

    #[test]
    fn residual_is_zero_for_equal() {
        let v = [0.5, 0.25, 0.125];
        assert_eq!(residual_pnorm(&v, &v, 0.5), 0.0);
    }

    #[test]
    fn residual_matches_manual() {
        let a = [1.0, 2.0];
        let b = [0.0, 4.0];
        assert!((residual_pnorm(&a, &b, 1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_norm_is_zero() {
        assert_eq!(pnorm(&[], 0.5), 0.0);
    }

    #[test]
    fn zero_norm_counts_nonzeros() {
        assert_eq!(zero_norm(&[0.0, 1.0, -2.0, 0.0]), 2);
        assert_eq!(zero_norm(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "p > 0")]
    fn invalid_p_panics() {
        let _ = pnorm(&[1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_lengths_panic() {
        let _ = residual_pnorm(&[1.0], &[1.0, 2.0], 1.0);
    }
}
