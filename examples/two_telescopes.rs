//! Two telescopes, one Internet: cross-observatory source overlap.
//!
//! The paper contrasts its findings with earlier work on DDoS attacks
//! (its ref 21): "IXPs and honeypots observe mostly disjoint sets of
//! attacks: 96% of IXP-inferred attacks were invisible to a sizable
//! honeypot platform" — yet CAIDA's bright sources are almost always in
//! GreyNoise. This example probes that tension with a second darkspace
//! observing the same synthetic world: cross-telescope visibility rises
//! monotonically with brightness, saturating at certainty above a few
//! packets per window. (The synthetic population floors brightness at one
//! packet per window, so the *sub*-unit-brightness dim mass that drives
//! the ref-21 disjointness on the real Internet is under-represented —
//! see the honest-reporting notes in EXPERIMENTS.md.)
//!
//! ```sh
//! cargo run --release --example two_telescopes
//! ```

use obscor::netmodel::Scenario;
use obscor::stats::binning::log2_bin;
use obscor::telescope::{capture_window, capture_window_at, matrix};
use obscor::hypersparse::reduce;
use std::collections::HashMap;

fn main() {
    let scenario = Scenario::paper_scaled(1 << 18, 33);
    let spec = &scenario.caida_windows[0];
    println!("capturing the same instant from two /8 darkspaces...\n");

    let a = capture_window(&scenario, spec); // 44.0.0.0/8
    let b = capture_window_at(&scenario, spec, 45); // 45.0.0.0/8

    let deg = |w| -> HashMap<u32, u64> {
        reduce::source_packets(&matrix::build_matrix(w)).into_iter().collect()
    };
    let (da, db) = (deg(&a), deg(&b));
    println!(
        "telescope A (44/8): {} sources    telescope B (45/8): {} sources",
        da.len(),
        db.len()
    );
    let both = da.keys().filter(|ip| db.contains_key(*ip)).count();
    println!(
        "seen by both: {} ({:.0}% of A)\n",
        both,
        100.0 * both as f64 / da.len() as f64
    );

    // Cross-visibility by brightness bin: the paper's Fig 4 shape, with a
    // telescope (not the honeyfarm) as the second instrument.
    let mut bins: std::collections::BTreeMap<u32, (usize, usize)> = Default::default();
    for (ip, &d) in &da {
        let e = bins.entry(log2_bin(d)).or_insert((0, 0));
        e.0 += 1;
        if db.contains_key(ip) {
            e.1 += 1;
        }
    }
    println!("A-sources also seen by B, by A-window brightness:");
    println!("  d        sources  fraction");
    for (bin, (n, shared)) in &bins {
        if *n >= 10 {
            println!(
                "  2^{:<6} {:>7} {:>9.3}",
                bin,
                n,
                *shared as f64 / *n as f64
            );
        }
    }

    println!(
        "\ncross-visibility rises with brightness and saturates above a few\n\
         packets per window: brightness, not vantage, decides who is seen\n\
         everywhere — the paper's resolution of the ref-21 disjointness."
    );
}
