//! Offline stand-in for `serde_derive`.
//!
//! The workspace's types carry `#[derive(Serialize, Deserialize)]` for API
//! parity with the upstream crates, but nothing in the workspace calls the
//! serde machinery (persistence uses the hand-rolled bit-level codecs in
//! `obscor-hypersparse::serialize` and `obscor-assoc::io`). These derives
//! therefore expand to nothing; they exist so the attribute positions, and
//! any inert `#[serde(...)]` field attributes, keep compiling offline.

use proc_macro::TokenStream;

/// Inert `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Inert `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
