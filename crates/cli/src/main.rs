//! `obscor` — reproduce the tables and figures of *Temporal Correlation
//! of Internet Observatories and Outposts* on a synthetic world.
//!
//! ```text
//! obscor reproduce [--nv <packets>] [--seed <u64>] [--fast] [--tsv] [--only <artifact>]
//! obscor generate  [--nv <packets>] [--seed <u64>] [--window <0..4>] --out <file.pcap>
//! obscor info      [--nv <packets>] [--seed <u64>]
//! ```
//!
//! * `reproduce` runs the full pipeline and prints every table and figure
//!   (or one artifact: `table1`, `table2`, `fig1`, `fig3`, `fig4`,
//!   `fig5`, `fig6`, `fig7`, `fig8`).
//! * `generate` captures one telescope window and writes it as a real
//!   libpcap file (openable in tcpdump/wireshark).
//! * `forecast` fits the temporal model on the first `--cutoff` months
//!   and scores its predictions for the held-out months against a
//!   persistence baseline.
//! * `info` prints the scenario calibration summary.

use obscor_core::{pipeline, AnalysisConfig, ArchiveConfig, SpillSettings};
use obscor_netmodel::Scenario;
use obscor_pcap::PcapWriter;
use obscor_telescope::{capture_window, stream, FaultPlan, IngestConfig, IngestService};
use std::process::ExitCode;

const DEFAULT_NV: usize = 1 << 20;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  obscor reproduce [--nv N] [--seed S] [--fast] [--tsv] [--check] [--only ARTIFACT]
                   [--metrics FILE] [--fast-path-metrics]
                   [--fault-plan SEED:RATE] [--strict-archive]
                   [--memory-budget BYTES] [--spill-dir PATH]
  obscor generate  [--nv N] [--seed S] [--window 0..4] [--filter EXPR] --out FILE
  obscor serve     [--nv N] [--seed S] [--window 0..4] [--workers W]
                   [--window-packets P] [--queue-depth D] [--windows K]
                   [--anonymize] [--check] [--metrics FILE]
                   [--memory-budget BYTES] [--spill-dir PATH]
  obscor forecast  [--nv N] [--seed S] [--cutoff K]
  obscor info      [--nv N] [--seed S]

Flags given without a subcommand run `reproduce` (e.g. `obscor --metrics m.json`).
serve runs the streaming line-rate ingest service on the scenario's live
traffic stream: packets are sharded over --workers threads through bounded
queues (depth --queue-depth; full queues block the producer, never drop),
leaves compact through the radix kernel as they fill, and one `snapshot` line
is printed per closed window (--windows windows of --window-packets valid
packets each, defaulting to N_V). --anonymize applies line-rate memoized
CryptoPAN inside the workers. --check verifies each streamed window against
the batch-built matrix of the same packets. --metrics writes the run's
telescope.ingest.* observability delta as obscor.metrics.v1 JSON.
--metrics FILE writes the run's per-stage observability report (span timings,
counters, gauges) as obscor.metrics.v1 JSON.
--fast-path-metrics additionally records the opt-in ingest fast-path metrics
(hypersparse.radix.* compaction counters and anonymize.cache.* hit rates),
which are off by default to keep the pinned metric schema stable.
--fault-plan SEED:RATE builds the window matrices through the leaf archive and
injects seeded faults (truncation, bit flips, missing leaves, flaky reads) at
the given per-leaf rate; the restore retries transient faults, quarantines
corrupt leaves, and reports per-window packet coverage.
--strict-archive fails the run (exit 1) if any window restores degraded.
--memory-budget BYTES (accepts 2^N) builds each window matrix out-of-core:
carry-level CSR parts spill to disk whenever tracked live bytes exceed the
budget, and the merge scheduler reloads them on demand — the matrices are
bit-identical to the in-memory build. Applies to both reproduce and serve;
per-window spill accounting (evictions, reloads, peak live bytes) is printed
and the opt-in hypersparse.spill.* metrics are enabled.
--spill-dir PATH puts the spill files under PATH (default: system temp dir).

ARTIFACT: table1 table2 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 classes subnets scaling";

struct Options {
    nv: usize,
    seed: u64,
    fast: bool,
    tsv: bool,
    check: bool,
    only: Option<String>,
    window: usize,
    out: Option<String>,
    cutoff: usize,
    filter: Option<String>,
    metrics: Option<String>,
    fast_path_metrics: bool,
    fault_plan: Option<FaultPlan>,
    strict_archive: bool,
    workers: usize,
    window_packets: Option<usize>,
    queue_depth: usize,
    serve_windows: usize,
    anonymize: bool,
    memory_budget: Option<u64>,
    spill_dir: Option<String>,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        nv: DEFAULT_NV,
        seed: 42,
        fast: false,
        tsv: false,
        check: false,
        only: None,
        window: 0,
        out: None,
        cutoff: 10,
        filter: None,
        metrics: None,
        fast_path_metrics: false,
        fault_plan: None,
        strict_archive: false,
        workers: 4,
        window_packets: None,
        queue_depth: 4,
        serve_windows: 3,
        anonymize: false,
        memory_budget: None,
        spill_dir: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(|s| s.to_string()).ok_or(format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--nv" => {
                let v = value("--nv")?;
                o.nv = parse_nv(&v)?;
            }
            "--seed" => o.seed = value("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--fast" => o.fast = true,
            "--tsv" => o.tsv = true,
            "--check" => o.check = true,
            "--only" => o.only = Some(value("--only")?),
            "--window" => {
                o.window = value("--window")?.parse().map_err(|_| "bad --window")?;
                if o.window > 4 {
                    return Err("--window must be 0..=4".into());
                }
            }
            "--out" => o.out = Some(value("--out")?),
            "--filter" => o.filter = Some(value("--filter")?),
            "--metrics" => o.metrics = Some(value("--metrics")?),
            "--fast-path-metrics" => o.fast_path_metrics = true,
            "--fault-plan" => o.fault_plan = Some(FaultPlan::parse(&value("--fault-plan")?)?),
            "--strict-archive" => o.strict_archive = true,
            "--workers" => {
                o.workers = value("--workers")?.parse().map_err(|_| "bad --workers")?;
                if o.workers == 0 {
                    return Err("--workers must be positive".into());
                }
            }
            "--window-packets" => {
                let v = value("--window-packets")?;
                let p = parse_nv(&v).map_err(|_| "bad --window-packets")?;
                if p == 0 {
                    return Err("--window-packets must be positive".into());
                }
                o.window_packets = Some(p);
            }
            "--queue-depth" => {
                o.queue_depth =
                    value("--queue-depth")?.parse().map_err(|_| "bad --queue-depth")?;
                if o.queue_depth == 0 {
                    return Err("--queue-depth must be positive".into());
                }
            }
            "--windows" => {
                o.serve_windows = value("--windows")?.parse().map_err(|_| "bad --windows")?;
                if o.serve_windows == 0 {
                    return Err("--windows must be positive".into());
                }
            }
            "--anonymize" => o.anonymize = true,
            "--memory-budget" => {
                let v = value("--memory-budget")?;
                let b = parse_nv(&v).map_err(|_| "bad --memory-budget")?;
                o.memory_budget = Some(b as u64);
            }
            "--spill-dir" => o.spill_dir = Some(value("--spill-dir")?),
            "--cutoff" => {
                o.cutoff = value("--cutoff")?.parse().map_err(|_| "bad --cutoff")?;
                if !(4..15).contains(&o.cutoff) {
                    return Err("--cutoff must be 4..=14".into());
                }
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(o)
}

/// Accept `1048576` or `2^20`.
fn parse_nv(s: &str) -> Result<usize, String> {
    if let Some(exp) = s.strip_prefix("2^") {
        let e: u32 = exp.parse().map_err(|_| "bad exponent in --nv")?;
        if e >= usize::BITS {
            return Err("--nv exponent too large".into());
        }
        Ok(1usize << e)
    } else {
        s.parse().map_err(|_| "bad --nv".into())
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let (cmd, rest) = args.split_first().ok_or("missing subcommand")?;
    // Bare flags imply the default subcommand: `obscor --metrics m.json`
    // is `obscor reproduce --metrics m.json`.
    if cmd.starts_with('-') && !matches!(cmd.as_str(), "--help" | "-h") {
        return reproduce(parse(&args)?);
    }
    let o = parse(rest)?;
    match cmd.as_str() {
        "reproduce" => reproduce(o),
        "generate" => generate(o),
        "serve" => serve(o),
        "forecast" => forecast(o),
        "info" => info(o),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other}")),
    }
}

fn build_scenario(o: &Options) -> Scenario {
    eprintln!(
        "building scenario: N_V = {} (sqrt = {:.0}), seed = {}",
        o.nv,
        (o.nv as f64).sqrt(),
        o.seed
    );
    Scenario::paper_scaled(o.nv, o.seed)
}

fn reproduce(o: Options) -> Result<(), String> {
    if o.fast_path_metrics {
        obscor_hypersparse::radix::enable_metrics();
        obscor_anonymize::memo::enable_cache_metrics();
        eprintln!("fast-path metrics enabled (hypersparse.radix.*, anonymize.cache.*)");
    }
    let scenario = build_scenario(&o);
    let mut config = if o.fast { AnalysisConfig::fast() } else { AnalysisConfig::default() };
    if o.fault_plan.is_some() || o.strict_archive {
        let archive =
            ArchiveConfig { fault_plan: o.fault_plan.clone(), ..ArchiveConfig::default() };
        if let Some(plan) = &o.fault_plan {
            eprintln!(
                "archive path: {} leaves/window, fault plan seed {} rate {}",
                archive.n_leaves, plan.seed, plan.rate
            );
        }
        config = config.with_archive(archive);
    }
    if let Some(budget) = o.memory_budget {
        if config.archive.is_some() {
            return Err("--memory-budget cannot be combined with the archive path \
                        (--fault-plan/--strict-archive)"
                .into());
        }
        obscor_hypersparse::spill::enable_spill_metrics();
        eprintln!(
            "out-of-core build: memory budget {budget} bytes, spill dir {}",
            o.spill_dir.as_deref().unwrap_or("<temp>")
        );
        config = config.with_spill(SpillSettings {
            memory_budget: budget,
            spill_dir: o.spill_dir.as_deref().map(std::path::PathBuf::from),
        });
    }
    eprintln!(
        "population: {} sources; capturing 5 windows x {} packets + 15 honeyfarm months...",
        scenario.population.len(),
        scenario.n_v
    );
    let analysis = pipeline::run(&scenario, &config);
    for r in &analysis.restore {
        eprintln!(
            "restore {}: coverage {:.6} ({}/{} packets), {}/{} leaves, \
             {} recovered after retry, {} retries, {} quarantined",
            r.label,
            r.coverage(),
            r.packets_restored,
            r.packets_expected,
            r.n_restored(),
            r.n_leaves,
            r.recovered,
            r.retries,
            r.quarantined.len()
        );
        for q in &r.quarantined {
            eprintln!("  quarantined leaf {} ({}): {}", q.index, q.class, q.reason);
        }
    }
    for r in &analysis.spill {
        eprintln!(
            "spill: coverage {:.6} ({}/{} packets), {} leaves, {} merges, \
             {} evictions, {} reloads, peak {} live bytes, {} quarantined",
            r.coverage(),
            r.packets_restored,
            r.packets_expected,
            r.stats.leaves,
            r.stats.merges(),
            r.stats.evictions,
            r.stats.reloads,
            r.stats.peak_live_bytes,
            r.quarantined.len()
        );
        for q in &r.quarantined {
            eprintln!(
                "  quarantined part: level {} leaves [{}, {}): {}",
                q.level,
                q.first_leaf,
                q.first_leaf + q.n_leaves,
                q.error
            );
        }
    }
    if o.strict_archive && analysis.restore.iter().any(|r| !r.is_complete()) {
        let degraded =
            analysis.restore.iter().filter(|r| !r.is_complete()).count();
        return Err(format!(
            "--strict-archive: {degraded}/{} windows restored degraded",
            analysis.restore.len()
        ));
    }
    if let Some(path) = &o.metrics {
        let json = analysis.metrics.to_json();
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "wrote {} metrics ({} bytes) to {path}",
            analysis.metrics.metric_names().len(),
            json.len()
        );
    }
    if o.check {
        let v = obscor_core::validate::validate(&analysis, !o.fast);
        eprintln!("{}", v.render());
        if !v.all_passed() {
            return Err("self-validation failed".into());
        }
    }
    if o.tsv {
        println!("{}", analysis.to_tsv());
        return Ok(());
    }
    let out = match o.only.as_deref() {
        None => analysis.render_all(),
        Some("table1") => analysis.render_table1(),
        Some("table2") => analysis.render_table2(),
        Some("fig1") => analysis.render_fig1(),
        Some("fig2") => analysis.render_fig2(),
        Some("fig3") => analysis.render_fig3(),
        Some("fig4") => analysis.render_fig4(),
        Some("fig5") => analysis.render_fig5(),
        Some("fig6") => analysis.render_fig6(),
        Some("fig7") => analysis.render_fig7(),
        Some("fig8") => analysis.render_fig8(),
        Some("classes") => analysis.render_classes(),
        Some("subnets") => analysis.render_subnets(),
        Some("scaling") => analysis.render_scaling(),
        Some(other) => return Err(format!("unknown artifact {other}")),
    };
    println!("{out}");
    Ok(())
}

fn generate(o: Options) -> Result<(), String> {
    let out_path = o.out.clone().ok_or("generate needs --out")?;
    let scenario = build_scenario(&o);
    let spec = &scenario.caida_windows[o.window];
    eprintln!("capturing window {} ({})...", o.window, spec.label);
    let w = capture_window(&scenario, spec);
    let expr = match &o.filter {
        Some(text) => {
            Some(obscor_pcap::parse_filter(text).map_err(|e| format!("bad --filter: {e}"))?)
        }
        None => None,
    };
    let mut writer = PcapWriter::new();
    let mut kept = 0usize;
    for p in &w.window.packets {
        use obscor_pcap::PacketFilter;
        if expr.as_ref().map(|e| e.accept(p)).unwrap_or(true) {
            writer.write_packet(p);
            kept += 1;
        }
    }
    if expr.is_some() {
        eprintln!("filter kept {kept}/{} packets", w.packets());
    }
    let bytes = writer.into_bytes();
    std::fs::write(&out_path, &bytes).map_err(|e| format!("writing {out_path}: {e}"))?;
    eprintln!(
        "wrote {} packets ({} bytes, {:.0} s span) to {}",
        kept,
        bytes.len(),
        w.duration_secs(),
        out_path
    );
    Ok(())
}

/// Key used by `serve --anonymize` (a fixed demo key, like `generate`'s
/// fixed seed defaults — real deployments would load one).
const SERVE_ANON_KEY: [u8; 32] = [0x5Au8; 32];

fn serve(o: Options) -> Result<(), String> {
    use obscor_pcap::PacketFilter;
    let scenario = build_scenario(&o);
    let window_packets = o.window_packets.unwrap_or(scenario.n_v);
    let mut cfg = IngestConfig::new(o.workers, window_packets);
    cfg.queue_depth = o.queue_depth;
    cfg.memory_budget = o.memory_budget;
    cfg.spill_dir = o.spill_dir.as_deref().map(std::path::PathBuf::from);
    stream::enable_ingest_metrics();
    if o.memory_budget.is_some() {
        obscor_hypersparse::spill::enable_spill_metrics();
    }
    let before = obscor_obs::snapshot();
    let spec = &scenario.caida_windows[o.window];
    eprintln!(
        "serving {} windows x {} packets from instant {} ({} workers, queue depth {}{})",
        o.serve_windows,
        window_packets,
        spec.label,
        o.workers,
        o.queue_depth,
        if o.anonymize { ", anonymized" } else { "" }
    );
    let octet = scenario.population.config.darkspace_octet;
    let (source, filter) =
        obscor_telescope::window_traffic_source(&scenario, spec, octet);
    let mut svc = if o.anonymize {
        IngestService::with_anonymizer(
            cfg,
            obscor_anonymize::MemoCryptoPan::new(&SERVE_ANON_KEY),
        )
    } else {
        IngestService::new(cfg)
    };
    // --check retains each open window's packets and rebuilds the batch
    // oracle at close; the streamed matrix must be byte-equal.
    let mut oracle: Vec<(u32, u32)> = Vec::new();
    let mut checked = 0usize;
    let target = (o.serve_windows * window_packets) as u64;
    let mut fed = 0u64;
    let mut emit = |snap: &obscor_telescope::WindowSnapshot,
                    oracle: &mut Vec<(u32, u32)>|
     -> Result<(), String> {
        if o.check {
            let taken: Vec<_> = oracle.drain(..snap.packets as usize).collect();
            let batch = batch_oracle_matrix(&taken, o.anonymize);
            if batch != snap.matrix {
                return Err(format!("window {} diverged from the batch build", snap.index));
            }
            checked += 1;
        }
        let spill = match &snap.spill {
            None => String::new(),
            Some(r) => format!(
                " evictions={} reloads={} peak_live_bytes={}",
                r.stats.evictions, r.stats.reloads, r.stats.peak_live_bytes
            ),
        };
        println!(
            "snapshot window={} packets={} nnz={} sources={} leaves={} merges={} partial={}{}",
            snap.index,
            snap.packets,
            snap.matrix.nnz(),
            snap.matrix.n_rows(),
            snap.leaves,
            snap.merges,
            snap.partial,
            spill
        );
        Ok(())
    };
    for p in source {
        if !filter.accept(&p) {
            continue;
        }
        svc.push(p.src.0, p.dst.0);
        if o.check {
            oracle.push((p.src.0, p.dst.0));
        }
        fed += 1;
        while let Some(snap) = svc.try_snapshot() {
            emit(&snap, &mut oracle)?;
        }
        if fed >= target {
            break;
        }
    }
    let (rest, drain) = svc.finish();
    for snap in rest {
        emit(&snap, &mut oracle)?;
    }
    println!(
        "drain received={} compacted={} in_flight={} windows={} blocked={} partial={}",
        drain.received,
        drain.compacted,
        drain.in_flight,
        drain.windows_closed,
        drain.blocked,
        drain.partial_flushed
    );
    if !drain.is_exact() {
        return Err(format!("drain accounting is not exact: {drain:?}"));
    }
    if o.check {
        eprintln!("check: {checked}/{} windows byte-equal to the batch build", o.serve_windows);
    }
    if let Some(path) = &o.metrics {
        let delta = obscor_obs::snapshot().delta_since(&before);
        let json = delta.to_json();
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "wrote {} metrics ({} bytes) to {path}",
            delta.metric_names().len(),
            json.len()
        );
    }
    Ok(())
}

/// The batch path's matrix for one serve window: the same accumulator
/// construction `telescope::matrix::build_matrix_with` uses, applied to the
/// retained packet list.
fn batch_oracle_matrix(pairs: &[(u32, u32)], anonymize: bool) -> obscor_hypersparse::Csr<u64> {
    use obscor_hypersparse::HierarchicalAccumulator;
    let leaf = (pairs.len() / obscor_telescope::matrix::PAPER_LEAF_COUNT).max(1024);
    let mut acc = HierarchicalAccumulator::with_leaf_capacity(leaf);
    if anonymize {
        let pan = obscor_anonymize::MemoCryptoPan::new(&SERVE_ANON_KEY);
        for &(s, d) in pairs {
            acc.push_edge(pan.anonymize(s), pan.anonymize(d));
        }
    } else {
        for &(s, d) in pairs {
            acc.push_edge(s, d);
        }
    }
    acc.finalize()
}

fn forecast(o: Options) -> Result<(), String> {
    use obscor_core::forecast::forecast_all;
    use obscor_core::temporal::temporal_curves;
    let scenario = build_scenario(&o);
    let config = if o.fast { AnalysisConfig::fast() } else { AnalysisConfig::default() };
    eprintln!("measuring temporal curves...");
    let holder = obscor_anonymize::sharing::Holder::new("telescope", &[5u8; 32]);
    let months = obscor_honeyfarm::observe_all_months(&scenario);
    let monthly: Vec<_> = months.iter().map(|m| m.source_keys().clone()).collect();
    let mut curves = Vec::new();
    for w in 0..scenario.caida_windows.len() {
        let wd = obscor_core::WindowDegrees::capture(&scenario, w, &holder);
        curves.extend(temporal_curves(&wd, &monthly, config.min_bin_sources.max(30)));
    }
    let evals = forecast_all(&curves, o.cutoff, &config);
    println!("fit on months 0..{}, predict months {}..15", o.cutoff, o.cutoff);
    println!("window                bin     model MAE  persistence MAE  winner");
    let mut wins = 0usize;
    for e in &evals {
        if e.model_wins() {
            wins += 1;
        }
        println!(
            "{:<21} d=2^{:<3} {:>9.4} {:>16.4}  {}",
            e.window_label,
            e.bin,
            e.model_mae(),
            e.baseline_mae(),
            if e.model_wins() { "model" } else { "persistence" }
        );
    }
    println!("model beats persistence on {wins}/{} curves", evals.len());
    Ok(())
}

fn info(o: Options) -> Result<(), String> {
    let scenario = build_scenario(&o);
    println!("scenario calibration");
    println!("  N_V                  {}", scenario.n_v);
    println!("  sqrt(N_V) knee       {:.0} (log2 = {:.1})", scenario.sqrt_nv(), scenario.bright_log2());
    println!("  population           {} sources", scenario.population.len());
    println!("  brightness->degree   {:.3}", scenario.brightness_to_degree);
    println!("  months               {} ({} .. {})",
        scenario.grid.len(), scenario.grid.label(0), scenario.grid.label(scenario.grid.len() - 1));
    println!("  windows:");
    for w in &scenario.caida_windows {
        println!("    {} (t = {:.2} months)", w.label, w.coord);
    }
    Ok(())
}


#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.nv, DEFAULT_NV);
        assert_eq!(o.seed, 42);
        assert!(!o.fast && !o.tsv);
        assert!(o.only.is_none() && o.out.is_none());
    }

    #[test]
    fn nv_forms() {
        assert_eq!(parse(&args("--nv 65536")).unwrap().nv, 65536);
        assert_eq!(parse(&args("--nv 2^18")).unwrap().nv, 1 << 18);
        assert!(parse(&args("--nv 2^99")).is_err());
        assert!(parse(&args("--nv banana")).is_err());
        assert!(parse(&args("--nv")).is_err());
    }

    #[test]
    fn all_flags_together() {
        let o = parse(&args("--nv 2^14 --seed 7 --fast --tsv --only fig4 --window 3 --out x.pcap"))
            .unwrap();
        assert_eq!(o.nv, 1 << 14);
        assert_eq!(o.seed, 7);
        assert!(o.fast && o.tsv);
        assert_eq!(o.only.as_deref(), Some("fig4"));
        assert_eq!(o.window, 3);
        assert_eq!(o.out.as_deref(), Some("x.pcap"));
    }

    #[test]
    fn window_bounds() {
        assert!(parse(&args("--window 4")).is_ok());
        assert!(parse(&args("--window 5")).is_err());
        assert!(parse(&args("--window x")).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        assert!(parse(&args("--frobnicate")).is_err());
    }

    #[test]
    fn serve_flag_defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.workers, 4);
        assert_eq!(o.queue_depth, 4);
        assert_eq!(o.serve_windows, 3);
        assert!(o.window_packets.is_none());
        assert!(!o.anonymize);
    }

    #[test]
    fn serve_flags_parse() {
        let o = parse(&args(
            "--workers 8 --window-packets 2^12 --queue-depth 2 --windows 5 --anonymize",
        ))
        .unwrap();
        assert_eq!(o.workers, 8);
        assert_eq!(o.window_packets, Some(1 << 12));
        assert_eq!(o.queue_depth, 2);
        assert_eq!(o.serve_windows, 5);
        assert!(o.anonymize);
        // --window-packets shares parse_nv, so plain integers work too.
        assert_eq!(parse(&args("--window-packets 1500")).unwrap().window_packets, Some(1500));
    }

    #[test]
    fn serve_flags_reject_zero_and_garbage() {
        assert!(parse(&args("--workers 0")).is_err());
        assert!(parse(&args("--workers x")).is_err());
        assert!(parse(&args("--queue-depth 0")).is_err());
        assert!(parse(&args("--windows 0")).is_err());
        assert!(parse(&args("--window-packets 0")).is_err());
    }

    #[test]
    fn metrics_flag_parses() {
        let o = parse(&args("--metrics out.json")).unwrap();
        assert_eq!(o.metrics.as_deref(), Some("out.json"));
        assert!(parse(&args("--metrics")).is_err());
    }

    #[test]
    fn fast_path_metrics_flag_parses() {
        assert!(!parse(&args("--metrics m.json")).unwrap().fast_path_metrics);
        let o = parse(&args("--metrics m.json --fast-path-metrics")).unwrap();
        assert!(o.fast_path_metrics);
    }

    #[test]
    fn fault_plan_flag_parses() {
        let o = parse(&args("--fault-plan 7:0.25")).unwrap();
        let plan = o.fault_plan.expect("plan parsed");
        assert_eq!(plan.seed, 7);
        assert!((plan.rate - 0.25).abs() < 1e-12);
        assert!(!o.strict_archive);
        assert!(parse(&args("--fault-plan")).is_err());
        assert!(parse(&args("--fault-plan 7")).is_err());
        assert!(parse(&args("--fault-plan 7:2.0")).is_err());
    }

    #[test]
    fn strict_archive_flag_parses() {
        assert!(parse(&args("--strict-archive")).unwrap().strict_archive);
        let both = parse(&args("--fault-plan 1:0.1 --strict-archive")).unwrap();
        assert!(both.strict_archive && both.fault_plan.is_some());
    }

    #[test]
    fn memory_budget_flag_parses() {
        assert!(parse(&[]).unwrap().memory_budget.is_none());
        assert!(parse(&[]).unwrap().spill_dir.is_none());
        let o = parse(&args("--memory-budget 2^26 --spill-dir /tmp/spill")).unwrap();
        assert_eq!(o.memory_budget, Some(1 << 26));
        assert_eq!(o.spill_dir.as_deref(), Some("/tmp/spill"));
        // A zero budget is legal: it forces eviction on every carry.
        assert_eq!(parse(&args("--memory-budget 0")).unwrap().memory_budget, Some(0));
        assert!(parse(&args("--memory-budget")).is_err());
        assert!(parse(&args("--memory-budget lots")).is_err());
        assert!(parse(&args("--spill-dir")).is_err());
    }

    #[test]
    fn subcommand_dispatch_errors() {
        assert!(run(vec![]).is_err());
        assert!(run(args("unknowncmd")).is_err());
        assert!(run(args("help")).is_ok());
        // generate without --out fails before doing any work.
        assert!(run(args("generate --nv 2^12")).is_err());
    }
}
