//! Paper-shaped rendering of the analysis: one function per table/figure,
//! printing the same rows and series the paper reports.

use crate::fitscan::{alpha_by_degree_with_spread, drop_by_degree_with_spread};
use crate::pipeline::PaperAnalysis;
use crate::temporal::fig5_curve;
use obscor_stats::fit::{fit_cauchy, fit_gaussian};

impl PaperAnalysis {
    /// Table I: the data-set inventory.
    pub fn render_table1(&self) -> String {
        let mut s = String::from("TABLE I: GREYNOISE AND CAIDA DATA SETS\n");
        s.push_str("GreyNoise Month   Sources\n");
        for row in &self.greynoise_inventory {
            s.push_str(&format!("{:<17} {:>9}\n", row.label, row.sources));
        }
        s.push('\n');
        s.push_str("CAIDA Start Time        Duration    Packets     Sources\n");
        for r in &self.caida_inventory {
            s.push_str(&format!(
                "{:<23} {:>6.0} sec {:>10} {:>10}\n",
                r.start_time, r.duration_secs, r.packets, r.sources
            ));
        }
        s
    }

    /// Table II: network quantities for each window's traffic matrix.
    pub fn render_table2(&self) -> String {
        let mut s = String::from("TABLE II: NETWORK QUANTITIES FROM TRAFFIC MATRICES\n");
        for (label, q) in &self.quantities {
            s.push_str(&format!("window {label}\n"));
            s.push_str(&q.render());
            s.push('\n');
        }
        s
    }

    /// Fig 1: traffic-matrix quadrant occupancy per instrument.
    pub fn render_fig1(&self) -> String {
        let q = &self.quadrants;
        let mut s = String::from("FIG 1: NETWORK TRAFFIC MATRIX QUADRANTS\n");
        s.push_str(&format!(
            "telescope  ext->int entries {:>12}   int->ext entries {:>12}\n",
            q.telescope_ext_to_int, q.telescope_int_to_ext
        ));
        s.push_str(&format!(
            "honeyfarm  ext->int sources {:>12}   int->ext engagements {:>8}\n",
            q.honeyfarm_ext_to_int, q.honeyfarm_int_to_ext
        ));
        s
    }

    /// Fig 2: the full streaming-quantity menu on the first window.
    pub fn render_fig2(&self) -> String {
        let mut s = String::from("FIG 2: STREAMING NETWORK TRAFFIC QUANTITIES (first window)\n");
        for (name, dist) in &self.quantity_distributions {
            match dist.fit {
                Some(fit) => s.push_str(&format!(
                    "{name}: d_max={}  ZM fit alpha={:.2} delta={:.2}\n",
                    dist.d_max, fit.alpha, fit.delta
                )),
                None => s.push_str(&format!("{name}: d_max={}\n", dist.d_max)),
            }
        }
        s
    }

    /// Fig 3: log2-binned source packet distributions with ZM fits.
    pub fn render_fig3(&self) -> String {
        let mut s = String::from(
            "FIG 3: CAIDA SOURCE PACKET DEGREE DISTRIBUTION (differential cumulative probability)\n",
        );
        for dist in &self.distributions {
            match dist.fit {
                Some(fit) => {
                    s.push_str(&format!(
                        "window {}  (Zipf-Mandelbrot fit: alpha={:.2} delta={:.2} residual={:.3})\n",
                        dist.window_label, fit.alpha, fit.delta, fit.residual
                    ));
                    if let Some(tail) = dist.tail_fit {
                        s.push_str(&format!(
                            "  CSN tail fit: alpha={:.2} above d_min={} (KS {:.3})\n",
                            tail.alpha, tail.d_min, tail.ks
                        ));
                    }
                }
                None => s.push_str(&format!("window {} (no fit)\n", dist.window_label)),
            }
            s.push_str("  d_i        D(d_i)\n");
            for (d, v) in dist.binned.iter() {
                if v > 0.0 {
                    s.push_str(&format!("  2^{:<7} {:.6}\n", d.max(1).ilog2(), v));
                }
            }
        }
        s
    }

    /// Fig 4: peak correlation vs source packets.
    pub fn render_fig4(&self) -> String {
        let mut s = String::from("FIG 4: PEAK CORRELATION (same-month CAIDA sources seen by honeyfarm)\n");
        s.push_str(&format!(
            "empirical law: min(1, log2(d)/log2(sqrt(N_V))) with log2(sqrt(N_V)) = {:.1}\n",
            self.bright_log2
        ));
        for peak in &self.peaks {
            s.push_str(&format!("window {} (month {})\n", peak.window_label, peak.month));
            s.push_str("  d        sources   measured   (95% CI)           law\n");
            for p in &peak.points {
                let detected = (p.fraction * p.n_sources as f64).round() as u64;
                let ci = obscor_stats::wilson95(detected, p.n_sources as u64);
                s.push_str(&format!(
                    "  2^{:<6} {:>8} {:>9.3}  [{:.3}, {:.3}] {:>9.3}\n",
                    p.bin, p.n_sources, p.fraction, ci.lo, ci.hi, p.empirical_law
                ));
            }
        }
        s
    }

    /// Fig 5: the single-bin temporal correlation with the three-model
    /// comparison.
    pub fn render_fig5(&self) -> String {
        let mut s = String::from("FIG 5: TEMPORAL CORRELATION (first window, knee bin)\n");
        let first = match self.caida_inventory.first() {
            Some(r) => r.start_time.clone(),
            None => return s + "(no windows)\n",
        };
        let curve = match fig5_curve(&self.curves, &first, self.bright_log2) {
            Some(c) => c,
            None => return s + "(knee bin not measured at this scale)\n",
        };
        s.push_str(&format!(
            "window {} bin d=2^{} ({} sources)\n",
            curve.window_label, curve.bin, curve.n_sources
        ));
        s.push_str("  month  lag(mo)  fraction\n");
        for ((m, lag), frac) in curve.months.iter().zip(&curve.lags).zip(&curve.fractions) {
            s.push_str(&format!("  {:>5} {:>8.2} {:>9.3}\n", m, lag, frac));
        }
        if let Some(fit) =
            self.fits.iter().find(|f| f.window_label == curve.window_label && f.bin == curve.bin)
        {
            let mc = &fit.modified_cauchy;
            s.push_str(&format!(
                "modified Cauchy: alpha={:.2} beta={:.2} residual={:.3}\n",
                mc.alpha, mc.beta, mc.residual
            ));
            let g = fit_gaussian(&curve.lags, &curve.fractions);
            let c = fit_cauchy(&curve.lags, &curve.fractions);
            if let Some(g) = g {
                s.push_str(&format!("Gaussian:        sigma={:.2} residual={:.3}\n", g.param, g.residual));
            }
            if let Some(c) = c {
                s.push_str(&format!("Cauchy:          gamma={:.2} residual={:.3}\n", c.param, c.residual));
            }
        }
        s
    }

    /// Fig 6: every temporal curve with its modified-Cauchy fit.
    pub fn render_fig6(&self) -> String {
        let mut s =
            String::from("FIG 6: TEMPORAL CORRELATION AND PACKET DEGREE (per window x bin)\n");
        s.push_str("window                bin      sources  peak    alpha  beta   residual\n");
        for f in &self.fits {
            let peak = f.modified_cauchy.peak;
            s.push_str(&format!(
                "{:<21} d=2^{:<4} {:>7} {:>6.3} {:>7.2} {:>6.2} {:>9.3}\n",
                f.window_label, f.bin, f.n_sources, peak, f.modified_cauchy.alpha,
                f.modified_cauchy.beta, f.modified_cauchy.residual
            ));
        }
        s
    }

    /// Fig 7: best-fit α vs degree.
    pub fn render_fig7(&self) -> String {
        let mut s = String::from("FIG 7: MODIFIED CAUCHY alpha VS SOURCE PACKETS\n");
        s.push_str("  d        mean alpha  spread\n");
        for (d, alpha, spread) in alpha_by_degree_with_spread(&self.fits) {
            s.push_str(&format!(
                "  2^{:<6} {:>9.2} {:>8.2}\n",
                d.max(1).ilog2(),
                alpha,
                spread
            ));
        }
        s
    }

    /// Fig 8: one-month drop `1/(β+1)` vs degree.
    pub fn render_fig8(&self) -> String {
        let mut s = String::from("FIG 8: ONE MONTH DROP 1/(beta+1) VS SOURCE PACKETS\n");
        s.push_str("  d        mean drop  spread\n");
        for (d, drop, spread) in drop_by_degree_with_spread(&self.fits) {
            s.push_str(&format!(
                "  2^{:<6} {:>9.3} {:>8.3}\n",
                d.max(1).ilog2(),
                drop,
                spread
            ));
        }
        s
    }

    /// The scaling extension: sources-vs-packets exponents.
    pub fn render_scaling(&self) -> String {
        let mut s = String::from(
            "SCALING: UNIQUE SOURCES vs PACKETS (paper: sources ~ N_V^(1/2))\n",
        );
        s.push_str("window                 exponent     R^2\n");
        for (label, e, r2) in &self.scaling {
            s.push_str(&format!("{label:<22} {e:>8.3} {r2:>7.3}\n"));
        }
        s
    }

    /// The subnet extension: top /16 prefixes per window.
    pub fn render_subnets(&self) -> String {
        let mut s = String::from("SUBNET STRUCTURE: TOP /16 PREFIXES PER WINDOW\n");
        for (label, rows) in &self.subnet_top {
            s.push_str(&format!("window {label}\n"));
            s.push_str("  /16 prefix     sources   packets\n");
            for r in rows {
                s.push_str(&format!(
                    "  {:>3}.{:<10} {:>7} {:>9}\n",
                    r.prefix >> 8,
                    r.prefix & 0xFF,
                    r.sources,
                    r.packets
                ));
            }
        }
        s
    }

    /// The enrichment extension: class structure of the coeval overlap.
    pub fn render_classes(&self) -> String {
        let mut s = String::new();
        for c in &self.class_structure {
            s.push_str(&crate::classes::render(c));
            s.push('\n');
        }
        s
    }

    /// Every table and figure, concatenated.
    pub fn render_all(&self) -> String {
        [
            self.render_table1(),
            self.render_table2(),
            self.render_fig1(),
            self.render_fig2(),
            self.render_fig3(),
            self.render_fig4(),
            self.render_fig5(),
            self.render_fig6(),
            self.render_fig7(),
            self.render_fig8(),
            self.render_classes(),
            self.render_subnets(),
            self.render_scaling(),
        ]
        .join("\n")
    }

    /// Figure data as TSV blocks (machine-readable export).
    pub fn to_tsv(&self) -> String {
        let mut s = String::new();
        s.push_str("#fig4\twindow\tbin\td\tn_sources\tfraction\tlaw\n");
        for p in &self.peaks {
            for pt in &p.points {
                s.push_str(&format!(
                    "fig4\t{}\t{}\t{}\t{}\t{:.6}\t{:.6}\n",
                    p.window_label, pt.bin, pt.d, pt.n_sources, pt.fraction, pt.empirical_law
                ));
            }
        }
        s.push_str("#fig6\twindow\tbin\tlag\tfraction\n");
        for c in &self.curves {
            for (lag, frac) in c.lags.iter().zip(&c.fractions) {
                s.push_str(&format!(
                    "fig6\t{}\t{}\t{:.3}\t{:.6}\n",
                    c.window_label, c.bin, lag, frac
                ));
            }
        }
        s.push_str("#fits\twindow\tbin\talpha\tbeta\tdrop\n");
        for f in &self.fits {
            s.push_str(&format!(
                "fit\t{}\t{}\t{:.3}\t{:.3}\t{:.3}\n",
                f.window_label, f.bin, f.modified_cauchy.alpha, f.modified_cauchy.beta,
                f.one_month_drop()
            ));
        }
        s.push_str("#fig3\twindow\td\tmass\n");
        for dist in &self.distributions {
            for (d, v) in dist.binned.iter() {
                if v > 0.0 {
                    s.push_str(&format!("fig3\t{}\t{}\t{:.6e}\n", dist.window_label, d, v));
                }
            }
        }
        s.push_str("#fig7\td\tmean_alpha\tspread\n");
        for (d, a, sp) in alpha_by_degree_with_spread(&self.fits) {
            s.push_str(&format!("fig7\t{d}\t{a:.3}\t{sp:.3}\n"));
        }
        s.push_str("#fig8\td\tmean_drop\tspread\n");
        for (d, v, sp) in drop_by_degree_with_spread(&self.fits) {
            s.push_str(&format!("fig8\t{d}\t{v:.3}\t{sp:.3}\n"));
        }
        s.push_str("#classes\twindow\tclass\tshared\tclass_size\tshare\n");
        for c in &self.class_structure {
            for r in &c.rows {
                s.push_str(&format!(
                    "class\t{}\t{}\t{}\t{}\t{:.4}\n",
                    c.window_label, r.label, r.shared, r.class_size, r.share_of_detected
                ));
            }
        }
        s.push_str("#scaling\twindow\texponent\tr2\n");
        for (label, e, r2) in &self.scaling {
            s.push_str(&format!("scaling\t{label}\t{e:.4}\t{r2:.4}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::pipeline::run;
    use obscor_netmodel::Scenario;
    use std::sync::OnceLock;

    fn analysis() -> &'static PaperAnalysis {
        static A: OnceLock<PaperAnalysis> = OnceLock::new();
        A.get_or_init(|| {
            let s = Scenario::paper_scaled(1 << 15, 11);
            run(&s, &AnalysisConfig::fast())
        })
    }

    #[test]
    fn table1_lists_all_rows() {
        let t = analysis().render_table1();
        assert!(t.contains("2020-02"));
        assert!(t.contains("2021-04"));
        assert!(t.contains("2020-06-17-12:00:00"));
        assert!(t.lines().count() >= 15 + 5 + 3);
    }

    #[test]
    fn table2_names_all_quantities() {
        let t = analysis().render_table2();
        for needle in [
            "Valid packets N_V",
            "Unique links",
            "Max link packets",
            "Unique sources",
            "Max source packets",
            "Max source fan-out",
            "Unique destinations",
            "Max destination packets",
            "Max destination fan-in",
        ] {
            assert!(t.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn figures_render_nonempty() {
        let a = analysis();
        for (name, out) in [
            ("fig1", a.render_fig1()),
            ("fig2", a.render_fig2()),
            ("fig3", a.render_fig3()),
            ("fig4", a.render_fig4()),
            ("fig5", a.render_fig5()),
            ("fig6", a.render_fig6()),
            ("fig7", a.render_fig7()),
            ("fig8", a.render_fig8()),
        ] {
            assert!(out.lines().count() >= 2, "{name} too short:\n{out}");
        }
    }

    #[test]
    fn render_all_contains_every_section() {
        let all = analysis().render_all();
        for header in ["TABLE I", "TABLE II", "FIG 1", "FIG 3", "FIG 4", "FIG 5", "FIG 6", "FIG 7", "FIG 8"] {
            assert!(all.contains(header), "missing section {header}");
        }
    }

    #[test]
    fn tsv_blocks_are_parseable() {
        let tsv = analysis().to_tsv();
        let fig4_rows = tsv.lines().filter(|l| l.starts_with("fig4\t")).count();
        let fig6_rows = tsv.lines().filter(|l| l.starts_with("fig6\t")).count();
        let fit_rows = tsv.lines().filter(|l| l.starts_with("fit\t")).count();
        assert!(fig4_rows > 0 && fig6_rows > 0 && fit_rows > 0);
        for line in tsv.lines().filter(|l| l.starts_with("fig4\t")) {
            assert_eq!(line.split('\t').count(), 7);
        }
        for prefix in ["fig3\t", "fig7\t", "fig8\t", "class\t", "scaling\t"] {
            assert!(
                tsv.lines().any(|l| l.starts_with(prefix)),
                "missing {prefix} block"
            );
        }
    }
}
