//! Hybrid power-law models: when one Zipf–Mandelbrot isn't enough.
//!
//! The paper's discussion points to generative models that extend
//! preferential attachment "with parameters to describe adversarial
//! traffic" (ref [59]). This example builds a world whose degree
//! distribution is a *mixture* — benign background + adversarial beam —
//! and shows the single-component fit failing where the hybrid succeeds.
//!
//! ```sh
//! cargo run --release --example hybrid_models
//! ```

use obscor::netmodel::HybridPowerLaw;
use obscor::stats::binning::differential_cumulative;
use obscor::stats::zipf::{
    default_alpha_grid, default_delta_grid, fit_zipf_mandelbrot, ZipfMandelbrot,
};
use obscor::stats::DegreeHistogram;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Ground truth: 70% dim benign background (steep), 30% adversarial
    // scanning beam (shallow, bright).
    let truth = HybridPowerLaw::background_plus_beam(
        0.7,
        ZipfMandelbrot::new(2.5, 0.0, 64),
        ZipfMandelbrot::new(0.6, 50.0, 1 << 12),
    );
    let mut rng = StdRng::seed_from_u64(2024);
    let degrees = truth.sample_n(&mut rng, 300_000);
    let data = differential_cumulative(&DegreeHistogram::from_degrees(degrees));

    println!("observed D(d_i) from 300k sources (mixture world):");
    for (d, v) in data.iter() {
        if v > 0.0 {
            println!("  2^{:<2} {:.5}  {}", (d as f64).log2() as u32, v, bar(v));
        }
    }

    // A single Zipf-Mandelbrot does its best...
    let single = fit_zipf_mandelbrot(
        &data,
        truth.d_max(),
        &default_alpha_grid(),
        &default_delta_grid(),
    )
    .unwrap();
    let single_curve =
        ZipfMandelbrot::new(single.alpha, single.delta, truth.d_max()).binned();
    let single_res = obscor::netmodel::hybrid::binned_residual(&single_curve, &data);

    // ...the true hybrid does better.
    let hybrid_res = obscor::netmodel::hybrid::binned_residual(&truth.binned(), &data);

    println!("\nsingle ZM fit:  alpha={:.2} delta={:.2}  1/2-norm residual {:.3}", single.alpha, single.delta, single_res);
    println!("hybrid model:   2 components              1/2-norm residual {:.3}", hybrid_res);
    println!(
        "\nhybrid improves the fit by {:.0}% — the signature of adversarial\n\
         traffic riding on a benign background.",
        (1.0 - hybrid_res / single_res) * 100.0
    );
}

fn bar(v: f64) -> String {
    "#".repeat(((v.log10() + 6.0).max(0.0) * 6.0) as usize)
}
