//! Property-based tests for the packet layer.

use obscor_pcap::{
    AcceptAll, ConstantPacketWindower, Ip4, PacketFilter, PcapReader, PcapWriter, PrefixFilter,
    Protocol,
};
use proptest::prelude::*;

fn arb_packet() -> impl Strategy<Value = obscor_pcap::Packet> {
    (
        0u64..1u64 << 50,
        any::<u32>(),
        any::<u32>(),
        prop::sample::select(vec![Protocol::Tcp, Protocol::Udp, Protocol::Icmp]),
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(|(ts, src, dst, proto, sp, dp)| {
            let (src_port, dst_port) = match proto {
                Protocol::Icmp => (0, 0),
                _ => (sp, dp),
            };
            obscor_pcap::Packet {
                ts_micros: ts,
                src: Ip4(src),
                dst: Ip4(dst),
                proto,
                src_port,
                dst_port,
                length: 40,
            }
        })
}

proptest! {
    /// Any packet sequence survives the libpcap round trip with headers
    /// and checksums intact.
    #[test]
    fn pcap_round_trip(packets in prop::collection::vec(arb_packet(), 0..50)) {
        let mut w = PcapWriter::new();
        for p in &packets {
            w.write_packet(p);
        }
        let back = PcapReader::new(&w.into_bytes()).unwrap().read_all().unwrap();
        prop_assert_eq!(back.len(), packets.len());
        for (a, b) in packets.iter().zip(&back) {
            prop_assert_eq!(a.ts_micros, b.ts_micros);
            prop_assert_eq!(a.src, b.src);
            prop_assert_eq!(a.dst, b.dst);
            prop_assert_eq!(a.proto, b.proto);
            prop_assert_eq!(a.src_port, b.src_port);
            prop_assert_eq!(a.dst_port, b.dst_port);
        }
    }

    /// A corrupted byte anywhere inside a record either fails parsing or
    /// never silently changes addressing fields. (Flips in padding/ignored
    /// fields may survive; flips in addresses must be caught by the IPv4
    /// checksum.)
    #[test]
    fn address_corruption_is_detected(
        p in arb_packet(),
        byte_off in 0usize..8,
        bit in 0u8..8,
    ) {
        let mut w = PcapWriter::new();
        w.write_packet(&p);
        let mut bytes = w.into_bytes();
        // Addresses live at frame offset 14+12..14+20; records start at
        // 24 (global) + 16 (record header).
        let addr_start = 24 + 16 + 14 + 12;
        bytes[addr_start + byte_off] ^= 1 << bit;
        let result = PcapReader::new(&bytes).unwrap().read_all();
        prop_assert!(result.is_err(), "corrupted address accepted");
    }

    /// The windower emits exactly floor(valid/n) windows of exactly n
    /// packets, preserving arrival order.
    #[test]
    fn windower_partitions(
        packets in prop::collection::vec(arb_packet(), 0..120),
        n in 1usize..20,
    ) {
        let windows: Vec<_> =
            ConstantPacketWindower::new(packets.clone().into_iter(), AcceptAll, n).collect();
        prop_assert_eq!(windows.len(), packets.len() / n);
        let flattened: Vec<_> =
            windows.iter().flat_map(|w| w.packets.iter().copied()).collect();
        prop_assert_eq!(&flattened[..], &packets[..flattened.len()]);
        for (i, w) in windows.iter().enumerate() {
            prop_assert_eq!(w.index, i);
            prop_assert_eq!(w.packets.len(), n);
        }
    }

    /// Valid + discarded accounts for every packet the windower consumed.
    #[test]
    fn windower_conserves_packets(
        packets in prop::collection::vec(arb_packet(), 0..120),
        octet in any::<u8>(),
        n in 1usize..10,
    ) {
        let filter = PrefixFilter::slash8(octet);
        let mut windower =
            ConstantPacketWindower::new(packets.clone().into_iter(), filter, n);
        let windows: Vec<_> = windower.by_ref().collect();
        let valid_in_windows: usize = windows.iter().map(|w| w.packets.len()).sum();
        let discarded: u64 = windows.iter().map(|w| w.discarded).sum();
        let total_valid = packets.iter().filter(|p| filter.accept(p)).count();
        prop_assert_eq!(valid_in_windows + windower.remainder().len(), total_valid);
        // Everything the filter rejected before the last full window is
        // counted somewhere (windows or the in-progress remainder).
        prop_assert!(discarded as usize <= packets.len() - total_valid);
    }

    /// Prefix membership is consistent with integer masking.
    #[test]
    fn prefix_matches_mask(ip in any::<u32>(), prefix in any::<u32>(), len in 0u8..=32) {
        let member = Ip4(ip).in_prefix(Ip4(prefix), len);
        let expected = if len == 0 {
            true
        } else {
            let mask = u32::MAX << (32 - len as u32);
            ip & mask == prefix & mask
        };
        prop_assert_eq!(member, expected);
    }

    /// Display/FromStr round-trips every address.
    #[test]
    fn ip_display_round_trip(ip in any::<u32>()) {
        let parsed: Ip4 = Ip4(ip).to_string().parse().unwrap();
        prop_assert_eq!(parsed, Ip4(ip));
    }
}
