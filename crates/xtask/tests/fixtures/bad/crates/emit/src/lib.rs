// Seeds a `map-iter-order` violation through the cross-file symbol index:
// `emit_row` calls `escape` (defined in the fixture's obs/src/json.rs), so
// it is json-reaching within one hop, and the HashMap iteration below
// feeds it.

use std::collections::{BTreeMap, HashMap};

pub fn emit_row(k: u32) -> String {
    escape(&k.to_string())
}

pub fn dump(m: &HashMap<u32, u64>) {
    for k in m.keys() {
        emit_row(*k);
    }
}

pub fn dump_sorted(m: &BTreeMap<u32, u64>) {
    for k in m.keys() {
        emit_row(*k);
    }
}

pub fn no_sink(m: &HashMap<u32, u64>) -> u64 {
    m.values().sum()
}

pub fn dump_allowed(m: &HashMap<u32, u64>) {
    // audit:allow(map-iter-order) — fixture: the marker must silence this site; audit:allow(nondet-reach) — fixture: the transitive rule honors it too
    for k in m.keys() {
        emit_row(*k);
    }
}

#[cfg(test)]
mod tests {
    pub fn dump_in_test(m: &std::collections::HashMap<u32, u64>) {
        for k in m.keys() {
            super::emit_row(*k);
        }
    }
}
