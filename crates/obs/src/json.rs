//! Minimal JSON support for the metrics snapshot schema.
//!
//! The snapshot schema (see [`crate::snapshot`]) needs only objects,
//! strings, and unsigned integers, so this module implements exactly that
//! subset — a stable writer (keys in insertion order, which snapshot code
//! keeps sorted via `BTreeMap`) and a recursive-descent parser for the
//! round-trip validation path. The workspace policy is hand-rolled codecs
//! (`DESIGN.md` §7: the vendored `serde` is an inert API stub), and this
//! keeps `obscor-obs` dependency-free.

use std::collections::BTreeMap;

/// A parsed JSON value of the metrics-schema subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// An object with string keys; insertion order preserved by sorting.
    Object(BTreeMap<String, Json>),
    /// A string.
    String(String),
    /// An unsigned integer (the only number form the schema uses).
    Number(u64),
}

impl Json {
    /// The object map, if this value is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this value is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escape a string for embedding in a JSON literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document of the schema subset.
///
/// Errors carry a byte offset and a short description. Arrays, floats,
/// booleans, and `null` are outside the schema and rejected.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'0'..=b'9') => Ok(Json::Number(self.number()?)),
            Some(other) => Err(format!(
                "unexpected `{}` at byte {} (schema allows objects, strings, unsigned integers)",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key `{key}`"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("invalid codepoint \\u{hex}"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape `{other:?}` at byte {}", self.pos))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // passed through verbatim).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(format!("non-integer number at byte {start} (schema uses u64 only)"));
        }
        text.parse::<u64>().map_err(|_| format!("number out of u64 range at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_objects() {
        let v = parse(r#"{ "a": 1, "b": { "c": "x", "d": 2 } }"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj["a"].as_u64(), Some(1));
        let b = obj["b"].as_object().unwrap();
        assert_eq!(b["c"].as_str(), Some("x"));
        assert_eq!(b["d"].as_u64(), Some(2));
    }

    #[test]
    fn escapes_round_trip() {
        let s = "a\"b\\c\nd\te";
        let doc = format!("{{\"k\":\"{}\"}}", escape(s));
        let v = parse(&doc).unwrap();
        assert_eq!(v.as_object().unwrap()["k"].as_str(), Some(s));
    }

    #[test]
    fn rejects_out_of_schema_forms() {
        assert!(parse("[1,2]").is_err());
        assert!(parse("{\"a\": 1.5}").is_err());
        assert!(parse("{\"a\": true}").is_err());
        assert!(parse("{\"a\": -1}").is_err());
        assert!(parse("{\"a\": 1} garbage").is_err());
        assert!(parse("{\"a\": 1, \"a\": 2}").is_err());
        assert!(parse("{\"a\"").is_err());
    }

    #[test]
    fn u64_bounds() {
        let v = parse(&format!("{{\"m\": {}}}", u64::MAX)).unwrap();
        assert_eq!(v.as_object().unwrap()["m"].as_u64(), Some(u64::MAX));
        assert!(parse("{\"m\": 18446744073709551616}").is_err());
    }
}
