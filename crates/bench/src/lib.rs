//! Shared fixtures for the benchmark harness.
//!
//! Every table/figure bench builds its workload through these helpers so
//! that the benchmarked region is the *analysis* under study, not the
//! scenario construction. Fixtures are cached per `(n_v, seed)` behind a
//! mutex-guarded map so Criterion's repeated calls don't regenerate the
//! world.

use obscor_anonymize::sharing::Holder;
use obscor_assoc::KeySet;
use obscor_core::WindowDegrees;
use obscor_honeyfarm::observe_all_months;
use obscor_netmodel::Scenario;
use obscor_telescope::{capture_all_windows, TelescopeWindow};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Default window size for paper-shape benches (`2^22` in DESIGN.md; the
/// bench binaries pass `OBSCOR_BENCH_NV` to override).
pub const BENCH_NV: usize = 1 << 20;

/// The cached world + observations a figure bench needs.
pub struct BenchFixture {
    /// The scenario (population + calendar).
    pub scenario: Scenario,
    /// Captured telescope windows.
    pub windows: Vec<TelescopeWindow>,
    /// Reduced per-window degrees (through the anonymization workflow).
    pub degrees: Vec<WindowDegrees>,
    /// Honeyfarm monthly source key sets.
    pub monthly_sources: Vec<KeySet>,
}

type FixtureCache = HashMap<(usize, u64), Arc<BenchFixture>>;

static CACHE: Mutex<Option<FixtureCache>> = Mutex::new(None);

/// Read the bench window size from `OBSCOR_BENCH_NV` (supports `2^NN`),
/// defaulting to [`BENCH_NV`].
pub fn bench_nv() -> usize {
    match std::env::var("OBSCOR_BENCH_NV") {
        Ok(v) => {
            if let Some(e) = v.strip_prefix("2^") {
                1usize << e.parse::<u32>().expect("bad OBSCOR_BENCH_NV exponent")
            } else {
                v.parse().expect("bad OBSCOR_BENCH_NV")
            }
        }
        Err(_) => BENCH_NV,
    }
}

/// Build (or fetch) the fixture for `(n_v, seed)`.
pub fn fixture(n_v: usize, seed: u64) -> Arc<BenchFixture> {
    let mut guard = CACHE.lock();
    let map = guard.get_or_insert_with(HashMap::new);
    if let Some(f) = map.get(&(n_v, seed)) {
        return f.clone();
    }
    let scenario = Scenario::paper_scaled(n_v, seed);
    let windows = capture_all_windows(&scenario);
    let holder = Holder::new("bench-telescope", &[0x5Au8; 32]);
    let degrees: Vec<WindowDegrees> = windows
        .iter()
        .map(|w| {
            let month = (w.coord.floor() as usize).min(scenario.grid.len() - 1);
            WindowDegrees::from_window(w, &holder, month)
        })
        .collect();
    let months = observe_all_months(&scenario);
    let monthly_sources = months.into_iter().map(|m| m.source_keys().clone()).collect();
    let f = Arc::new(BenchFixture { scenario, windows, degrees, monthly_sources });
    map.insert((n_v, seed), f.clone());
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_cached() {
        let a = fixture(1 << 14, 1);
        let b = fixture(1 << 14, 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.windows.len(), 5);
        assert_eq!(a.monthly_sources.len(), 15);
        assert_eq!(a.degrees.len(), 5);
    }

    #[test]
    fn bench_nv_parses_forms() {
        // Can't set env vars safely in parallel tests; just exercise the
        // default path.
        assert!(bench_nv() >= 1 << 12);
    }
}
