// Seeds `blocking-in-par`: a direct `.lock()` on a rayon worker, a call
// to a helper that blocks one hop away, and the same helper inside a
// `rayon::scope` spawn. The hoisted sequential lock, the allow-marked
// site, and the test-module copy stay silent.

use rayon::prelude::*;
use std::sync::Mutex;

pub fn bump(slot: &Mutex<u64>) {
    let _g = slot.lock();
}

pub fn tally(items: &[u64], slot: &Mutex<u64>) -> u64 {
    items.par_iter().map(|x| { let _g = slot.lock(); x + 1 }).sum()
}

pub fn tally_via_helper(items: &[u64], slot: &Mutex<u64>) {
    items.par_iter().for_each(|_x| bump(slot));
}

pub fn tally_scoped(items: &[u64], slot: &Mutex<u64>) {
    rayon::scope(|s| {
        s.spawn(|_s2| bump(slot));
    });
}

pub fn tally_hoisted(items: &[u64], slot: &Mutex<u64>) -> u64 {
    let _g = slot.lock();
    items.par_iter().map(|x| x + 1).sum()
}

pub fn tally_allowed(items: &[u64], slot: &Mutex<u64>) -> u64 {
    items
        .par_iter()
        // audit:allow(blocking-in-par) — fixture: the marker must silence this site
        .map(|x| { let _g = slot.lock(); x + 1 })
        .sum()
}

#[cfg(test)]
mod tests {
    pub fn tally_in_test(items: &[u64], slot: &std::sync::Mutex<u64>) -> u64 {
        items.par_iter().map(|x| { let _g = slot.lock(); x + 1 }).sum()
    }
}
