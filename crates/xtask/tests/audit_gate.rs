//! Integration tests for the audit gate.
//!
//! The fixture trees under `tests/fixtures/` are scanned (never compiled):
//! `bad/` seeds at least one violation of every rule and must fail with
//! `file:line` diagnostics; `clean/` must pass. The real workspace is also
//! audited and must be clean — this test IS the gate CI relies on.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

#[test]
fn bad_fixture_trips_every_rule() {
    let report = xtask::audit(&fixture("bad")).expect("audit runs");
    assert!(!report.is_clean());
    let rules: std::collections::HashSet<&str> =
        report.diagnostics.iter().map(|d| d.rule).collect();
    for rule in [
        "index-cast",
        "panic-path",
        "float-eq",
        "invariant-coverage",
        "instant-timing",
        "key-pack",
        "map-iter-order",
        "nonassoc-reduce",
        "atomic-ordering",
        "shared-static-mut",
        "allow-justification",
        "nondet-reach",
        "blocking-in-par",
        "lock-order",
        "panic-in-drop",
        "word-bit-manip",
    ] {
        assert!(rules.contains(rule), "rule {rule} not tripped: {:?}", report.diagnostics);
    }
    // Diagnostics carry concrete file:line positions.
    for d in &report.diagnostics {
        assert!(d.line > 0, "diagnostic without a line: {d:?}");
        assert!(d.file.ends_with(".rs"), "diagnostic without a file: {d:?}");
        let rendered = d.render();
        assert!(rendered.contains(&format!(":{}: [", d.line)), "bad render: {rendered}");
    }
}

#[test]
fn bad_fixture_diagnostics_point_at_seeded_lines() {
    let report = xtask::audit(&fixture("bad")).expect("audit runs");
    let has = |rule: &str, file_part: &str, line: usize| {
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == rule && d.file.contains(file_part) && d.line == line)
    };
    // Lines match the seeded markers in the fixture sources.
    assert!(has("panic-path", "core/src/lib.rs", 7), "panic! line");
    assert!(has("index-cast", "core/src/lib.rs", 9), ".len() as u32 line");
    assert!(has("index-cast", "core/src/lib.rs", 10), "u64 as usize line");
    assert!(has("panic-path", "core/src/lib.rs", 11), "unwrap line");
    assert!(has("float-eq", "stats/src/lib.rs", 4), "x == 0.0 line");
    assert!(has("invariant-coverage", "hypersparse/src/lib.rs", 10), "Grid::new line");
    assert!(has("invariant-coverage", "hypersparse/src/lib.rs", 28), "Loose::make line");
    assert!(has("instant-timing", "telescope/src/lib.rs", 6), "Instant::now line");
    assert!(has("instant-timing", "telescope/src/lib.rs", 7), "SystemTime::now line");
    // The allow-marked site and the test-mod site in telescope stay silent.
    assert!(
        !report.diagnostics.iter().any(|d| d.file.contains("telescope/src/lib.rs") && d.line > 7),
        "allow marker or test exemption failed: {:?}",
        report.diagnostics
    );
    // Test code in the bad fixture is exempt: nothing past line 15 in core.
    assert!(
        !report.diagnostics.iter().any(|d| d.file.contains("core/src/lib.rs") && d.line > 15),
        "test code was not exempted: {:?}",
        report.diagnostics
    );
    // Ad-hoc key packing outside hypersparse::keypack trips key-pack; the
    // allow-marked and #[cfg(test)] sites right below it stay silent.
    assert!(has("key-pack", "hypersparse/src/packing.rs", 6), "as u64 << 32 line");
    assert!(
        !report.diagnostics.iter().any(|d| d.file.contains("hypersparse/src/packing.rs") && d.line > 6),
        "key-pack allow marker or test exemption failed: {:?}",
        report.diagnostics
    );
    // Hand-rolled u64 lane split and masked popcount trip word-bit-manip;
    // the half-signature, allow-marked, and test sites below stay silent.
    assert!(has("word-bit-manip", "wordops/src/lib.rs", 5), "lane split line");
    assert!(has("word-bit-manip", "wordops/src/lib.rs", 9), "masked popcount line");
    assert!(
        !report.diagnostics.iter().any(|d| d.file.contains("wordops/src/lib.rs")
            && !(d.rule == "word-bit-manip" && matches!(d.line, 5 | 9))),
        "word-bit-manip negatives fired: {:?}",
        report.diagnostics
    );
    // pcap joined the panic-free set with the fault-recovery layer:
    // unwrapping/expecting codec or leaf-read results must trip.
    assert!(has("panic-path", "pcap/src/lib.rs", 6), "codec decode unwrap line");
    assert!(has("panic-path", "pcap/src/lib.rs", 11), "leaf read expect line");
    assert!(
        !report.diagnostics.iter().any(|d| d.file.contains("pcap/src/lib.rs") && d.line > 13),
        "pcap test code was not exempted: {:?}",
        report.diagnostics
    );
}

/// The determinism/concurrency rules fire exactly once per seeded site and
/// stay silent on every negative (BTreeMap iteration, sink-free hash use,
/// documented orderings, blessed reducers, integer reductions, allow
/// markers, test code).
#[test]
fn concurrency_rules_trip_exactly_the_seeded_sites() {
    let report = xtask::audit(&fixture("bad")).expect("audit runs");
    let in_file = |rule: &str, file_part: &str| -> Vec<usize> {
        report
            .diagnostics
            .iter()
            .filter(|d| d.rule == rule && d.file.contains(file_part))
            .map(|d| d.line)
            .collect()
    };
    // Undocumented SeqCst + vague stricter-than-Relaxed note; the
    // documented, allow-marked, and test sites stay silent.
    assert_eq!(in_file("atomic-ordering", "conc/src/lib.rs"), vec![11, 16]);
    // One float rayon sum; merge_all, integer sums, and the sequential
    // per-item sum inside the parallel closure all pass.
    assert_eq!(in_file("nonassoc-reduce", "conc/src/reduce.rs"), vec![5]);
    // Two global statics; the declared METRICS_ENABLED flag, the plain
    // lookup table, the allow-marked lock, and the test static pass.
    assert_eq!(in_file("shared-static-mut", "conc/src/globals.rs"), vec![7, 9]);
    // One bare allow marker; the justified one passes.
    assert_eq!(in_file("allow-justification", "conc/src/bare_allow.rs"), vec![5]);
    // One HashMap iteration reaching the codec; BTreeMap, sink-free,
    // allow-marked, and test iterations pass. The same site also trips
    // the transitive rule — one-hop and full-depth taint agree at depth 1.
    assert_eq!(in_file("map-iter-order", "emit/src/lib.rs"), vec![13]);
    assert_eq!(in_file("nondet-reach", "emit/src/lib.rs"), vec![13]);
    // Hash iterations reaching the JSON codec three hops away and the
    // archive codec two hops away; the BTreeMap, allow-marked, and test
    // iterations pass — and `map-iter-order` must stay silent (the sink
    // is beyond its one-hop index; see the dedicated test below).
    assert_eq!(in_file("nondet-reach", "deep/src/lib.rs"), vec![16, 39]);
    // A direct `.lock()` on a worker, a transitive one through `bump`,
    // and the same inside `rayon::scope`; the hoisted, allow-marked, and
    // test sites pass.
    assert_eq!(in_file("blocking-in-par", "parblock/src/lib.rs"), vec![14, 18, 23]);
    // One two-lock cycle, reported once; the consistent order, the
    // non-overlapping scopes, and the allow-marked cycle stay silent.
    assert_eq!(in_file("lock-order", "locks/src/lib.rs"), vec![16]);
    // A direct `unwrap()` in one destructor, a transitive panic in
    // another; the allow-marked drop and the inherent `drop` pass.
    assert_eq!(in_file("panic-in-drop", "dropper/src/lib.rs"), vec![21, 31]);
    // No rule fires anywhere else in these files.
    for part in ["conc/", "emit/", "obs/", "deep/", "parblock/", "locks/", "dropper/"] {
        let extra: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| {
                d.file.contains(part)
                    && !matches!(
                        (d.rule, d.line),
                        ("atomic-ordering", 11 | 16)
                            | ("nonassoc-reduce", 5)
                            | ("shared-static-mut", 7 | 9)
                            | ("allow-justification", 5)
                            | ("map-iter-order", 13)
                    )
                    && !(d.file.contains("emit/") && d.rule == "nondet-reach" && d.line == 13)
                    && !(d.file.contains("deep/")
                        && d.rule == "nondet-reach"
                        && matches!(d.line, 16 | 39))
                    && !(d.file.contains("parblock/")
                        && d.rule == "blocking-in-par"
                        && matches!(d.line, 14 | 18 | 23))
                    && !(d.file.contains("locks/") && d.rule == "lock-order" && d.line == 16)
                    && !(d.file.contains("dropper/")
                        && d.rule == "panic-in-drop"
                        && matches!(d.line, 21 | 31))
            })
            .collect();
        assert!(extra.is_empty(), "unexpected findings in {part}: {extra:?}");
    }
}

/// The seeded map-iter-order finding only exists because the symbol index
/// propagated taint across crates: `emit_row` (crates/emit) calls `escape`
/// (crates/obs/src/json.rs), making the HashMap iteration's sink
/// json-reaching one hop away.
#[test]
fn map_iter_taint_crosses_files_through_the_symbol_index() {
    let report = xtask::audit(&fixture("bad")).expect("audit runs");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "map-iter-order" && d.file.contains("emit/src/lib.rs"))
        .expect("seeded cross-file taint finding");
    assert!(
        d.message.contains("emit_row") && d.message.contains("obscor_obs::json"),
        "finding should name the one-hop sink: {}",
        d.message
    );
}

/// The seeded three-hop chain in `crates/deep` — `digest` → `relay` →
/// `emit_row` → `escape`, crossing three files — is caught by the full
/// call-graph reachability and provably missed by the one-hop symbol
/// index: neither `digest` nor `relay` is json-reaching at depth 1, so
/// `map-iter-order` stays silent on the very line `nondet-reach` flags.
#[test]
fn nondet_taint_crosses_three_hops_beyond_the_one_hop_index() {
    let report = xtask::audit(&fixture("bad")).expect("audit runs");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "nondet-reach" && d.file.contains("deep/src/lib.rs") && d.line == 16)
        .expect("seeded three-hop taint finding");
    assert!(
        d.message.contains("`digest` → `relay` → `emit_row` → `escape`"),
        "finding should render the full chain: {}",
        d.message
    );
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.rule == "map-iter-order" && d.file.contains("deep/")),
        "the one-hop rule must miss the deep chain"
    );
    let one_hop = xtask::index::SymbolIndex::from_graph(&report.call_graph);
    assert!(one_hop.json_reaching.contains("emit_row"), "depth 1 is indexed");
    for beyond in ["relay", "digest"] {
        assert!(
            !one_hop.json_reaching.contains(beyond),
            "`{beyond}` must be beyond the one-hop index"
        );
    }
}

#[test]
fn clean_fixture_passes() {
    let report = xtask::audit(&fixture("clean")).expect("audit runs");
    assert!(report.is_clean(), "unexpected diagnostics: {:?}", report.diagnostics);
    assert!(report.files_scanned >= 3);
}

/// The gate CI relies on: the real workspace must have no findings beyond
/// the committed ratchet baseline, and the baseline must carry no
/// unexplained slack (every entry still matches a live finding).
#[test]
fn real_workspace_is_clean_modulo_committed_baseline() {
    let root = workspace_root();
    let report = xtask::audit(&root).expect("audit runs");
    let baseline = xtask::baseline::Baseline::load(&root.join("audit-baseline.json"))
        .expect("committed audit-baseline.json");
    let gate = xtask::baseline::gate(&report.diagnostics, &baseline);
    let rendered: Vec<String> =
        gate.new.iter().map(|&i| report.diagnostics[i].render()).collect();
    assert!(gate.new.is_empty(), "new findings not in baseline:\n{}", rendered.join("\n"));
    assert!(
        gate.stale.is_empty(),
        "stale baseline entries (fixed findings — shrink the ratchet with \
         --update-baseline): {:?}",
        gate.stale
    );
}

/// Fingerprints are line-number-free: shifting a finding down the file (a
/// new comment block above it) keeps its fingerprint, so the baseline
/// still recognizes it. Editing the offending line itself changes it.
#[test]
fn fingerprints_survive_line_shifting_edits() {
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("fp_shift");
    let src_dir = tmp.join("crates/conc/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    let original = "pub fn undocumented(c: &std::sync::atomic::AtomicU64) {\n\
                    c.store(1, std::sync::atomic::Ordering::SeqCst);\n\
                    }\n";
    std::fs::write(src_dir.join("lib.rs"), original).expect("write");
    let before = xtask::audit(&tmp).expect("audit runs");
    assert_eq!(before.diagnostics.len(), 1, "{:?}", before.diagnostics);

    let shifted = format!("// a comment\n// another comment\n\n{original}");
    std::fs::write(src_dir.join("lib.rs"), &shifted).expect("write");
    let after = xtask::audit(&tmp).expect("audit runs");
    assert_eq!(after.diagnostics.len(), 1);
    assert_ne!(before.diagnostics[0].line, after.diagnostics[0].line, "line moved");
    assert_eq!(
        before.diagnostics[0].fingerprint, after.diagnostics[0].fingerprint,
        "fingerprint must not move with the line"
    );

    let edited = shifted.replace("c.store(1,", "c.store(2,");
    std::fs::write(src_dir.join("lib.rs"), edited).expect("write");
    let changed = xtask::audit(&tmp).expect("audit runs");
    assert_eq!(changed.diagnostics.len(), 1);
    assert_ne!(
        before.diagnostics[0].fingerprint, changed.diagnostics[0].fingerprint,
        "editing the offending line must retire the fingerprint"
    );
}

/// CLI ratchet round-trip: --update-baseline freezes the bad fixture's
/// findings, a gated re-run is clean (exit 0), and a finding absent from
/// the baseline still fails (exit 1) with the new site rendered.
#[test]
fn cli_baseline_ratchet_round_trip() {
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("ratchet");
    std::fs::create_dir_all(&tmp).expect("mkdir");
    let baseline = tmp.join("baseline.json");

    let update = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--root"])
        .arg(fixture("bad"))
        .arg("--baseline")
        .arg(&baseline)
        .arg("--update-baseline")
        .output()
        .expect("binary runs");
    assert_eq!(update.status.code(), Some(0), "update-baseline failed: {update:?}");
    assert!(baseline.is_file());

    let gated = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--root"])
        .arg(fixture("bad"))
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("binary runs");
    assert_eq!(gated.status.code(), Some(0), "baselined findings must pass: {gated:?}");
    let stdout = String::from_utf8_lossy(&gated.stdout);
    assert!(stdout.contains("baselined"), "summary should count baselined findings:\n{stdout}");

    // JSON mode reports the gate verdict per violation.
    let json = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--format", "json", "--root"])
        .arg(fixture("bad"))
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("binary runs");
    assert_eq!(json.status.code(), Some(0));
    let jout = String::from_utf8_lossy(&json.stdout);
    assert!(jout.contains("\"ok\":true"), "{jout}");
    assert!(jout.contains("\"baselined\":true"), "{jout}");
    assert!(jout.contains("\"fingerprint\":\""), "{jout}");

    // An empty baseline leaves every finding "new": exit 1 again.
    let empty = tmp.join("empty.json");
    std::fs::write(&empty, "{\"version\": 1, \"entries\": []}\n").expect("write");
    let failed = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--root"])
        .arg(fixture("bad"))
        .arg("--baseline")
        .arg(&empty)
        .output()
        .expect("binary runs");
    assert_eq!(failed.status.code(), Some(1), "unbaselined findings must fail: {failed:?}");
    let fout = String::from_utf8_lossy(&failed.stdout);
    assert!(fout.contains("new violation(s)"), "{fout}");
    assert!(fout.contains("[panic-path]"), "{fout}");
}

/// A missing baseline file is an I/O error (exit 2), not a silent pass.
#[test]
fn cli_missing_baseline_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--root"])
        .arg(fixture("clean"))
        .args(["--baseline", "/definitely/not/a/baseline.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "missing baseline must not pass: {out:?}");
    // And --update-baseline without --baseline is a usage error.
    let usage = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--update-baseline"])
        .output()
        .expect("binary runs");
    assert_eq!(usage.status.code(), Some(2));
}

#[test]
fn cli_exits_nonzero_with_file_line_output_on_bad_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--root"])
        .arg(fixture("bad"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "expected exit 1: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("src/lib.rs:"), "no file:line in output:\n{stdout}");
    assert!(stdout.contains("[panic-path]"), "missing rule tag:\n{stdout}");
    assert!(stdout.contains("violation(s)"), "missing summary:\n{stdout}");
}

#[test]
fn cli_json_mode_is_machine_readable() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--json", "--root"])
        .arg(fixture("bad"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{') && stdout.trim_end().ends_with('}'));
    assert!(stdout.contains("\"ok\":false"));
    for rule in
        ["index-cast", "panic-path", "float-eq", "invariant-coverage", "instant-timing", "key-pack"]
    {
        assert!(stdout.contains(&format!("\"rule\":\"{rule}\"")), "missing {rule}:\n{stdout}");
    }
    assert!(stdout.contains("\"line\":"));
}

#[test]
fn cli_json_mode_clean_exit_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--json", "--root"])
        .arg(fixture("clean"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "expected exit 0: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"ok\":true"));
    assert!(stdout.contains("\"violations\":[]"));
}

#[test]
fn cli_usage_error_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("frobnicate")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn cli_nonexistent_root_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--root", "/definitely/not/a/real/dir"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "a bad root must not report clean");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not a directory"), "stderr: {stderr}");
}
