//! IPv4 packet-header records.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address stored as a `u32` — the same integer that indexes the
/// `2^32 x 2^32` traffic matrices (`1.1.1.1` ↔ `16843009`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ip4(pub u32);

impl Ip4 {
    /// Build from dotted-quad octets.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        // audit:allow(index-cast) — widening u8→u32 casts; `From` is not callable in const fn
        Ip4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [(self.0 >> 24) as u8, (self.0 >> 16) as u8, (self.0 >> 8) as u8, self.0 as u8]
    }

    /// Whether this address falls inside `prefix/len` (CIDR membership).
    /// `len == 0` matches everything.
    pub fn in_prefix(self, prefix: Ip4, len: u8) -> bool {
        debug_assert!(len <= 32);
        if len == 0 {
            return true;
        }
        // audit:allow(index-cast) — widening u8→u32 cast of a checked prefix length
        let mask = u32::MAX << (32 - len as u32);
        (self.0 & mask) == (prefix.0 & mask)
    }
}

impl fmt::Display for Ip4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// Dotted-quad parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIpError;

impl fmt::Display for ParseIpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid dotted-quad IPv4 address")
    }
}

impl std::error::Error for ParseIpError {}

impl FromStr for Ip4 {
    type Err = ParseIpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut ip = 0u32;
        for _ in 0..4 {
            let octet: u32 = parts
                .next()
                .ok_or(ParseIpError)?
                .parse()
                .map_err(|_| ParseIpError)?;
            if octet > 255 {
                return Err(ParseIpError);
            }
            ip = (ip << 8) | octet;
        }
        if parts.next().is_some() {
            return Err(ParseIpError);
        }
        Ok(Ip4(ip))
    }
}

/// Transport protocol of a packet, by IANA protocol number.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// ICMP (protocol number 1).
    Icmp,
    /// TCP (protocol number 6).
    #[default]
    Tcp,
    /// UDP (protocol number 17).
    Udp,
    /// Any other protocol number.
    Other(u8),
}

impl Protocol {
    /// The IANA protocol number.
    pub const fn number(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }

    /// From an IANA protocol number.
    pub const fn from_number(n: u8) -> Self {
        match n {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            n => Protocol::Other(n),
        }
    }
}

/// One captured packet header — everything the traffic-matrix pipeline
/// needs, nothing more (payloads never leave the sensor in the paper's
/// trusted-sharing framework).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Packet {
    /// Capture timestamp in microseconds since the epoch.
    pub ts_micros: u64,
    /// Source address.
    pub src: Ip4,
    /// Destination address.
    pub dst: Ip4,
    /// Transport protocol.
    pub proto: Protocol,
    /// Source port (0 for ICMP).
    pub src_port: u16,
    /// Destination port (0 for ICMP).
    pub dst_port: u16,
    /// Original wire length in bytes.
    pub length: u16,
}

impl Packet {
    /// Convenience constructor for a TCP packet.
    pub fn tcp(ts_micros: u64, src: Ip4, dst: Ip4, src_port: u16, dst_port: u16) -> Self {
        Packet { ts_micros, src, dst, proto: Protocol::Tcp, src_port, dst_port, length: 40 }
    }

    /// Convenience constructor for a UDP packet.
    pub fn udp(ts_micros: u64, src: Ip4, dst: Ip4, src_port: u16, dst_port: u16) -> Self {
        Packet { ts_micros, src, dst, proto: Protocol::Udp, src_port, dst_port, length: 28 }
    }

    /// The `(source, destination)` matrix coordinate of this packet.
    pub fn coordinate(&self) -> (u32, u32) {
        (self.src.0, self.dst.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_octet_round_trip() {
        let ip = Ip4::from_octets(192, 168, 0, 1);
        assert_eq!(ip.0, 0xC0A80001);
        assert_eq!(ip.octets(), [192, 168, 0, 1]);
        assert_eq!(ip.to_string(), "192.168.0.1");
    }

    #[test]
    fn paper_worked_example_index() {
        // "3 packets from IPv4 source 1.1.1.1 ... A_t(16843009, ...)".
        let ip: Ip4 = "1.1.1.1".parse().unwrap();
        assert_eq!(ip.0, 16843009);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("1.2.3".parse::<Ip4>().is_err());
        assert!("1.2.3.4.5".parse::<Ip4>().is_err());
        assert!("256.1.1.1".parse::<Ip4>().is_err());
        assert!("a.b.c.d".parse::<Ip4>().is_err());
        assert!("".parse::<Ip4>().is_err());
    }

    #[test]
    fn prefix_membership() {
        let darkspace = Ip4::from_octets(44, 0, 0, 0);
        assert!(Ip4::from_octets(44, 1, 2, 3).in_prefix(darkspace, 8));
        assert!(!Ip4::from_octets(45, 1, 2, 3).in_prefix(darkspace, 8));
        assert!(Ip4::from_octets(44, 0, 0, 0).in_prefix(darkspace, 32));
        assert!(!Ip4::from_octets(44, 0, 0, 1).in_prefix(darkspace, 32));
        assert!(Ip4::from_octets(9, 9, 9, 9).in_prefix(darkspace, 0));
    }

    #[test]
    fn protocol_numbers_round_trip() {
        for p in [Protocol::Icmp, Protocol::Tcp, Protocol::Udp, Protocol::Other(47)] {
            assert_eq!(Protocol::from_number(p.number()), p);
        }
        assert_eq!(Protocol::from_number(6), Protocol::Tcp);
    }

    #[test]
    fn packet_coordinate_matches_matrix_convention() {
        let p = Packet::tcp(0, "1.1.1.1".parse().unwrap(), "2.2.2.2".parse().unwrap(), 1, 2);
        assert_eq!(p.coordinate(), (16843009, 33686018));
    }
}
