//! Table I: regenerate the data-set inventory (15 GreyNoise months, 5
//! CAIDA windows) and benchmark the inventory computation.

use criterion::{criterion_group, criterion_main, Criterion};
use obscor_bench::{bench_nv, fixture};
use obscor_telescope::inventory;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(bench_nv(), 42);

    // Print the regenerated Table I once, in the paper's shape.
    eprintln!("\n=== TABLE I (regenerated, N_V = {}) ===", f.scenario.n_v);
    eprintln!("GreyNoise Month   Sources");
    for (m, keys) in f.monthly_sources.iter().enumerate() {
        eprintln!("{:<17} {:>9}", f.scenario.grid.label(m), keys.len());
    }
    eprintln!("{}", obscor_telescope::inventory::render(&inventory(&f.windows)));

    c.bench_function("table1/caida_inventory", |b| {
        b.iter(|| black_box(inventory(&f.windows)))
    });
    c.bench_function("table1/greynoise_month_sizes", |b| {
        b.iter(|| {
            let total: usize = f.monthly_sources.iter().map(|k| k.len()).sum();
            black_box(total)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
