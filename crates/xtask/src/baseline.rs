//! Ratchet baseline for `cargo xtask audit`.
//!
//! A baseline file records the fingerprints of known findings so CI can
//! fail on *new* findings only: the debt is frozen, never grown, and
//! shrinking it (fixing a baselined site) is always safe. Regenerate with
//! `cargo xtask audit --baseline audit-baseline.json --update-baseline`.
//!
//! Fingerprints must survive unrelated edits, so they deliberately exclude
//! line numbers. A fingerprint is FNV-1a 64 over:
//!
//! * the rule id,
//! * the workspace-relative path,
//! * the whitespace-normalized token texts of the finding's line
//!   (comments and string contents are already blanked, so edits to either
//!   do not move fingerprints),
//! * an occurrence ordinal, to keep identical lines in one file distinct.
//!
//! Inserting or reordering *other* lines in the file therefore leaves a
//! finding's fingerprint unchanged; editing the offending line itself (or
//! renaming the file) retires the old entry — exactly the moment a human
//! should re-look anyway.

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;

use crate::rules::Diagnostic;
use crate::scan::SourceFile;

/// One baselined finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// 16-hex-digit FNV-1a fingerprint.
    pub fingerprint: String,
    /// Rule id (informational; the fingerprint alone gates).
    pub rule: String,
    /// Workspace-relative path (informational).
    pub file: String,
    /// Written justification for carrying the finding instead of fixing
    /// it. Every committed entry must have one (the gate tests assert
    /// non-empty); `--update-baseline` preserves it across regeneration.
    pub why: String,
}

/// A loaded (or freshly built) baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Entries, sorted by (file, rule, fingerprint) on save.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Build a baseline that accepts every diagnostic in `diags`.
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Self {
        let mut entries: Vec<BaselineEntry> = diags
            .iter()
            .map(|d| BaselineEntry {
                fingerprint: d.fingerprint.clone(),
                rule: d.rule.to_string(),
                file: d.file.clone(),
                why: String::new(),
            })
            .collect();
        entries.sort_by(|a, b| {
            (&a.file, &a.rule, &a.fingerprint).cmp(&(&b.file, &b.rule, &b.fingerprint))
        });
        entries.dedup();
        Baseline { entries }
    }

    /// Load a baseline from `path`.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Ok(Self::parse(&text))
    }

    /// Parse the baseline JSON. The reader is a forgiving string-scanner
    /// (the writer below is the canonical form): it walks the document's
    /// string literals and interprets the `"fingerprint"` / `"rule"` /
    /// `"file"` keys in order, so formatting changes or extra keys do not
    /// break it.
    pub fn parse(text: &str) -> Self {
        let mut entries = Vec::new();
        let mut cur: Option<BaselineEntry> = None;
        let mut strings = StringScanner::new(text);
        while let Some(key) = strings.next() {
            match key.as_str() {
                "fingerprint" => {
                    if let Some(e) = cur.take() {
                        entries.push(e);
                    }
                    let Some(v) = strings.next() else { break };
                    cur = Some(BaselineEntry {
                        fingerprint: v,
                        rule: String::new(),
                        file: String::new(),
                        why: String::new(),
                    });
                }
                "rule" => {
                    let Some(v) = strings.next() else { break };
                    if let Some(e) = cur.as_mut() {
                        e.rule = v;
                    }
                }
                "file" => {
                    let Some(v) = strings.next() else { break };
                    if let Some(e) = cur.as_mut() {
                        e.file = v;
                    }
                }
                "why" => {
                    let Some(v) = strings.next() else { break };
                    if let Some(e) = cur.as_mut() {
                        e.why = v;
                    }
                }
                _ => {}
            }
        }
        if let Some(e) = cur.take() {
            entries.push(e);
        }
        Baseline { entries }
    }

    /// Serialize to the canonical on-disk form: one entry per line, sorted,
    /// so diffs are reviewable and merges are line-based.
    pub fn to_json(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort_by(|a, b| {
            (&a.file, &a.rule, &a.fingerprint).cmp(&(&b.file, &b.rule, &b.fingerprint))
        });
        entries.dedup();
        let mut s = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
        for (i, e) in entries.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"fingerprint\": \"{}\", \"rule\": \"{}\", \"file\": \"{}\", \
                 \"why\": \"{}\"}}{}\n",
                e.fingerprint,
                e.rule,
                e.file,
                crate::json_escape(&e.why),
                if i + 1 < entries.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Copy the `why` justifications of `old` onto matching fingerprints,
    /// so `--update-baseline` regeneration never loses the written record.
    pub fn adopt_whys(&mut self, old: &Baseline) {
        for e in &mut self.entries {
            if e.why.is_empty() {
                if let Some(prev) =
                    old.entries.iter().find(|o| o.fingerprint == e.fingerprint)
                {
                    e.why = prev.why.clone();
                }
            }
        }
    }

    /// Write the canonical form to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Whether `fingerprint` is baselined.
    pub fn contains(&self, fingerprint: &str) -> bool {
        self.entries.iter().any(|e| e.fingerprint == fingerprint)
    }
}

/// Iterator over the JSON string literals of a document, in order.
struct StringScanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> StringScanner<'a> {
    fn new(text: &'a str) -> Self {
        StringScanner { bytes: text.as_bytes(), pos: 0 }
    }
}

impl Iterator for StringScanner<'_> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'"' {
            self.pos += 1;
        }
        if self.pos >= self.bytes.len() {
            return None;
        }
        self.pos += 1; // opening quote
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return Some(String::from_utf8_lossy(&out).into_owned());
                }
                b'\\' if self.pos + 1 < self.bytes.len() => {
                    // Keep escapes simple: fingerprints/rules are plain
                    // ASCII and paths use forward slashes; unescape the
                    // two that can plausibly occur.
                    match self.bytes[self.pos + 1] {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        c => {
                            out.push(b'\\');
                            out.push(c);
                        }
                    }
                    self.pos += 2;
                }
                c => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
        None
    }
}

/// FNV-1a 64-bit.
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Whitespace-normalized token context of `line` in `file`: the token
/// texts joined with single spaces. Line numbers never enter the hash.
pub fn line_context(file: &SourceFile, line: usize) -> String {
    let mut out = String::new();
    for i in 0..file.toks.len() {
        if file.tok_line(i) == line {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(file.tok_text(i));
        }
    }
    out
}

/// Compute the fingerprint for a diagnostic given its line's token context
/// and its occurrence ordinal among identical (rule, file, context) triples.
pub fn fingerprint(rule: &str, file: &str, context: &str, ordinal: usize) -> String {
    let mut h = FNV_OFFSET;
    for part in [rule, file, context] {
        h = fnv1a(h, part.as_bytes());
        h = fnv1a(h, &[0]);
    }
    h = fnv1a(h, &ordinal.to_le_bytes());
    format!("{h:016x}")
}

/// Fill in `fingerprint` on every diagnostic. `sources` maps relative path
/// to its scanned [`SourceFile`]; diagnostics against unknown files (none
/// in practice) hash an empty context.
pub fn assign_fingerprints(diags: &mut [Diagnostic], sources: &HashMap<&str, &SourceFile>) {
    let mut counts: HashMap<(String, String, String), usize> = HashMap::new();
    for d in diags.iter_mut() {
        let context = sources
            .get(d.file.as_str())
            .map(|f| line_context(f, d.line))
            .unwrap_or_default();
        let key = (d.rule.to_string(), d.file.clone(), context.clone());
        let ordinal = *counts.entry(key).and_modify(|c| *c += 1).or_insert(0);
        d.fingerprint = fingerprint(d.rule, &d.file, &context, ordinal);
    }
}

/// The result of gating a report against a baseline.
#[derive(Debug)]
pub struct Gate {
    /// Indices (into the report's diagnostics) of findings NOT in the
    /// baseline — these fail the build.
    pub new: Vec<usize>,
    /// Count of findings suppressed by the baseline.
    pub baselined: usize,
    /// Baseline fingerprints with no matching finding anymore (fixed or
    /// moved); informational, prompts a `--update-baseline`.
    pub stale: Vec<String>,
}

/// Gate `diags` (fingerprints already assigned) against `baseline`.
pub fn gate(diags: &[Diagnostic], baseline: &Baseline) -> Gate {
    let mut new = Vec::new();
    let mut baselined = 0;
    let mut present: HashSet<&str> = HashSet::new();
    for (i, d) in diags.iter().enumerate() {
        if baseline.contains(&d.fingerprint) {
            baselined += 1;
            present.insert(d.fingerprint.as_str());
        } else {
            new.push(i);
        }
    }
    let stale = baseline
        .entries
        .iter()
        .filter(|e| !present.contains(e.fingerprint.as_str()))
        .map(|e| e.fingerprint.clone())
        .collect();
    Gate { new, baselined, stale }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn mem(src: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from("m.rs"), "m.rs".into(), src.to_string())
    }

    fn d(rule: &'static str, file: &str, line: usize) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.into(),
            line,
            message: "m".into(),
            fingerprint: String::new(),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let b = Baseline {
            entries: vec![
                BaselineEntry {
                    fingerprint: "00ff00ff00ff00ff".into(),
                    rule: "panic-path".into(),
                    file: "crates/a/src/lib.rs".into(),
                    why: "checked invariant: index proven in-bounds".into(),
                },
                BaselineEntry {
                    fingerprint: "1234567812345678".into(),
                    rule: "map-iter-order".into(),
                    file: "crates/b/src/lib.rs".into(),
                    why: String::new(),
                },
            ],
        };
        let parsed = Baseline::parse(&b.to_json());
        assert_eq!(parsed.entries.len(), 2);
        assert!(parsed.contains("00ff00ff00ff00ff"));
        assert!(parsed.contains("1234567812345678"));
        assert_eq!(parsed.entries[1].rule, "map-iter-order");
        assert_eq!(parsed.entries[0].file, "crates/a/src/lib.rs");
        assert_eq!(parsed.entries[0].why, "checked invariant: index proven in-bounds");
        assert_eq!(parsed.entries[1].why, "");
    }

    #[test]
    fn regeneration_preserves_whys() {
        let f = mem("x.unwrap();\n");
        let sources = HashMap::from([("m.rs", &f)]);
        let mut diags = vec![d("panic-path", "m.rs", 1)];
        assign_fingerprints(&mut diags, &sources);
        let mut old = Baseline::from_diagnostics(&diags);
        old.entries[0].why = "legacy debt, tracked in ROADMAP".into();
        let mut fresh = Baseline::from_diagnostics(&diags);
        assert!(fresh.entries[0].why.is_empty());
        fresh.adopt_whys(&old);
        assert_eq!(fresh.entries[0].why, "legacy debt, tracked in ROADMAP");
    }

    #[test]
    fn fingerprints_ignore_line_numbers() {
        let before = mem("fn a() { x.unwrap(); }\n");
        let after = mem("// a new comment\n\nfn a() { x.unwrap(); }\n");
        let ctx_before = line_context(&before, 1);
        let ctx_after = line_context(&after, 3);
        assert_eq!(ctx_before, ctx_after);
        assert_eq!(
            fingerprint("panic-path", "m.rs", &ctx_before, 0),
            fingerprint("panic-path", "m.rs", &ctx_after, 0)
        );
    }

    #[test]
    fn ordinals_separate_identical_lines() {
        let f = mem("x.unwrap();\nx.unwrap();\n");
        let sources = HashMap::from([("m.rs", &f)]);
        let mut diags = vec![d("panic-path", "m.rs", 1), d("panic-path", "m.rs", 2)];
        assign_fingerprints(&mut diags, &sources);
        assert_ne!(diags[0].fingerprint, diags[1].fingerprint);
        assert_eq!(diags[0].fingerprint.len(), 16);
    }

    #[test]
    fn gate_splits_new_and_baselined() {
        let f = mem("x.unwrap();\ny.unwrap();\n");
        let sources = HashMap::from([("m.rs", &f)]);
        let mut diags = vec![d("panic-path", "m.rs", 1), d("panic-path", "m.rs", 2)];
        assign_fingerprints(&mut diags, &sources);
        let baseline = Baseline::from_diagnostics(&diags[..1]);
        let g = gate(&diags, &baseline);
        assert_eq!(g.new, vec![1]);
        assert_eq!(g.baselined, 1);
        assert!(g.stale.is_empty());

        let empty = gate(&[], &baseline);
        assert_eq!(empty.stale.len(), 1);
    }
}
