//! GraphBLAS-style hypersparse traffic matrices.
//!
//! This crate implements the sparse-matrix substrate used by the paper
//! *Temporal Correlation of Internet Observatories and Outposts* (Kepner et
//! al., IPDPS 2022): `2^32 x 2^32` traffic matrices `A_t(i, j)` holding the
//! number of valid packets sent from source `i` to destination `j` inside a
//! constant-packet window `t`.
//!
//! Because the index space (`2^32` rows and columns) vastly exceeds the number
//! of occupied rows (at most one per packet), the matrices are *hypersparse*:
//! both the row set and the column sets are compressed, so storage is
//! `O(nnz)` with no dense dimension-sized arrays anywhere. This is the
//! doubly-compressed sparse row (DCSR) representation used by SuiteSparse
//! GraphBLAS for the same workload.
//!
//! The crate provides:
//!
//! * [`Coo`] — an append-only triple buffer compacted either by comparison
//!   sort (serial oracle, rayon-parallel ablation) or by the [`radix`] LSD
//!   counting-sort kernel, selected at a measured size crossover,
//! * [`Csr`] — an immutable hypersparse matrix supporting the full menu of
//!   network quantities from Table II of the paper ([`reduce`]),
//! * [`hier::HierarchicalAccumulator`] — the hierarchical accumulation
//!   architecture of Kepner et al. (IPDPS-W 2020/HPEC 2021): packets are
//!   buffered into small leaf matrices which are summed pairwise like a
//!   binary counter, keeping every intermediate merge cache-friendly,
//! * [`stream::StreamingBuilder`] — a multi-producer concurrent builder that
//!   shards packets across worker threads over crossbeam channels,
//! * [`ops`] — element-wise addition, zero-norm (pattern) extraction,
//!   permutation (anonymization invariance), scaling, and transposition.
//!
//! # Quick example
//!
//! ```
//! use obscor_hypersparse::{Coo, reduce};
//!
//! let mut coo = Coo::<u64>::new();
//! coo.push(16843009, 33686018, 3); // 1.1.1.1 -> 2.2.2.2, 3 packets
//! coo.push(16843009, 33686019, 1);
//! let a = coo.into_csr();
//! assert_eq!(reduce::valid_packets(&a), 4);
//! assert_eq!(reduce::unique_sources(&a), 1);
//! assert_eq!(reduce::unique_destinations(&a), 2);
//! assert_eq!(reduce::max_source_fan_out(&a), 2);
//! ```

pub mod coo;
pub mod csr;
pub mod dcsc;
pub mod hier;
pub mod keypack;
pub mod ops;
pub mod radix;
pub mod reduce;
pub mod serialize;
pub mod spgemm;
pub mod spill;
pub mod stream;
pub mod value;

pub use coo::Coo;
pub use csr::Csr;
pub use dcsc::Dcsc;
pub use hier::HierarchicalAccumulator;
pub use spill::{
    DirMedium, MemMedium, SpillAccumulator, SpillConfig, SpillFault, SpillMedium, SpillReport,
    SpillStats, SpillStore,
};
pub use stream::StreamingBuilder;
pub use value::Value;

/// Row/column index type. The paper uses `uint32` indices so that an entire
/// IPv4 address space fits on each axis.
pub type Index = u32;
