//! Integration: the full pipeline reproduces the paper's qualitative
//! results on the synthetic world — recovered from raw packets, not read
//! from the generator.

use obscor::core::fitscan::{alpha_by_degree, drop_by_degree};
use obscor::core::{pipeline, AnalysisConfig, PaperAnalysis};
use obscor::netmodel::Scenario;
use obscor::stats::fit::{fit_cauchy, fit_gaussian};
use std::sync::OnceLock;

fn analysis() -> &'static (Scenario, PaperAnalysis) {
    static A: OnceLock<(Scenario, PaperAnalysis)> = OnceLock::new();
    A.get_or_init(|| {
        let s = Scenario::paper_scaled(1 << 16, 4242);
        let a = pipeline::run(&s, &AnalysisConfig::fast());
        (s, a)
    })
}

#[test]
fn table1_inventory_matches_paper_layout() {
    let (s, a) = analysis();
    assert_eq!(a.greynoise_inventory.len(), 15, "15 GreyNoise months");
    assert_eq!(a.caida_inventory.len(), 5, "5 CAIDA windows");
    assert_eq!(a.greynoise_inventory[0].label, "2020-02");
    assert_eq!(a.greynoise_inventory[14].label, "2021-04");
    for r in &a.caida_inventory {
        assert_eq!(r.packets, s.n_v as u64, "constant packet windows");
        assert!(r.duration_secs > 0.0, "variable time");
    }
    // GreyNoise months see more sources than a telescope window: the
    // outpost integrates over a month (Table I's 1-14M vs 0.5-0.8M).
    let mean_gn: f64 = a.greynoise_inventory.iter().map(|r| r.sources as f64).sum::<f64>() / 15.0;
    let mean_caida: f64 =
        a.caida_inventory.iter().map(|r| r.sources as f64).sum::<f64>() / 5.0;
    assert!(
        mean_gn > mean_caida,
        "GreyNoise mean {mean_gn} should exceed CAIDA mean {mean_caida}"
    );
}

#[test]
fn table1_config_change_spikes_present() {
    let (_, a) = analysis();
    // Table I: "sharp increases in 2020-03 and 2021-04 are a result of
    // configuration changes".
    let baseline = a.greynoise_inventory[2].sources as f64; // 2020-04
    assert!(a.greynoise_inventory[1].sources as f64 > 1.5 * baseline, "2020-03 spike");
    assert!(a.greynoise_inventory[14].sources as f64 > 1.5 * baseline, "2021-04 spike");
}

#[test]
fn fig3_zipf_mandelbrot_fits_each_window() {
    let (_, a) = analysis();
    for dist in &a.distributions {
        let fit = dist.fit.expect("every window fits");
        // The planted brightness law has alpha = 1.3; realized degrees are
        // Poisson-thinned so the recovered exponent is close but not exact.
        assert!(
            (0.8..=2.0).contains(&fit.alpha),
            "window {}: recovered ZM alpha {} far from planted 1.3",
            dist.window_label,
            fit.alpha
        );
        // Distributions are heavy-tailed: d_max far beyond the mean.
        assert!(dist.d_max > 100);
    }
}

#[test]
fn fig4_bright_sources_nearly_always_coeval() {
    let (_, a) = analysis();
    // Paper: "bright CAIDA sources with d > sqrt(N_V) are nearly always
    // also seen by the GreyNoise observations during the same month"
    // (abstract: ~70% of the brightest consistently detected; our
    // synthetic honeyfarm has no sensor outages so it is higher).
    let mut bright_bins = 0;
    for peak in &a.peaks {
        for p in &peak.points {
            if (p.d as f64).log2() >= a.bright_log2 && p.n_sources >= 5 {
                assert!(
                    p.fraction >= 0.7,
                    "window {} bright bin 2^{}: fraction {}",
                    peak.window_label,
                    p.bin,
                    p.fraction
                );
                bright_bins += 1;
            }
        }
    }
    assert!(bright_bins >= 3, "too few bright bins measured: {bright_bins}");
}

#[test]
fn fig4_faint_sources_follow_log_law() {
    let (_, a) = analysis();
    // Paper: p(d) ≈ log2(d)/log2(sqrt(N_V)) below the knee.
    let mut total_abs_err = 0.0;
    let mut n = 0;
    for peak in &a.peaks {
        for p in &peak.points {
            if (p.d as f64).log2() < a.bright_log2 && p.n_sources >= 30 {
                total_abs_err += (p.fraction - p.empirical_law).abs();
                n += 1;
            }
        }
    }
    assert!(n >= 10, "need faint bins with statistics, got {n}");
    let mean_err = total_abs_err / n as f64;
    assert!(mean_err < 0.12, "mean |measured - log law| = {mean_err:.3}");
}

#[test]
fn fig5_modified_cauchy_beats_gaussian_and_cauchy() {
    let (_, a) = analysis();
    // Paper Fig 5: the modified Cauchy is the best of the three models.
    // Check on every well-populated curve.
    let mut mc_wins_gaussian = 0;
    let mut comparisons = 0;
    for f in &a.fits {
        if f.n_sources < 30 {
            continue;
        }
        let curve = a
            .curves
            .iter()
            .find(|c| c.window_label == f.window_label && c.bin == f.bin)
            .unwrap();
        // Refit with the *dense* default grids so the three models are
        // compared at equal grid resolution (the pipeline's `fast` config
        // uses a coarse β grid that can lose to the dense γ scan).
        let mc = obscor::stats::fit::fit_modified_cauchy(&curve.lags, &curve.fractions).unwrap();
        let g = fit_gaussian(&curve.lags, &curve.fractions).unwrap();
        let c = fit_cauchy(&curve.lags, &curve.fractions).unwrap();
        comparisons += 1;
        if mc.residual <= g.residual {
            mc_wins_gaussian += 1;
        }
        // The modified Cauchy generalizes the Cauchy (α=2, β=γ²), so at
        // comparable grid density it can never lose to it meaningfully.
        assert!(
            mc.residual <= c.residual * 1.05,
            "modified Cauchy lost to plain Cauchy on {} bin {}: {} vs {}",
            f.window_label,
            f.bin,
            mc.residual,
            c.residual
        );
    }
    assert!(comparisons >= 10, "too few curves compared: {comparisons}");
    assert!(
        mc_wins_gaussian as f64 / comparisons as f64 > 0.8,
        "modified Cauchy beat Gaussian on only {mc_wins_gaussian}/{comparisons} curves"
    );
}

#[test]
fn fig7_alpha_is_order_one() {
    let (_, a) = analysis();
    // Paper: "these observations suggest that 1 is a typical value of α".
    let series = alpha_by_degree(&a.fits);
    assert!(!series.is_empty());
    let well_measured: Vec<f64> = a
        .fits
        .iter()
        .filter(|f| f.n_sources >= 30)
        .map(|f| f.modified_cauchy.alpha)
        .collect();
    assert!(well_measured.len() >= 10);
    let mean = well_measured.iter().sum::<f64>() / well_measured.len() as f64;
    assert!(
        (0.5..=2.5).contains(&mean),
        "mean alpha {mean:.2} is not order-one"
    );
}

#[test]
fn fig8_drop_peaks_at_mid_brightness() {
    let (_, a) = analysis();
    // Paper: the one-month drop is above ~20 % and largest (≈50 %) at
    // mid brightness (d ≈ 10^3 at N_V = 2^30), smaller for the brightest
    // beam.
    let series = drop_by_degree(&a.fits);
    let well: Vec<(u64, f64)> = series
        .into_iter()
        .filter(|(d, _)| {
            a.fits.iter().any(|f| f.d == *d && f.n_sources >= 30)
        })
        .collect();
    assert!(well.len() >= 4, "need several measured bins");
    let knee = 2f64.powf(a.bright_log2 - 5.0);
    let mid: Vec<f64> = well
        .iter()
        .filter(|(d, _)| (*d as f64) >= knee / 2.0 && (*d as f64) <= knee * 4.0)
        .map(|(_, v)| *v)
        .collect();
    let bright: Vec<f64> = well
        .iter()
        .filter(|(d, _)| (*d as f64) >= 2f64.powf(a.bright_log2 - 1.0))
        .map(|(_, v)| *v)
        .collect();
    if !mid.is_empty() && !bright.is_empty() {
        let mid_mean = mid.iter().sum::<f64>() / mid.len() as f64;
        let bright_mean = bright.iter().sum::<f64>() / bright.len() as f64;
        assert!(
            mid_mean > bright_mean,
            "mid drop {mid_mean:.2} should exceed bright drop {bright_mean:.2}"
        );
        assert!(bright_mean > 0.03, "bright drop {bright_mean:.2} implausibly small");
    }
}

#[test]
fn fig1_quadrants_distinguish_instruments() {
    let (_, a) = analysis();
    // Telescope: only external→internal. Honeyfarm: both quadrants.
    assert!(a.quadrants.telescope_ext_to_int > 0);
    assert_eq!(a.quadrants.telescope_int_to_ext, 0);
    assert!(a.quadrants.honeyfarm_ext_to_int > 0);
    assert!(a.quadrants.honeyfarm_int_to_ext > 0);
}

// ---------------------------------------------------------------------------
// Golden-value regression tests.
//
// The pipeline is deterministic for a fixed (N_V, seed), so the quantities
// below are pinned exactly for the default test scenario
// `Scenario::paper_scaled(1 << 16, 4242)` + `AnalysisConfig::fast()`. A
// change to ANY of these values means packet generation, capture, matrix
// construction, or reduction semantics changed — bump the goldens only with
// an explanation of what legitimately moved them.
// ---------------------------------------------------------------------------

#[test]
fn golden_table2_quantities_are_pinned() {
    let (_, a) = analysis();
    // (label, valid_packets, unique_links, max_link_packets, unique_sources,
    //  max_source_packets, max_source_fan_out, unique_destinations,
    //  max_destination_packets, max_destination_fan_in)
    let golden: [(&str, [u64; 9]); 5] = [
        ("2020-06-17-12:00:00", [65536, 44648, 494, 615, 1036, 1035, 44602, 494, 2]),
        ("2020-07-29-00:00:00", [65536, 45312, 571, 597, 1156, 1156, 45243, 571, 2]),
        ("2020-09-16-12:00:00", [65536, 44743, 597, 601, 1183, 1183, 44683, 597, 2]),
        ("2020-10-28-00:00:00", [65536, 47553, 625, 590, 1219, 1219, 47482, 626, 2]),
        ("2020-12-16-12:00:00", [65536, 46249, 605, 584, 1313, 1313, 46194, 605, 2]),
    ];
    assert_eq!(a.quantities.len(), golden.len());
    for ((label, g), (got_label, q)) in golden.iter().zip(&a.quantities) {
        assert_eq!(got_label, label);
        let got = [
            q.valid_packets,
            q.unique_links,
            q.max_link_packets,
            q.unique_sources,
            q.max_source_packets,
            q.max_source_fan_out,
            q.unique_destinations,
            q.max_destination_packets,
            q.max_destination_fan_in,
        ];
        assert_eq!(&got, g, "Table II drifted for window {label}");
    }
}

#[test]
fn golden_fig3_zipf_mandelbrot_parameters_are_pinned() {
    let (_, a) = analysis();
    // The ZM fit is a grid scan, so the recovered parameters are exact grid
    // points: every window lands on (alpha, delta) = (1.25, 2.0) for this
    // scenario. d_max is the realized brightest source per window.
    let golden_d_max = [1036u64, 1156, 1183, 1219, 1313];
    assert_eq!(a.distributions.len(), golden_d_max.len());
    for (dist, d_max) in a.distributions.iter().zip(golden_d_max) {
        let fit = dist.fit.expect("every window fits");
        assert!(
            (fit.alpha - 1.25).abs() < 1e-12,
            "window {}: alpha {} drifted off the pinned grid point",
            dist.window_label,
            fit.alpha
        );
        assert!(
            (fit.delta - 2.0).abs() < 1e-12,
            "window {}: delta {} drifted off the pinned grid point",
            dist.window_label,
            fit.delta
        );
        assert_eq!(dist.d_max, d_max, "window {}: d_max drifted", dist.window_label);
    }
}

#[test]
fn golden_quadrant_occupancy_is_pinned() {
    let (_, a) = analysis();
    assert_eq!(a.quadrants.telescope_ext_to_int, 228_505);
    assert_eq!(a.quadrants.telescope_int_to_ext, 0);
    assert_eq!(a.quadrants.honeyfarm_ext_to_int, 99_759);
    assert_eq!(a.quadrants.honeyfarm_int_to_ext, 4_999);
}

#[test]
fn temporal_correlation_decays_and_levels_off() {
    let (_, a) = analysis();
    // Paper Fig 5: "the correlation ... drops quickly and then levels off
    // to a background level."
    let mut checked = 0;
    for c in &a.curves {
        if c.n_sources < 50 || c.bin < 6 {
            continue;
        }
        let peak = c.peak_fraction();
        let far: Vec<f64> = c
            .lags
            .iter()
            .zip(&c.fractions)
            .filter(|(l, _)| l.abs() >= 5.0)
            .map(|(_, f)| *f)
            .collect();
        let far_mean = far.iter().sum::<f64>() / far.len().max(1) as f64;
        assert!(peak > far_mean, "no decay in {} bin {}", c.window_label, c.bin);
        checked += 1;
    }
    assert!(checked >= 5, "too few curves checked: {checked}");
}
