//! Analysis configuration: bin thresholds and fit grids.

use obscor_stats::fit::{default_mc_alpha_grid, default_mc_beta_grid};
use obscor_stats::zipf::{default_alpha_grid, default_delta_grid};

/// Knobs of the correlation analysis. The defaults reproduce the paper's
/// procedure.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisConfig {
    /// Minimum sources a log2 degree bin must hold to enter the
    /// correlation statistics (guards the bright tail where a bin may
    /// hold one or two sources).
    pub min_bin_sources: usize,
    /// Zipf–Mandelbrot α grid for the Fig 3 fit.
    pub zm_alphas: Vec<f64>,
    /// Zipf–Mandelbrot δ grid for the Fig 3 fit.
    pub zm_deltas: Vec<f64>,
    /// Modified-Cauchy α grid for the Fig 5-8 fits.
    pub mc_alphas: Vec<f64>,
    /// Modified-Cauchy β grid for the Fig 5-8 fits.
    pub mc_betas: Vec<f64>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            min_bin_sources: 10,
            zm_alphas: default_alpha_grid(),
            zm_deltas: default_delta_grid(),
            mc_alphas: default_mc_alpha_grid(),
            mc_betas: default_mc_beta_grid(),
        }
    }
}

impl AnalysisConfig {
    /// A coarser configuration for fast tests: smaller grids, same
    /// structure.
    pub fn fast() -> Self {
        Self {
            min_bin_sources: 5,
            zm_alphas: (2..=16).map(|i| i as f64 * 0.25).collect(),
            zm_deltas: vec![0.0, 1.0, 2.0, 4.0],
            mc_alphas: (1..=16).map(|i| i as f64 * 0.25).collect(),
            mc_betas: (0..20).map(|i| 0.05 * 1.5f64.powi(i)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grids_are_nonempty() {
        let c = AnalysisConfig::default();
        assert!(!c.zm_alphas.is_empty());
        assert!(!c.zm_deltas.is_empty());
        assert!(!c.mc_alphas.is_empty());
        assert!(!c.mc_betas.is_empty());
        assert!(c.min_bin_sources > 0);
    }

    #[test]
    fn fast_is_smaller_than_default() {
        let (f, d) = (AnalysisConfig::fast(), AnalysisConfig::default());
        assert!(f.zm_alphas.len() < d.zm_alphas.len());
        assert!(f.mc_alphas.len() < d.mc_alphas.len());
        assert!(f.mc_betas.len() < d.mc_betas.len());
    }
}
