//! Property-based tests of the fault-injection + recovery layer.
//!
//! The recovering restore must be *total* (no fault plan, however
//! hostile, can panic it), *honest* (its report's accounting matches the
//! matrix it returns), and *deterministic* (a plan is a pure function of
//! its seed). Each property drives the whole injector + restore stack
//! over randomized seeds, rates, and retry budgets.

use obscor_hypersparse::reduce;
use obscor_netmodel::Scenario;
use obscor_telescope::{
    archive_window, capture_window, restore_matrix, Fault, FaultKind, FaultPlan,
    RecoveringRestore, RetryPolicy, WindowArchive,
};
use proptest::prelude::*;
use std::sync::OnceLock;

fn archive() -> &'static WindowArchive {
    static A: OnceLock<WindowArchive> = OnceLock::new();
    A.get_or_init(|| {
        let s = Scenario::paper_scaled(1 << 12, 5);
        archive_window(&capture_window(&s, &s.caida_windows[0]), 12)
    })
}

proptest! {
    /// A fault plan is a pure function of its seed and rate.
    #[test]
    fn plan_assignment_is_pure(seed in any::<u64>(), rate in 0.0f64..1.0) {
        let p = FaultPlan::new(seed, rate).unwrap();
        prop_assert_eq!(p.assignments(archive()), p.assignments(archive()));
    }

    /// No plan and no retry budget can panic the restore, and the report
    /// always balances against the returned matrix.
    #[test]
    fn restore_is_total_and_accounting_balances(
        seed in any::<u64>(),
        rate in 0.0f64..1.0,
        max_attempts in 1u32..6,
    ) {
        let plan = FaultPlan::new(seed, rate).unwrap();
        let policy = RetryPolicy { max_attempts, ..RetryPolicy::default() };
        let (m, report) = RecoveringRestore::new(policy).restore(&plan.apply(archive()));
        prop_assert!(report.check_invariants().is_ok(), "{:?}", report.check_invariants());
        prop_assert_eq!(reduce::valid_packets(&m), report.packets_restored);
        prop_assert!((0.0..=1.0).contains(&report.coverage()));
        prop_assert_eq!(report.n_leaves, archive().n_leaves());
    }

    /// Transient-only plans always recover completely under the default
    /// retry budget: the restored matrix is bit-identical to the
    /// fail-stop restore of the clean archive.
    #[test]
    fn transient_only_plans_recover_bit_identically(seed in any::<u64>()) {
        let plan = FaultPlan::with_kinds(seed, 1.0, &[FaultKind::TransientRead]).unwrap();
        let (m, report) = RecoveringRestore::default().restore(&plan.apply(archive()));
        prop_assert!(report.is_complete());
        prop_assert_eq!(m, restore_matrix(archive()).unwrap());
    }

    /// Every fault a plan draws respects the leaf geometry: truncations
    /// strictly shorten, bit flips land past the magic inside the leaf,
    /// transient budgets stay within the default retry budget.
    #[test]
    fn drawn_faults_respect_leaf_geometry(seed in any::<u64>(), rate in 0.0f64..1.0) {
        let plan = FaultPlan::new(seed, rate).unwrap();
        for (i, leaf) in archive().leaves.iter().enumerate() {
            match plan.fault_for(i, leaf.len()) {
                None | Some(Fault::Drop) => {}
                Some(Fault::Truncate { keep }) => prop_assert!(keep < leaf.len()),
                Some(Fault::BitFlip { offset, mask }) => {
                    prop_assert!((8..leaf.len()).contains(&offset));
                    prop_assert!(mask.count_ones() == 1);
                }
                Some(Fault::TransientRead { failures }) => {
                    prop_assert!(
                        (1..RetryPolicy::default().max_attempts).contains(&failures)
                    );
                }
            }
        }
    }

    /// The fault rate is honored in aggregate: rate 0 faults nothing,
    /// rate 1 faults everything, and the plan never invents leaves.
    #[test]
    fn fault_rate_bounds_hold(seed in any::<u64>()) {
        let none = FaultPlan::new(seed, 0.0).unwrap().apply(archive());
        prop_assert_eq!(none.n_faulted(), 0);
        let all = FaultPlan::new(seed, 1.0).unwrap().apply(archive());
        prop_assert_eq!(all.n_faulted(), archive().n_leaves());
    }
}
