//! Hybrid power-law traffic models.
//!
//! The paper's discussion points at "new generative models of network
//! traffic that extend prior preferential attachment models with
//! parameters to describe adversarial traffic" (Devlin, Kepner, Luo &
//! Meger, *Hybrid power-law models of network traffic*, IPDPS-W 2021 —
//! the paper's reference 59). The key idea: observed degree distributions are *mixtures*
//! — a benign background component plus one or more adversarial
//! components (botnets, mass scanners) each with its own power law.
//!
//! [`HybridPowerLaw`] is that mixture over Zipf–Mandelbrot components:
//! exact pmf, sampling, log2-binned curves, and a fit comparison against
//! a single-component model so experiments can ask *when does a hybrid
//! explain a window better than a plain ZM?*

use obscor_stats::binning::{pool_pmf, Log2Binned};
use obscor_stats::norms::residual_pnorm;
use obscor_stats::zipf::ZipfMandelbrot;
use rand::{Rng, RngExt};

/// A weighted mixture of Zipf–Mandelbrot components.
pub struct HybridPowerLaw {
    components: Vec<(f64, ZipfMandelbrot)>,
}

impl HybridPowerLaw {
    /// Build from `(weight, component)` pairs; weights are normalized.
    ///
    /// # Panics
    /// Panics if empty, or any weight is non-positive/non-finite.
    pub fn new(components: Vec<(f64, ZipfMandelbrot)>) -> Self {
        assert!(!components.is_empty(), "mixture needs at least one component");
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(
            components.iter().all(|(w, _)| w.is_finite() && *w > 0.0),
            "weights must be positive"
        );
        let components =
            components.into_iter().map(|(w, c)| (w / total, c)).collect();
        Self { components }
    }

    /// The paper-motivated two-component form: a dim benign background
    /// plus a bright adversarial beam.
    pub fn background_plus_beam(
        background_weight: f64,
        background: ZipfMandelbrot,
        beam: ZipfMandelbrot,
    ) -> Self {
        assert!((0.0..1.0).contains(&background_weight) && background_weight > 0.0);
        Self::new(vec![(background_weight, background), (1.0 - background_weight, beam)])
    }

    /// Number of components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// Mixture pmf at degree `d`.
    pub fn pmf(&self, d: u64) -> f64 {
        self.components.iter().map(|(w, c)| w * c.pmf(d)).sum()
    }

    /// Largest supported degree across components.
    pub fn d_max(&self) -> u64 {
        self.components.iter().map(|(_, c)| c.d_max).max().unwrap_or(1)
    }

    /// Draw one degree: pick a component by weight, then sample it.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        let mut acc = 0.0;
        for (w, c) in &self.components {
            acc += w;
            if u < acc {
                return c.sample(rng);
            }
        }
        self.components.last().unwrap().1.sample(rng)
    }

    /// Draw `n` degrees.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The mixture pooled into the paper's log2 bins.
    pub fn binned(&self) -> Log2Binned {
        pool_pmf((1..=self.d_max()).map(|d| (d, self.pmf(d))))
    }
}

/// Residual of a model's binned curve against data (both normalized,
/// compared over the data's bins with the paper's 1/2-norm).
pub fn binned_residual(model: &Log2Binned, data: &Log2Binned) -> f64 {
    let target = data.normalized();
    let mut m = model.values.clone();
    m.resize(target.len(), 0.0);
    m.truncate(target.len());
    let total: f64 = m.iter().sum();
    if total > 0.0 {
        for v in &mut m {
            *v /= total;
        }
    }
    residual_pnorm(&m, &target.values, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_stats::binning::differential_cumulative;
    use obscor_stats::zipf::fit_zipf_mandelbrot;
    use obscor_stats::DegreeHistogram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bimodal() -> HybridPowerLaw {
        // Steep dim background + shallow bright beam: a distribution no
        // single ZM reproduces.
        HybridPowerLaw::background_plus_beam(
            0.7,
            ZipfMandelbrot::new(2.5, 0.0, 64),
            ZipfMandelbrot::new(0.6, 50.0, 4096),
        )
    }

    #[test]
    fn pmf_normalizes() {
        let h = bimodal();
        let total: f64 = (1..=h.d_max()).map(|d| h.pmf(d)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weights_are_normalized() {
        let h = HybridPowerLaw::new(vec![
            (2.0, ZipfMandelbrot::new(1.5, 0.0, 16)),
            (6.0, ZipfMandelbrot::new(2.0, 0.0, 16)),
        ]);
        // pmf(1) = 0.25·c1.pmf(1) + 0.75·c2.pmf(1).
        let expect = 0.25 * ZipfMandelbrot::new(1.5, 0.0, 16).pmf(1)
            + 0.75 * ZipfMandelbrot::new(2.0, 0.0, 16).pmf(1);
        assert!((h.pmf(1) - expect).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_mixture_pmf() {
        let h = bimodal();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let ones = h.sample_n(&mut rng, n).into_iter().filter(|&d| d == 1).count();
        let got = ones as f64 / n as f64;
        assert!((got - h.pmf(1)).abs() < 0.01, "P(1): {got} vs {}", h.pmf(1));
    }

    #[test]
    fn binned_mass_conserved() {
        assert!((bimodal().binned().total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hybrid_beats_single_zm_on_bimodal_data() {
        // Generate data from the hybrid; fit a single ZM; the hybrid's own
        // curve must explain the data better in the 1/2-norm.
        let h = bimodal();
        let mut rng = StdRng::seed_from_u64(10);
        let degrees = h.sample_n(&mut rng, 200_000);
        let data = differential_cumulative(&DegreeHistogram::from_degrees(degrees));
        let single = fit_zipf_mandelbrot(
            &data,
            h.d_max(),
            &obscor_stats::zipf::default_alpha_grid(),
            &obscor_stats::zipf::default_delta_grid(),
        )
        .unwrap();
        let single_curve = ZipfMandelbrot::new(single.alpha, single.delta, h.d_max()).binned();
        let hybrid_residual = binned_residual(&h.binned(), &data);
        let single_residual = binned_residual(&single_curve, &data);
        assert!(
            hybrid_residual < single_residual,
            "hybrid {hybrid_residual:.3} should beat single ZM {single_residual:.3}"
        );
    }

    #[test]
    fn single_component_hybrid_equals_its_component() {
        let zm = ZipfMandelbrot::new(1.8, 1.0, 256);
        let h = HybridPowerLaw::new(vec![(1.0, zm.clone())]);
        for d in [1u64, 2, 10, 100, 256] {
            assert!((h.pmf(d) - zm.pmf(d)).abs() < 1e-12);
        }
        assert_eq!(h.n_components(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_mixture_rejected() {
        let _ = HybridPowerLaw::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_weight_rejected() {
        let _ = HybridPowerLaw::new(vec![(0.0, ZipfMandelbrot::new(1.0, 0.0, 8))]);
    }
}
