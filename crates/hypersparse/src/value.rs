//! Scalar value trait for matrix entries.
//!
//! The paper stores packet counts as floating point inside GraphBLAS matrices
//! (`A_t(16843009, 33686018) = 3.0`), but integer counters are the natural
//! representation for exact analytics. Everything in this crate is generic
//! over [`Value`], implemented for `u32`, `u64`, and `f64`.

use std::fmt::Debug;
use std::ops::AddAssign;

/// A scalar that can live inside a hypersparse matrix.
///
/// The operations required are exactly those used by the paper's Table II
/// quantities: addition (packet accumulation), comparison (maxima), and a
/// zero/one pair (the zero-norm `| |_0` that maps every nonzero to 1).
pub trait Value:
    Copy + Clone + Debug + Default + PartialEq + PartialOrd + AddAssign + Send + Sync + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity; the image of every nonzero under `| |_0`.
    fn one() -> Self;
    /// Whether this value is the additive identity (explicit zeros are
    /// dropped during compaction, matching GraphBLAS semantics).
    fn is_zero(&self) -> bool;
    /// Lossy conversion to `f64` for statistics.
    fn to_f64(&self) -> f64;
    /// Lossy conversion from a count.
    fn from_u64(v: u64) -> Self;
    /// Saturating conversion to a count, truncating fractional parts.
    fn to_u64(&self) -> u64;
    /// Exact bit-level encoding for binary serialization.
    fn to_bits(&self) -> u64;
    /// Exact bit-level decoding; inverse of [`Value::to_bits`].
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_value_int {
    ($($t:ty),*) => {$(
        impl Value for $t {
            #[inline]
            fn zero() -> Self { 0 }
            #[inline]
            fn one() -> Self { 1 }
            #[inline]
            fn is_zero(&self) -> bool { *self == 0 }
            #[inline]
            fn to_f64(&self) -> f64 { *self as f64 }
            #[inline]
            fn from_u64(v: u64) -> Self { v as $t }
            #[inline]
            fn to_u64(&self) -> u64 { *self as u64 }
            #[inline]
            fn to_bits(&self) -> u64 { *self as u64 }
            #[inline]
            fn from_bits(bits: u64) -> Self { bits as $t }
        }
    )*};
}

impl_value_int!(u32, u64);

impl Value for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
    #[inline]
    fn to_f64(&self) -> f64 {
        *self
    }
    #[inline]
    fn from_u64(v: u64) -> Self {
        v as f64
    }
    #[inline]
    fn to_u64(&self) -> u64 {
        *self as u64
    }
    #[inline]
    fn to_bits(&self) -> u64 {
        f64::to_bits(*self)
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_are_distinct() {
        assert_ne!(u32::zero(), u32::one());
        assert_ne!(u64::zero(), u64::one());
        assert_ne!(f64::zero(), f64::one());
    }

    #[test]
    fn is_zero_matches_zero() {
        assert!(u64::zero().is_zero());
        assert!(!u64::one().is_zero());
        assert!(f64::zero().is_zero());
        assert!(!(0.25f64).is_zero());
    }

    #[test]
    fn u64_round_trips_through_from_to() {
        for v in [0u64, 1, 17, 1 << 40] {
            assert_eq!(u64::from_u64(v).to_u64(), v);
        }
    }

    #[test]
    fn f64_to_u64_truncates() {
        assert_eq!(3.9f64.to_u64(), 3);
    }
}
