//! Offline stand-in for `crossbeam`.
//!
//! Only the [`channel`] module is provided — bounded/unbounded channels with
//! the blocking-send backpressure semantics the workspace's
//! `StreamingBuilder` relies on — implemented over [`std::sync::mpsc`].
//! (Real crossbeam channels are MPMC; every use in this workspace is MPSC,
//! which std's channels provide directly.)

#![forbid(unsafe_code)]

/// Multi-producer channels with bounded-capacity backpressure.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The sending half of a channel.
    #[derive(Clone)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Sender<T> {
        /// Send `msg`, blocking while the channel is full.
        ///
        /// # Errors
        /// Returns the message back if the receiving side has disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocking iterator over received messages; ends when all senders
        /// have disconnected.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }

        /// Receive one message, blocking until one is available.
        ///
        /// # Errors
        /// Fails when every sender has disconnected and the buffer is empty.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.inner.recv()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// Create a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn round_trip_and_disconnect() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            for i in 0..8 {
                tx.send(i).unwrap();
            }
        });
        std::thread::spawn(move || {
            for i in 8..16 {
                tx2.send(i).unwrap();
            }
        });
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }
}
