//! Hierarchical hypersparse accumulation.
//!
//! The paper's traffic matrices are built by hierarchically summing small
//! matrices: the telescope archives leaf matrices of `N_V = 2^17` contiguous
//! packets; a `2^30`-packet study window is the sum of `2^13` leaves. The
//! same architecture (Kepner et al., "75,000,000,000 streaming
//! inserts/second using hierarchical hypersparse GraphBLAS matrices",
//! IPDPS-W 2020) is what makes streaming construction fast: instead of one
//! gigantic sort at the end, packets are compacted in cache-sized leaves and
//! merged pairwise like a binary counter, so every merge is between two
//! matrices of comparable size.
//!
//! [`HierarchicalAccumulator`] is that binary counter. The `bench` crate
//! ablates it against flat single-sort accumulation.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::ops::ewise_add;
use crate::value::Value;
use crate::Index;

/// Default leaf size, matching the paper's archived `2^17`-packet matrices.
pub const DEFAULT_LEAF_CAPACITY: usize = 1 << 17;

/// Streaming matrix builder that compacts input in leaves of
/// `leaf_capacity` triples and merges leaves pairwise (binary-counter
/// carry), yielding the same matrix as compacting everything at once.
#[derive(Clone, Debug)]
pub struct HierarchicalAccumulator<V: Value> {
    leaf_capacity: usize,
    buffer: Coo<V>,
    /// `levels[k]` holds the carry matrix covering `2^k` leaves, if any.
    levels: Vec<Option<Csr<V>>>,
    stats: AccumulatorStats,
}

/// Merge/compaction counters for performance analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccumulatorStats {
    /// Triples pushed in total.
    pub pushed: u64,
    /// Leaves compacted from COO to CSR.
    pub leaves: u64,
    /// Pairwise carry merges performed.
    pub merges: u64,
}

impl<V: Value> HierarchicalAccumulator<V> {
    /// Create an accumulator with the paper's default leaf size.
    pub fn new() -> Self {
        Self::with_leaf_capacity(DEFAULT_LEAF_CAPACITY)
    }

    /// Create an accumulator compacting every `leaf_capacity` triples.
    ///
    /// # Panics
    /// Panics if `leaf_capacity == 0`.
    pub fn with_leaf_capacity(leaf_capacity: usize) -> Self {
        assert!(leaf_capacity > 0, "leaf capacity must be positive");
        Self {
            leaf_capacity,
            buffer: Coo::with_capacity(leaf_capacity),
            levels: Vec::new(),
            stats: AccumulatorStats::default(),
        }
    }

    /// Append one triple, carrying if the leaf fills.
    #[inline]
    pub fn push(&mut self, row: Index, col: Index, val: V) {
        self.buffer.push(row, col, val);
        self.stats.pushed += 1;
        if self.buffer.len() >= self.leaf_capacity {
            self.flush_leaf();
        }
    }

    /// Append one unit-valued triple (a single packet).
    #[inline]
    pub fn push_edge(&mut self, row: Index, col: Index) {
        self.push(row, col, V::one());
    }

    /// Compact the current partial leaf and carry it up the level chain.
    pub fn flush_leaf(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let _span = obscor_obs::span("hypersparse.leaf_compact");
        obscor_obs::histogram("hypersparse.leaf_compact.triples")
            .observe(self.buffer.len() as u64);
        let leaf = std::mem::replace(&mut self.buffer, Coo::with_capacity(self.leaf_capacity));
        let carry = leaf.into_csr();
        self.stats.leaves += 1;
        self.carry_in(carry);
        #[cfg(feature = "strict-invariants")]
        {
            if let Err(msg) = self.check_invariants() {
                // audit:allow(panic-path) — strict-invariants mode aborts on broken invariants by contract
                panic!("accumulator invalid after leaf flush: {msg}");
            }
        }
    }

    /// Insert a pre-compacted CSR leaf directly into the binary carry chain.
    ///
    /// This is the streaming-ingest entry point (`telescope::stream`): worker
    /// threads compact their own leaves through the radix kernel, and the
    /// window collector folds them — in deterministic sequence order — into
    /// one accumulator without round-tripping back through triples. Any
    /// buffered partial leaf is flushed first so it keeps its place ahead of
    /// the incoming leaf in the merge order. Empty leaves are ignored.
    ///
    /// Counting convention: the leaf's stored entries are added to
    /// `stats.pushed` (the original pre-dedup triple count is gone after
    /// compaction), and the leaf itself increments `stats.leaves`, so the
    /// binary-counter law `merges == leaves - popcount(leaves)` keeps
    /// holding.
    pub fn push_csr_leaf(&mut self, leaf: Csr<V>) {
        if leaf.is_empty() {
            return;
        }
        self.flush_leaf();
        self.stats.pushed += leaf.nnz() as u64;
        self.stats.leaves += 1;
        self.carry_in(leaf);
        #[cfg(feature = "strict-invariants")]
        {
            if let Err(msg) = self.check_invariants() {
                // audit:allow(panic-path) — strict-invariants mode aborts on broken invariants by contract
                panic!("accumulator invalid after csr leaf push: {msg}");
            }
        }
    }

    /// Carry one compacted leaf up the level chain, merging binary-counter
    /// style: level `k` holds the sum of `2^k` leaves, a collision merges
    /// and propagates upward.
    fn carry_in(&mut self, mut carry: Csr<V>) {
        let mut k = 0usize;
        loop {
            if k == self.levels.len() {
                self.levels.push(Some(carry));
                break;
            }
            match self.levels[k].take() {
                None => {
                    self.levels[k] = Some(carry);
                    break;
                }
                Some(existing) => {
                    carry = ewise_add(&existing, &carry);
                    self.stats.merges += 1;
                    obscor_obs::counter("hypersparse.accumulator.carry_merges_total").inc();
                    k += 1;
                }
            }
        }
    }

    /// Internal consistency check: positive leaf capacity, a partial leaf
    /// strictly below capacity, a consistent COO buffer, every carry matrix
    /// internally valid, and counters that account for all pushed triples.
    /// Used by tests and the pipeline's `strict-invariants` stage checks.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.leaf_capacity == 0 {
            return Err("leaf_capacity is zero".into());
        }
        if self.buffer.len() >= self.leaf_capacity {
            return Err("partial leaf at or above capacity (missed flush)".into());
        }
        self.buffer.check_invariants().map_err(|e| format!("buffer: {e}"))?;
        for (k, level) in self.levels.iter().enumerate() {
            if let Some(csr) = level {
                csr.check_invariants().map_err(|e| format!("level {k}: {e}"))?;
            }
        }
        if self.stats.leaves > self.stats.pushed {
            return Err("more leaves than pushed triples".into());
        }
        if self.stats.merges >= self.stats.leaves.max(1) {
            return Err("more merges than a binary carry chain allows".into());
        }
        Ok(())
    }

    /// Merge counters so far.
    pub fn stats(&self) -> AccumulatorStats {
        self.stats
    }

    /// Total triples pushed (buffered plus compacted).
    pub fn len_pushed(&self) -> u64 {
        self.stats.pushed
    }

    /// Triples currently buffered in the partial leaf (not yet compacted).
    pub fn buffered_len(&self) -> usize {
        self.buffer.len()
    }

    /// Finish: flush the partial leaf and fold all levels into one matrix.
    ///
    /// Surfaces the lifetime [`AccumulatorStats`] into the global metrics
    /// registry (`hypersparse.accumulator.{pushed,leaves,merges}_total`) so
    /// per-run snapshots carry the carry-chain behaviour.
    pub fn finalize(self) -> Csr<V> {
        self.finalize_with_stats().0
    }

    /// [`finalize`](Self::finalize), also returning the lifetime stats
    /// *including* the finalize tree reduction's merges.
    ///
    /// The binary-counter law `merges == leaves - popcount(leaves)` holds
    /// only mid-stream: finalize folds the remaining `popcount(leaves)`
    /// carry levels through the pairwise [`crate::ops::merge_all`] tree,
    /// which performs `popcount(leaves) - 1` further merges — any pairwise
    /// tree over `L` parts performs exactly `L - 1` merges in total, so
    /// the post-finalize closed form is `merges == leaves - 1` (for
    /// `leaves >= 1`). The published
    /// `hypersparse.accumulator.merges_total` counter keeps its original
    /// carry-only meaning (the tree's merges are counted separately by
    /// `hypersparse.merge_all.pair_merges_total`).
    pub fn finalize_with_stats(mut self) -> (Csr<V>, AccumulatorStats) {
        let _span = obscor_obs::span("hypersparse.accumulator.finalize");
        self.flush_leaf();
        let mut stats = self.stats;
        obscor_obs::counter("hypersparse.accumulator.pushed_total").add(stats.pushed);
        obscor_obs::counter("hypersparse.accumulator.leaves_total").add(stats.leaves);
        obscor_obs::counter("hypersparse.accumulator.merges_total").add(stats.merges);
        // Fold the remaining per-level carries with the same parallel merge
        // tree used for window re-assembly (ewise_add is associative and
        // commutative, so this equals the serial left-fold).
        let parts: Vec<Csr<V>> = self.levels.into_iter().flatten().collect();
        stats.merges += (parts.len() as u64).saturating_sub(1);
        (crate::ops::merge_all(parts), stats)
    }
}

impl<V: Value> Default for HierarchicalAccumulator<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Value> Extend<(Index, Index, V)> for HierarchicalAccumulator<V> {
    fn extend<I: IntoIterator<Item = (Index, Index, V)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

/// Flat accumulation baseline: buffer everything, sort once. Used by the
/// `hypersparse_insert` ablation bench and by correctness tests as the
/// reference implementation.
pub fn accumulate_flat<V: Value, I: IntoIterator<Item = (Index, Index, V)>>(iter: I) -> Csr<V> {
    Coo::from_triples(iter).into_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triples(n: usize) -> Vec<(Index, Index, u64)> {
        let mut state = 0x9E3779B97F4A7C15u64;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (((state >> 33) % 512) as Index, ((state >> 10) % 512) as Index, 1u64)
            })
            .collect()
    }

    #[test]
    fn hierarchical_equals_flat() {
        let t = triples(10_000);
        let mut acc = HierarchicalAccumulator::with_leaf_capacity(256);
        acc.extend(t.iter().copied());
        let hier = acc.finalize();
        let flat = accumulate_flat(t);
        assert_eq!(hier, flat);
    }

    #[test]
    fn exact_multiple_of_leaf_capacity() {
        let t = triples(1024);
        let mut acc = HierarchicalAccumulator::with_leaf_capacity(256);
        acc.extend(t.iter().copied());
        assert_eq!(acc.stats().leaves, 4);
        assert_eq!(acc.finalize(), accumulate_flat(t));
    }

    #[test]
    fn stats_obey_binary_counter_law_for_every_push_count() {
        // Property: after pushing n triples into leaves of capacity c,
        //   pushed == leaves * c + buffered_len()   (conservation), and
        //   merges == leaves - popcount(leaves)     (binary-counter carries:
        // every full leaf enters the counter and each pairwise merge
        // destroys exactly one entry, leaving one per set bit).
        for c in [1usize, 2, 3, 7, 16] {
            for n in 0..200usize {
                let mut acc = HierarchicalAccumulator::with_leaf_capacity(c);
                acc.extend(triples(n));
                let s = acc.stats();
                assert_eq!(s.pushed, n as u64, "pushed (c={c}, n={n})");
                assert_eq!(s.leaves, (n / c) as u64, "leaves (c={c}, n={n})");
                assert_eq!(
                    s.pushed,
                    s.leaves * c as u64 + acc.buffered_len() as u64,
                    "conservation (c={c}, n={n})"
                );
                assert_eq!(
                    s.merges,
                    s.leaves - u64::from(s.leaves.count_ones()),
                    "carry count (c={c}, n={n})"
                );
            }
        }
    }

    #[test]
    fn finalize_tree_restores_the_leaves_minus_one_closed_form() {
        // The carry law above stops short of the finalize tree. After
        // finalize, ANY pairwise merge tree over L leaves has performed
        // exactly L - 1 merges: (leaves - popcount) carries plus
        // (popcount - 1) tree merges. Pin the full closed form so the
        // pairwise merge_all reduction can never silently drop merges.
        for c in [1usize, 2, 3, 7, 16] {
            for n in 0..200usize {
                let mut acc = HierarchicalAccumulator::with_leaf_capacity(c);
                acc.extend(triples(n));
                let mid = acc.stats();
                let (m, s) = acc.finalize_with_stats();
                // finalize flushes the partial leaf, so leaves = ceil(n/c).
                assert_eq!(s.leaves, n.div_ceil(c) as u64, "leaves (c={c}, n={n})");
                assert_eq!(s.pushed, n as u64);
                assert_eq!(
                    s.merges,
                    s.leaves.saturating_sub(1),
                    "post-finalize closed form (c={c}, n={n})"
                );
                // Decomposition: carries obey the mid-stream law; the tree
                // contributes the remaining popcount - 1.
                assert!(s.merges >= mid.merges, "finalize never forgets carries");
                assert_eq!(m, accumulate_flat(triples(n)), "matrix unchanged (c={c}, n={n})");
            }
        }
    }

    #[test]
    fn empty_accumulator_finalizes_empty() {
        let acc = HierarchicalAccumulator::<u64>::new();
        assert!(acc.finalize().is_empty());
    }

    #[test]
    fn single_partial_leaf() {
        let mut acc = HierarchicalAccumulator::with_leaf_capacity(1000);
        acc.push(1, 2, 3u64);
        acc.push(1, 2, 4u64);
        let m = acc.finalize();
        assert_eq!(m.get(1, 2), Some(7));
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn carry_chain_depth_is_logarithmic() {
        let mut acc = HierarchicalAccumulator::with_leaf_capacity(16);
        acc.extend(triples(16 * 64)); // exactly 64 leaves
        let stats = acc.stats();
        assert_eq!(stats.leaves, 64);
        // A binary counter incremented 64 times performs 57 carries
        // (64 - popcount-ish accounting): with 64 = 2^6 leaves the final
        // state is one matrix at level 6 and 63 merges happened... but the
        // exact count is levels-dependent; just sanity-bound it.
        assert!(stats.merges >= 32 && stats.merges < 64, "merges = {}", stats.merges);
    }

    #[test]
    fn stats_pushed_counts_everything() {
        let mut acc = HierarchicalAccumulator::<u64>::with_leaf_capacity(8);
        for i in 0..100 {
            acc.push_edge(i % 10, i % 7);
        }
        assert_eq!(acc.len_pushed(), 100);
        assert_eq!(crate::reduce::valid_packets(&acc.finalize()), 100);
    }

    #[test]
    #[should_panic(expected = "leaf capacity")]
    fn zero_leaf_capacity_panics() {
        let _ = HierarchicalAccumulator::<u64>::with_leaf_capacity(0);
    }

    #[test]
    fn csr_leaves_equal_triple_pushes() {
        // Pushing pre-compacted CSR leaves reproduces the matrix built from
        // the underlying triples, for every partition of the input.
        let t = triples(4_000);
        let flat = accumulate_flat(t.clone());
        for chunk in [1usize, 37, 256, 4_000] {
            let mut acc = HierarchicalAccumulator::with_leaf_capacity(64);
            for part in t.chunks(chunk) {
                acc.push_csr_leaf(Coo::from_triples(part.iter().copied()).into_csr());
            }
            assert_eq!(acc.finalize(), flat, "chunk = {chunk}");
        }
    }

    #[test]
    fn csr_leaves_interleave_with_triples() {
        // A buffered partial leaf is flushed ahead of an incoming CSR leaf,
        // so mixing the two entry points still conserves every triple.
        let t = triples(1_000);
        let mut acc = HierarchicalAccumulator::with_leaf_capacity(128);
        acc.extend(t[..300].iter().copied());
        acc.push_csr_leaf(Coo::from_triples(t[300..700].iter().copied()).into_csr());
        acc.extend(t[700..].iter().copied());
        assert_eq!(acc.finalize(), accumulate_flat(t));
    }

    #[test]
    fn csr_leaf_stats_obey_binary_counter_law() {
        let t = triples(2_048);
        let mut acc = HierarchicalAccumulator::<u64>::with_leaf_capacity(64);
        for part in t.chunks(128) {
            acc.push_csr_leaf(Coo::from_triples(part.iter().copied()).into_csr());
        }
        let s = acc.stats();
        assert_eq!(s.leaves, 16);
        assert_eq!(s.merges, s.leaves - u64::from(s.leaves.count_ones()));
        assert!(acc.check_invariants().is_ok());
    }

    #[test]
    fn empty_csr_leaf_is_ignored() {
        let mut acc = HierarchicalAccumulator::<u64>::new();
        acc.push_csr_leaf(Csr::empty());
        assert_eq!(acc.stats().leaves, 0);
        assert!(acc.finalize().is_empty());
    }

    #[test]
    fn leaf_capacity_one_still_correct() {
        let t = triples(50);
        let mut acc = HierarchicalAccumulator::with_leaf_capacity(1);
        acc.extend(t.iter().copied());
        assert_eq!(acc.finalize(), accumulate_flat(t));
    }
}
