//! The honeyfarm outpost.
//!
//! Models the GreyNoise honeyfarm: "hundreds of servers that passively
//! collect packets from hundreds of thousands of IPs seen scanning the
//! internet every day. GreyNoise servers converse with these sources and
//! analyze and enrich these observations to identify behavior, methods and
//! intent."
//!
//! The honeyfarm observes the same synthetic world as the telescope but
//! through a different instrument:
//!
//! * it integrates over *months*, not constant-packet windows,
//! * its chance of seeing a source depends on the source's brightness
//!   (detection efficiency, [`detect`]) and on how much of the month the
//!   source was active (the drifting beam),
//! * because it responds to traffic, it observes both traffic-matrix
//!   quadrants and can classify sources ([`engage`]), producing the
//!   enrichment metadata columns of its monthly D4M arrays ([`monthly`]).
//!
//! Sensor-fleet configuration changes (Table I's 2020-03 and 2021-04
//! source-count spikes) enter as per-month coverage boosts.

pub mod detect;
pub mod engage;
pub mod monthly;
pub mod sensors;

pub use detect::DetectionModel;
pub use monthly::{observe_all_months, observe_month, MonthlyObservation};
pub use sensors::SensorFleet;
