//! Integration: the algebraic (SpGEMM) correlation path agrees with the
//! key-set path on real scenario data, and the observation matrices obey
//! the D4M identities.

use obscor::anonymize::sharing::Holder;
use obscor::core::algebra::{
    bin_source_matrix, month_source_matrix, temporal_curves_algebraic,
};
use obscor::core::temporal::temporal_curves;
use obscor::core::WindowDegrees;
use obscor::honeyfarm::observe_all_months;
use obscor::hypersparse::spgemm::cooccurrence;
use obscor::hypersparse::reduce;
use obscor::netmodel::Scenario;
use std::sync::OnceLock;

struct Fixture {
    degrees: Vec<WindowDegrees>,
    monthly: Vec<obscor::assoc::KeySet>,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let s = Scenario::paper_scaled(1 << 14, 303);
        let holder = Holder::new("t", &[3u8; 32]);
        let degrees =
            (0..2).map(|w| WindowDegrees::capture(&s, w, &holder)).collect();
        let months = observe_all_months(&s);
        let monthly = months.into_iter().map(|m| m.source_keys().clone()).collect();
        Fixture { degrees, monthly }
    })
}

#[test]
fn algebraic_curves_match_keyset_curves_on_scenario_data() {
    let f = fixture();
    for wd in &f.degrees {
        for min in [1usize, 10, 50] {
            let a = temporal_curves_algebraic(wd, &f.monthly, min);
            let b = temporal_curves(wd, &f.monthly, min);
            assert_eq!(a, b, "window {} min {min}", wd.label);
        }
    }
}

#[test]
fn month_matrix_row_sums_are_month_sizes() {
    let f = fixture();
    let m = month_source_matrix(&f.monthly);
    for (&row, (_, fanout)) in
        m.row_keys().iter().zip(reduce::source_fan_out(&m))
    {
        assert_eq!(
            fanout as usize,
            f.monthly[row as usize].len(),
            "month {row} size mismatch"
        );
    }
}

#[test]
fn month_cooccurrence_diagonal_is_month_size() {
    let f = fixture();
    let m = month_source_matrix(&f.monthly);
    let c = cooccurrence(&m, &m);
    for i in 0..m.n_rows() {
        let month = m.row_keys()[i] as usize;
        assert_eq!(
            c.get(i as u32, i as u32),
            Some(f.monthly[month].len() as u64),
            "diagonal {i}"
        );
    }
}

#[test]
fn adjacent_months_share_more_than_distant_months() {
    // The drifting beam in one product: the month×month co-occurrence
    // matrix must concentrate near its diagonal.
    let f = fixture();
    let m = month_source_matrix(&f.monthly);
    let c = cooccurrence(&m, &m);
    let get = |i: usize, j: usize| c.get(i as u32, j as u32).unwrap_or(0) as f64;
    let mut adjacent = 0.0;
    let mut distant = 0.0;
    let n = m.n_rows();
    let mut pairs: f64 = 0.0;
    for i in 0..n {
        if i + 1 < n {
            adjacent += get(i, i + 1) / get(i, i).max(1.0);
        }
        if i + 6 < n {
            distant += get(i, i + 6) / get(i, i).max(1.0);
            pairs += 1.0;
        }
    }
    let adjacent_mean = adjacent / (n - 1) as f64;
    let distant_mean = distant / pairs.max(1.0);
    assert!(
        adjacent_mean > distant_mean,
        "adjacent overlap {adjacent_mean:.3} should exceed 6-month overlap {distant_mean:.3}"
    );
}

#[test]
fn bin_matrix_row_sizes_match_bin_key_sets() {
    let f = fixture();
    for wd in &f.degrees {
        let (bins, m) = bin_source_matrix(wd, 5);
        let key_sets = wd.bin_key_sets(5);
        assert_eq!(bins.len(), key_sets.len());
        for (i, bin) in bins.iter().enumerate() {
            assert_eq!(
                m.row_at(i).0.len(),
                key_sets[bin].len(),
                "bin {bin} size mismatch"
            );
        }
    }
}
