//! Correlation as linear algebra.
//!
//! The D4M methodology behind the paper computes set correlations as
//! sparse matrix products. This module provides that alternative path:
//! build *observation pattern matrices* — rows are months (or degree
//! bins), columns are source IPs — and compute every Fig 4-6 overlap
//! count as one co-occurrence product `C = A B'` over the counting
//! semiring. The result is bit-identical to the key-set path in
//! [`crate::temporal`] (asserted by tests and ablated by the bench
//! suite); which one is faster depends on how many bins share the same
//! month sets.

use crate::degree::WindowDegrees;
use crate::temporal::TemporalCurve;
use obscor_assoc::convert::parse_ip_key;
use obscor_assoc::KeySet;
use obscor_hypersparse::spgemm::cooccurrence;
use obscor_hypersparse::{Coo, Csr, Index};
use obscor_stats::binning::{bin_representative, log2_bin};

/// Build the month × source pattern matrix: row `m` holds a 1 for every
/// source key observed by the honeyfarm in month `m`.
///
/// Keys that do not parse as dotted-quad IPs are skipped (the honeyfarm
/// only emits IP row keys, so in practice nothing is skipped).
pub fn month_source_matrix(monthly_sources: &[KeySet]) -> Csr<u64> {
    let mut coo = Coo::new();
    for (m, keys) in monthly_sources.iter().enumerate() {
        for key in keys.iter() {
            if let Some(ip) = parse_ip_key(key) {
                coo.push(m as Index, ip, 1u64);
            }
        }
    }
    coo.into_csr()
}

/// Build the degree-bin × source pattern matrix of one window: row `i`
/// (positional) holds the sources whose window degree falls in the
/// returned `bins[i]`. Only bins with at least `min_sources` sources are
/// emitted.
pub fn bin_source_matrix(window: &WindowDegrees, min_sources: usize) -> (Vec<u32>, Csr<u64>) {
    let groups = window.bin_key_sets(min_sources);
    let bins: Vec<u32> = groups.keys().copied().collect();
    let mut coo = Coo::new();
    for &(ip, d) in &window.degrees {
        let bin = log2_bin(d);
        if let Ok(row) = bins.binary_search(&bin) {
            coo.push(row as Index, ip, 1u64);
        }
    }
    (bins, coo.into_csr())
}

/// Compute the temporal correlation curves of a window by matrix algebra:
/// one co-occurrence product gives every `(bin, month)` overlap count.
/// Produces exactly the same curves as [`crate::temporal::temporal_curves`].
pub fn temporal_curves_algebraic(
    window: &WindowDegrees,
    monthly_sources: &[KeySet],
    min_sources: usize,
) -> Vec<TemporalCurve> {
    let (bins, bin_matrix) = bin_source_matrix(window, min_sources);
    if bins.is_empty() {
        return Vec::new();
    }
    let month_matrix = month_source_matrix(monthly_sources);
    let counts = cooccurrence(&bin_matrix, &month_matrix);
    // Positional month rows of `month_matrix`: months with zero sources
    // are not stored, so map positions back to month indices.
    let occupied_months: Vec<usize> =
        month_matrix.row_keys().iter().map(|&m| m as usize).collect();
    let bin_sizes: Vec<usize> =
        (0..bin_matrix.n_rows()).map(|i| bin_matrix.row_at(i).0.len()).collect();

    bins.iter()
        .enumerate()
        .map(|(row, &bin)| {
            let n_sources = bin_sizes[row];
            let months: Vec<usize> = (0..monthly_sources.len()).collect();
            let lags: Vec<f64> =
                months.iter().map(|&m| (m as f64 + 0.5) - window.coord).collect();
            let fractions: Vec<f64> = months
                .iter()
                .map(|&m| {
                    let pos = occupied_months.iter().position(|&om| om == m);
                    let shared = pos
                        .and_then(|p| counts.get(row as Index, p as Index))
                        .unwrap_or(0);
                    shared as f64 / n_sources.max(1) as f64
                })
                .collect();
            TemporalCurve {
                window_label: window.label.clone(),
                coord: window.coord,
                bin,
                d: bin_representative(bin),
                n_sources,
                months,
                lags,
                fractions,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::temporal_curves;
    use obscor_assoc::convert::ip_key;

    fn window() -> WindowDegrees {
        let mut degrees: Vec<(u32, u64)> = (1..=12u32).map(|ip| (ip, 3u64)).collect();
        degrees.extend((101..=110u32).map(|ip| (ip, 200u64)));
        WindowDegrees { label: "w".into(), coord: 4.5, month: 4, degrees }
    }

    fn months(present: &[&[u32]]) -> Vec<KeySet> {
        present.iter().map(|ips| ips.iter().map(|&ip| ip_key(ip)).collect()).collect()
    }

    #[test]
    fn month_matrix_shape() {
        let gn = months(&[&[1, 2, 3], &[], &[2]]);
        let m = month_source_matrix(&gn);
        assert_eq!(m.n_rows(), 2); // empty month not stored
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 1), Some(1));
        assert_eq!(m.get(2, 2), Some(1));
    }

    #[test]
    fn bin_matrix_partitions_sources() {
        let w = window();
        let (bins, m) = bin_source_matrix(&w, 1);
        assert_eq!(bins.len(), 2);
        let total: usize = (0..m.n_rows()).map(|i| m.row_at(i).0.len()).sum();
        assert_eq!(total, w.degrees.len());
    }

    #[test]
    fn algebraic_path_equals_keyset_path() {
        let w = window();
        let gn = months(&[
            &[1, 2, 101],
            &[1],
            &[],
            &[101, 102, 103, 9],
            &[1, 2, 3, 4, 101, 102],
            &[5, 105],
        ]);
        let a = temporal_curves_algebraic(&w, &gn, 1);
        let b = temporal_curves(&w, &gn, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn algebraic_path_respects_min_sources() {
        let w = window();
        let gn = months(&[&[1]]);
        let a = temporal_curves_algebraic(&w, &gn, 11);
        let b = temporal_curves(&w, &gn, 11);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1); // only the 12-source bin survives
    }

    #[test]
    fn empty_inputs() {
        let w = WindowDegrees { label: "e".into(), coord: 0.5, month: 0, degrees: vec![] };
        assert!(temporal_curves_algebraic(&w, &months(&[&[1]]), 1).is_empty());
        let w2 = window();
        let curves = temporal_curves_algebraic(&w2, &[], 1);
        assert!(curves.iter().all(|c| c.fractions.is_empty()));
    }
}
