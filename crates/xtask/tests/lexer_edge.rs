//! Lexer/blanker edge cases: raw strings, byte strings, and nested block
//! comments.
//!
//! The audit engine's precision rests on the blanking pass — rule code
//! matches tokens, so anything a string or comment smuggles past the
//! blanker becomes a phantom finding (an `unwrap` inside an error
//! message, a `HashMap` in a doc string). These tests pin the tricky
//! literal forms with fixtures and then fuzz them with properties over
//! arbitrary payloads and nesting depths.

use proptest::prelude::*;
use std::path::PathBuf;
use xtask::lex::TokKind;
use xtask::scan::SourceFile;

fn prep(src: &str) -> SourceFile {
    SourceFile::from_source(PathBuf::from("mem.rs"), "mem.rs".into(), src.to_string())
}

/// All Ident token texts in the blanked code.
fn idents(f: &SourceFile) -> Vec<&str> {
    f.toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| &f.code[t.start..t.end])
        .collect()
}

#[test]
fn raw_string_contents_are_blanked() {
    let f = prep("let p = r#\"x.unwrap() as u32 HashMap\"#;\nlet q = 2;\n");
    for leaked in ["unwrap", "u32", "HashMap", "as"] {
        assert!(!idents(&f).contains(&leaked), "`{leaked}` leaked: {:?}", idents(&f));
    }
    // The trailing code still lexes, on the right line.
    let q = f.toks.iter().find(|t| &f.code[t.start..t.end] == "q").expect("q survives");
    assert_eq!(q.line, 2);
}

#[test]
fn raw_string_hash_depth_is_respected() {
    // The `"#` inside must NOT terminate the `r##"..."##` literal.
    let f = prep("let p = r##\"decoy\"# unwrap()\"##;\nlet q = 1;\n");
    assert!(!idents(&f).contains(&"unwrap"), "decoy terminator honored: {:?}", idents(&f));
    assert!(idents(&f).contains(&"q"));
}

#[test]
fn multiline_raw_strings_keep_line_numbers() {
    let f = prep("let p = r#\"one\ntwo\nthree\"#;\nlet q = 4;\n");
    assert_eq!(f.code.lines().count(), f.raw.lines().count());
    let q = f.toks.iter().find(|t| &f.code[t.start..t.end] == "q").expect("q survives");
    assert_eq!(q.line, 4);
}

#[test]
fn byte_strings_and_byte_raw_strings_are_blanked() {
    let f = prep("let a = b\"panic! \\\" unwrap\"; let b2 = br#\"as u32 \"quoted\" lock\"#;\n");
    for leaked in ["panic", "unwrap", "u32", "quoted", "lock"] {
        assert!(!idents(&f).contains(&leaked), "`{leaked}` leaked: {:?}", idents(&f));
    }
    assert!(idents(&f).contains(&"b2"));
}

#[test]
fn raw_prefix_requires_a_token_boundary() {
    // `writer"x"` is an ident followed by a plain string, not a raw string
    // — the blanker must not swallow to some imagined `"#` terminator.
    let f = prep("let w = writer\"x\"; let tail = 1;\n");
    assert!(idents(&f).contains(&"writer"));
    assert!(idents(&f).contains(&"tail"));
    // And a bare `br` identifier is not a byte-raw prefix.
    let g = prep("let br = 1; let after = 2;\n");
    assert!(idents(&g).contains(&"br"));
    assert!(idents(&g).contains(&"after"));
}

#[test]
fn nested_block_comments_are_blanked_to_full_depth() {
    let f = prep("/* outer /* inner unwrap() */ still HashMap */ fn f() {}\n");
    assert_eq!(idents(&f), vec!["fn", "f"], "comment payload leaked");
    let g = prep("/* a\n/* b\n*/\nc */\nfn g() {}\n");
    assert_eq!(idents(&g), vec!["fn", "g"]);
    let tok = g.toks.iter().find(|t| &g.code[t.start..t.end] == "g").expect("g survives");
    assert_eq!(tok.line, 5, "line numbers survive multiline nested comments");
}

#[test]
fn delimiters_inside_literals_do_not_skew_matching() {
    let src = "fn f() { g(r#\"((({\"#, b\"}}))\"); }\n";
    let f = prep(src);
    // The parser found exactly one fn item with a body despite the
    // unbalanced delimiters inside the two literals.
    let body = f.items.iter().find_map(|it| it.body).expect("fn body parsed");
    assert_eq!(&f.code[f.toks[body.0].start..f.toks[body.0].end], "{");
    assert_eq!(&f.code[f.toks[body.1].start..f.toks[body.1].end], "}");
}

proptest! {
    /// No payload characters survive blanking inside `r#"..."#`: every
    /// identifier token in the lexed file comes from the code skeleton.
    #[test]
    fn raw_string_payload_never_leaks(payload in "[a-zA-Z0-9 ]{0,12}") {
        let src = format!("fn f() {{ let s = r#\"{payload}\"#; }}\n");
        let f = prep(&src);
        for id in idents(&f) {
            prop_assert!(
                matches!(id, "fn" | "f" | "let" | "s" | "r"),
                "leaked ident `{}` from payload `{}`", id, payload
            );
        }
    }

    /// Byte-string payloads are equally inert.
    #[test]
    fn byte_string_payload_never_leaks(payload in "[a-zA-Z0-9 ]{0,12}") {
        let src = format!("fn f() {{ let s = b\"{payload}\"; }}\n");
        let f = prep(&src);
        for id in idents(&f) {
            prop_assert!(
                matches!(id, "fn" | "f" | "let" | "s" | "b"),
                "leaked ident `{}` from payload `{}`", id, payload
            );
        }
    }

    /// Arbitrarily deep nested block comments blank completely and the
    /// code after them lexes as if the comment were a single space.
    #[test]
    fn nested_comments_blank_at_any_depth(depth in 1usize..8, payload in "[a-z]{1,6}") {
        let open = "/*".repeat(depth);
        let close = "*/".repeat(depth);
        let src = format!("{open} {payload} {close}\nfn g() {{}}\n");
        let f = prep(&src);
        prop_assert_eq!(idents(&f), vec!["fn", "g"]);
        let g_tok = f
            .toks
            .iter()
            .find(|t| &f.code[t.start..t.end] == "g")
            .expect("g survives");
        prop_assert_eq!(g_tok.line, 2);
    }

    /// Blanking never changes the file's line structure, whatever mix of
    /// raw-string lines the payload contributes.
    #[test]
    fn blanking_preserves_line_counts(
        lines in proptest::collection::vec("[a-zA-Z0-9 ]{0,8}", 0..5),
    ) {
        let src = format!("let s = r#\"{}\"#;\nlet t = 1;\n", lines.join("\n"));
        let f = prep(&src);
        prop_assert_eq!(f.code.lines().count(), f.raw.lines().count());
        let t_tok = f
            .toks
            .iter()
            .find(|t| &f.code[t.start..t.end] == "t")
            .expect("t survives");
        prop_assert_eq!(t_tok.line, f.raw.lines().count());
    }
}
