// Fixture codec: any fn defined in obs/src/json.rs is a level-0 taint
// source for the map-iter-order rule's symbol index.

pub fn escape(s: &str) -> String {
    s.to_string()
}
