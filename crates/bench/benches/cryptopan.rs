//! Substrate bench: AES-128, CryptoPAN anonymization/deanonymization,
//! and the trusted-sharing transformation-table workflow.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use obscor_anonymize::aes::Aes128;
use obscor_anonymize::sharing::Holder;
use obscor_anonymize::CryptoPan;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let aes = Aes128::new(&[7u8; 16]);
    let cp = CryptoPan::new(&[9u8; 32]);
    let mut rng = StdRng::seed_from_u64(3);
    let addrs: Vec<u32> = (0..10_000).map(|_| rng.random()).collect();

    c.bench_function("cryptopan/aes_block", |b| {
        let mut block = [0x42u8; 16];
        b.iter(|| {
            aes.encrypt_block(&mut block);
            black_box(block[0])
        })
    });

    c.bench_function("cryptopan/anonymize_one", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % addrs.len();
            black_box(cp.anonymize(addrs[i]))
        })
    });

    c.bench_function("cryptopan/deanonymize_one", |b| {
        let anon = cp.anonymize(addrs[0]);
        b.iter(|| black_box(cp.deanonymize(anon)))
    });

    let mut g = c.benchmark_group("cryptopan_batch");
    g.sample_size(10);
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("anonymize_10k", |b| {
        b.iter(|| {
            let mut v = addrs.clone();
            cp.anonymize_slice(&mut v);
            black_box(v)
        })
    });
    let holder = Holder::new("bench", &[1u8; 32]);
    let published = holder.publish(&addrs);
    let common = CryptoPan::new(&[2u8; 32]);
    g.bench_function("transformation_table_10k", |b| {
        b.iter(|| black_box(holder.transformation_table(&published, &common)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
