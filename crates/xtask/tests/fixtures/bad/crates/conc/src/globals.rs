// Seeds `shared-static-mut` violations: process-global atomics and locks
// outside the obs registry and the declared enable flags.

use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::Mutex;

pub static HITS: AtomicU64 = AtomicU64::new(0);

pub static POOL: Mutex<Vec<u8>> = Mutex::new(Vec::new());

pub static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

static TABLE: [u8; 3] = [1, 2, 3];

// audit:allow(shared-static-mut) — fixture: the marker must silence this site
static OK: Mutex<u32> = Mutex::new(0);

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicU32;

    pub static IN_TEST: AtomicU32 = AtomicU32::new(0);
}
