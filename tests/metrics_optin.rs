//! Integration: the ingest fast-path and streaming metrics are *opt-in*.
//!
//! The default 80-name schema is pinned byte-for-byte by
//! `tests/metrics_schema.rs`; this binary (a separate process, so the
//! enable flags cannot leak into that pin) proves the two halves of the
//! opt-in contract:
//!
//! 1. with the flags off, the fast paths emit **nothing** under
//!    `hypersparse.radix.*` / `hypersparse.spill.*` /
//!    `anonymize.cache.*` / `assoc.bitset.*` / `telescope.ingest.*` /
//!    `ingest.backpressure.*`, and
//! 2. once [`obscor::hypersparse::radix::enable_metrics`],
//!    [`obscor::hypersparse::spill::enable_spill_metrics`],
//!    [`obscor::anonymize::memo::enable_cache_metrics`],
//!    [`obscor::assoc::bitset::enable_bitset_metrics`], and
//!    [`obscor::telescope::stream::enable_ingest_metrics`] are called,
//!    the exact documented name set appears — and nothing else.

use obscor::anonymize::memo::{self, MemoCryptoPan};
use obscor::assoc::{bitset, BitSet};
use obscor::hypersparse::spill::{self, MemMedium, SpillAccumulator, SpillConfig};
use obscor::hypersparse::{radix, Coo};
use obscor::telescope::{stream, IngestConfig, IngestService};
use std::sync::Arc;

/// Every opt-in name, sorted — the schema-pin strategy applied to the
/// fast-path metrics (a new name must be added here and to DESIGN.md §12
/// deliberately).
const OPTIN_NAMES: [&str; 32] = [
    "anonymize.cache.batch_dup_hits_total",
    "anonymize.cache.prefix_hits_total",
    "anonymize.cache.suffix_aes_total",
    "anonymize.cache.table_builds_total",
    "assoc.bitset.containers_array_total",
    "assoc.bitset.containers_bitmap_total",
    "assoc.bitset.containers_runs_total",
    "assoc.bitset.demotions_total",
    "assoc.bitset.promotions_total",
    "assoc.bitset.words_scanned_total",
    "hypersparse.radix.compactions_total",
    "hypersparse.radix.crossover",
    "hypersparse.radix.digit_passes_total",
    "hypersparse.radix.keys_total",
    "hypersparse.radix.skipped_digits_total",
    "hypersparse.spill.bytes_read_total",
    "hypersparse.spill.bytes_written_total",
    "hypersparse.spill.evictions_total",
    "hypersparse.spill.reloads_total",
    "ingest.backpressure.blocked",
    "span.hypersparse.radix.digit_passes.calls_total",
    "span.hypersparse.radix.digit_passes.ns",
    "span.hypersparse.spill.merge.level0.calls_total",
    "span.hypersparse.spill.merge.level0.ns",
    "span.hypersparse.spill.merge.level1.calls_total",
    "span.hypersparse.spill.merge.level1.ns",
    "span.hypersparse.spill.merge.level2.calls_total",
    "span.hypersparse.spill.merge.level2.ns",
    "telescope.ingest.leaves_total",
    "telescope.ingest.merges_total",
    "telescope.ingest.packets_total",
    "telescope.ingest.windows_closed_total",
];

fn is_optin(name: &str) -> bool {
    name.starts_with("hypersparse.radix.")
        || name.starts_with("hypersparse.spill.")
        || name.starts_with("anonymize.cache.")
        || name.starts_with("assoc.bitset.")
        || name.starts_with("span.hypersparse.radix.")
        || name.starts_with("span.hypersparse.spill.")
        || name.starts_with("telescope.ingest.")
        || name.starts_with("ingest.backpressure.")
}

/// Drive every fast path far enough to touch all opt-in metric sites:
/// a compaction big enough to take the radix arm of `into_csr` (the
/// measured crossover never exceeds the `2^15` fallback), a memo table
/// build, scalar anonymization, and a batch with duplicates.
fn exercise_fast_paths() {
    let n = 40_000u32;
    let triples: Vec<(u32, u32, u64)> =
        (0..n).map(|i| (i % 2048, i % 509, 1u64)).collect();
    let csr = Coo::from_triples(triples).into_csr();
    assert!(csr.nnz() > 0);

    let memo = MemoCryptoPan::new(&[0x42u8; 32]);
    let a = memo.anonymize(0x0A00_0001);
    assert_eq!(memo.deanonymize(a), 0x0A00_0001);
    let mut batch = vec![0x0A00_0001, 0x0A00_0001, 0x0A00_0002, 0xC0A8_0001];
    memo.anonymize_slice(&mut batch);
    assert_eq!(batch[0], batch[1]);
}

/// Drive the compressed-bitmap substrate through every `assoc.bitset.*`
/// site with a deterministic footprint: even keys defeat run compression,
/// so the builds land exactly where the hysteresis edges put them.
fn exercise_bitset() {
    // Array at the 4096-key ceiling; one more key promotes to a bitmap.
    let mut s = BitSet::from_iter((0..4096u32).map(|k| 2 * k));
    assert!(s.insert(1), "odd key must be new");
    // Shrink below the 3840 demote floor: exactly one demotion fires.
    for k in 0..258u32 {
        assert!(s.remove(2 * k));
    }
    assert_eq!(s.len(), 3839);
    // A contiguous range optimizes array → runs (1 run = 4 bytes).
    let mut r = BitSet::from_iter(0..1024u32);
    r.optimize();
    // Two dense even-key chunks stay bitmaps; their overlap is one
    // word-parallel pass over both 1024-word chunks.
    let a = BitSet::from_iter((0..8192u32).map(|k| 2 * k));
    let b = BitSet::from_iter((0..8192u32).map(|k| 2 * k + 2));
    assert_eq!(a.overlap_count(&b), 8191);
}

/// Drive the out-of-core fold through every `hypersparse.spill.*` site
/// with a *deterministic* name footprint: exactly 8 leaves under a zero
/// budget evict/reload every carry and merge at carry levels 0, 1, and 2
/// only (the finalize step sees a single part, so no tree merge adds a
/// level name).
fn exercise_spilled_fold() {
    let config =
        SpillConfig { leaf_capacity: 4, memory_budget: Some(0), ..SpillConfig::default() };
    let mut acc = SpillAccumulator::<u64>::new(config, Arc::new(MemMedium::new()));
    for i in 0..32u32 {
        acc.push_edge(i % 8, i % 3);
    }
    let (m, report) = acc.finalize();
    assert!(m.nnz() > 0);
    assert!(report.is_exact());
    assert_eq!(report.stats.leaves, 8);
    assert_eq!(report.stats.carry_merges, 7, "8 leaves = 4+2+1 carry merges");
    assert_eq!(report.stats.tree_merges, 0, "one surviving part needs no tree");
    assert!(report.stats.evictions >= 8);
    assert!(report.stats.reloads >= 7);
}

/// Drive the streaming ingest service far enough to touch every
/// `telescope.ingest.*` site and — via a depth-1 queue, per-packet shard
/// batches, and a deliberately slow worker — the backpressure counter.
fn exercise_streaming_ingest() {
    let mut cfg = IngestConfig::new(1, 32);
    cfg.queue_depth = 1;
    cfg.shard_batch = 1;
    cfg.leaf_capacity = 8; // 64 packets / 8 → multiple leaves → merges ≥ 1
    cfg.worker_delay_micros = 1500;
    let mut svc = IngestService::new(cfg);
    for i in 0..64u32 {
        svc.push(i % 16, i % 5);
    }
    let (snaps, drain) = svc.finish();
    assert!(drain.is_exact());
    assert_eq!(snaps.len(), 2);
    assert!(
        drain.blocked > 0,
        "slow depth-1 ingest must hit backpressure so its counter is exercised"
    );
    assert!(snaps.iter().any(|s| s.merges > 0), "need a carry merge to exercise merges_total");
}

/// One test for both phases: the flags are process-global, so the
/// off-phase must observably complete before anything enables them.
#[test]
fn fast_path_metrics_are_opt_in_with_a_pinned_name_set() {
    // Phase 1: flags off — the fast paths run silent.
    let before = obscor_obs::snapshot();
    exercise_fast_paths();
    exercise_bitset();
    exercise_spilled_fold();
    exercise_streaming_ingest();
    let silent = obscor_obs::snapshot().delta_since(&before);
    let leaked: Vec<String> =
        silent.metric_names().into_iter().filter(|n| is_optin(n)).collect();
    assert!(leaked.is_empty(), "opt-in metrics leaked while disabled: {leaked:?}");

    // Phase 2: flags on — the exact documented set appears.
    radix::enable_metrics();
    spill::enable_spill_metrics();
    memo::enable_cache_metrics();
    bitset::enable_bitset_metrics();
    stream::enable_ingest_metrics();
    let before = obscor_obs::snapshot();
    exercise_fast_paths();
    exercise_bitset();
    exercise_spilled_fold();
    exercise_streaming_ingest();
    let enabled = obscor_obs::snapshot().delta_since(&before);
    let got: Vec<String> =
        enabled.metric_names().into_iter().filter(|n| is_optin(n)).collect();
    let got: Vec<&str> = got.iter().map(String::as_str).collect();
    assert_eq!(got, OPTIN_NAMES, "opt-in metric names drifted");

    // The counters carry real work, and the span algebra holds.
    assert!(enabled.counters["hypersparse.radix.keys_total"] >= 40_000);
    assert!(enabled.counters["anonymize.cache.table_builds_total"] >= 1);
    assert!(enabled.counters["anonymize.cache.prefix_hits_total"] >= 1);
    assert!(enabled.counters["anonymize.cache.batch_dup_hits_total"] >= 1);
    assert!(enabled.gauges["hypersparse.radix.crossover"] >= 1);
    // The bitset drive lands exactly where the hysteresis edges put it:
    // three array builds (ceiling set, demotion target, runs precursor),
    // three bitmap builds (one promotion, two dense even-key sets), one
    // runs conversion, and one word-parallel overlap over both chunks.
    assert_eq!(enabled.counters["assoc.bitset.containers_array_total"], 3);
    assert_eq!(enabled.counters["assoc.bitset.containers_bitmap_total"], 3);
    assert_eq!(enabled.counters["assoc.bitset.containers_runs_total"], 1);
    assert_eq!(enabled.counters["assoc.bitset.promotions_total"], 1);
    assert_eq!(enabled.counters["assoc.bitset.demotions_total"], 1);
    assert_eq!(enabled.counters["assoc.bitset.words_scanned_total"], 2048);
    assert_eq!(
        enabled.histograms["span.hypersparse.radix.digit_passes.ns"].count,
        enabled.counters["span.hypersparse.radix.digit_passes.calls_total"]
    );
    // The spilled fold: every byte written was read back (nothing is
    // left stranded on the medium), and the per-level merge timings
    // match the 4 + 2 + 1 carry-merge shape of an 8-leaf fold exactly.
    assert!(enabled.counters["hypersparse.spill.evictions_total"] >= 8);
    assert!(enabled.counters["hypersparse.spill.reloads_total"] >= 7);
    assert!(enabled.counters["hypersparse.spill.bytes_written_total"] >= 1);
    assert_eq!(
        enabled.counters["hypersparse.spill.bytes_read_total"],
        enabled.counters["hypersparse.spill.bytes_written_total"]
    );
    for (level, calls) in [(0u32, 4u64), (1, 2), (2, 1)] {
        let name = format!("span.hypersparse.spill.merge.level{level}");
        assert_eq!(enabled.counters[&format!("{name}.calls_total")], calls, "{name}");
        assert_eq!(enabled.histograms[&format!("{name}.ns")].count, calls, "{name}");
    }
    // Streaming ingest: exact totals for the 64-packet run above.
    assert_eq!(enabled.counters["telescope.ingest.windows_closed_total"], 2);
    assert_eq!(enabled.counters["telescope.ingest.packets_total"], 64);
    assert!(enabled.counters["telescope.ingest.leaves_total"] >= 4);
    assert!(enabled.counters["telescope.ingest.merges_total"] >= 1);
    assert!(enabled.counters["ingest.backpressure.blocked"] >= 1);
}
