//! Temporal correlation models and their grid fits.
//!
//! Fig 5 of the paper compares three shapes for the decay of
//! cross-observatory source overlap with month lag `τ = t − t0`:
//!
//! * Gaussian: `exp(−τ² / 2σ²)`,
//! * Cauchy:   `γ² / (γ² + τ²)`,
//! * modified Cauchy: `β / (β + |τ|^α)` — the paper's contribution, which
//!   reduces to the Cauchy at `α = 2, β = γ²`.
//!
//! All models are normalized to 1 at `τ = 0`; fits follow the paper's
//! procedure exactly: "generating all distributions over a range of
//! possible α and β values, normalizing to the peak in the data, and then
//! selecting the α and β that minimize the `| |^{1/2}` norm".

use crate::norms::residual_pnorm;

/// A unit-peak temporal correlation model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TemporalModel {
    /// `exp(−τ²/2σ²)`.
    Gaussian {
        /// Standard deviation in months.
        sigma: f64,
    },
    /// `γ²/(γ² + τ²)`.
    Cauchy {
        /// Half-width in months.
        gamma: f64,
    },
    /// `β/(β + |τ|^α)`.
    ModifiedCauchy {
        /// Lag exponent (`α = 1` is typical in the paper's Fig 7).
        alpha: f64,
        /// Scale factor (the one-month drop is `1/(β+1)`, Fig 8).
        beta: f64,
    },
}

impl TemporalModel {
    /// Evaluate at month lag `tau` (value is 1 at `tau = 0`).
    pub fn eval(&self, tau: f64) -> f64 {
        let t = tau.abs();
        match *self {
            TemporalModel::Gaussian { sigma } => (-t * t / (2.0 * sigma * sigma)).exp(),
            TemporalModel::Cauchy { gamma } => gamma * gamma / (gamma * gamma + t * t),
            TemporalModel::ModifiedCauchy { alpha, beta } => beta / (beta + t.powf(alpha)),
        }
    }

    /// The drop from the peak after one month, `1 − f(1)`.
    pub fn one_month_drop(&self) -> f64 {
        1.0 - self.eval(1.0)
    }
}

/// The relative one-month drop implied by a modified-Cauchy `β`:
/// `1 − β/(β+1) = 1/(β+1)` (the quantity plotted in Fig 8).
pub fn one_month_drop(beta: f64) -> f64 {
    1.0 / (beta + 1.0)
}

/// Result of a modified-Cauchy grid fit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModCauchyFit {
    /// Best-fit lag exponent.
    pub alpha: f64,
    /// Best-fit scale factor.
    pub beta: f64,
    /// The peak value the model was normalized to.
    pub peak: f64,
    /// `| |^{1/2}` residual at the optimum.
    pub residual: f64,
}

impl ModCauchyFit {
    /// The fitted model (unit peak).
    pub fn model(&self) -> TemporalModel {
        TemporalModel::ModifiedCauchy { alpha: self.alpha, beta: self.beta }
    }

    /// Evaluate the fitted curve (including the peak scale) at `tau`.
    pub fn eval(&self, tau: f64) -> f64 {
        self.peak * self.model().eval(tau)
    }
}

/// Result of a one-parameter (Gaussian/Cauchy) grid fit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SingleParamFit {
    /// Best-fit width parameter (σ or γ).
    pub param: f64,
    /// Peak normalization.
    pub peak: f64,
    /// `| |^{1/2}` residual at the optimum.
    pub residual: f64,
}

fn peak_of(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Default α grid: 0.05 .. 4.0.
pub fn default_mc_alpha_grid() -> Vec<f64> {
    (1..=80).map(|i| i as f64 * 0.05).collect()
}

/// Default β grid: 60 points log-spaced in [0.02, 100].
pub fn default_mc_beta_grid() -> Vec<f64> {
    let (lo, hi, n) = (0.02f64, 100.0f64, 60usize);
    let step = (hi / lo).powf(1.0 / (n as f64 - 1.0));
    (0..n).map(|i| lo * step.powi(i as i32)).collect()
}

/// Fit the modified Cauchy to `(lag, value)` samples by grid scan.
/// Returns `None` on empty input or a non-positive peak.
pub fn fit_modified_cauchy_grid(
    lags: &[f64],
    values: &[f64],
    alphas: &[f64],
    betas: &[f64],
) -> Option<ModCauchyFit> {
    assert_eq!(lags.len(), values.len());
    if lags.is_empty() {
        return None;
    }
    let peak = peak_of(values);
    if peak <= 0.0 || peak.is_nan() {
        return None;
    }
    let mut best: Option<ModCauchyFit> = None;
    for &alpha in alphas {
        for &beta in betas {
            let model = TemporalModel::ModifiedCauchy { alpha, beta };
            let predicted: Vec<f64> = lags.iter().map(|&t| peak * model.eval(t)).collect();
            let residual = residual_pnorm(&predicted, values, 0.5);
            if best.map(|b| residual < b.residual).unwrap_or(true) {
                best = Some(ModCauchyFit { alpha, beta, peak, residual });
            }
        }
    }
    best
}

/// [`fit_modified_cauchy_grid`] with the default grids, followed by local
/// coordinate refinement.
///
/// The paper's procedure is the pure grid scan; the refinement pass
/// (alternating 1-D bracket shrinks on β and α around the grid optimum)
/// removes the grid-quantization error so the modified Cauchy — which
/// contains the standard Cauchy at `α = 2, β = γ²` — never loses to a
/// denser one-parameter scan by discretization alone.
pub fn fit_modified_cauchy(lags: &[f64], values: &[f64]) -> Option<ModCauchyFit> {
    let coarse =
        fit_modified_cauchy_grid(lags, values, &default_mc_alpha_grid(), &default_mc_beta_grid())?;
    Some(refine_modified_cauchy(lags, values, coarse))
}

/// Shrinking-bracket coordinate descent around a starting fit.
pub fn refine_modified_cauchy(lags: &[f64], values: &[f64], start: ModCauchyFit) -> ModCauchyFit {
    let peak = start.peak;
    let eval = |alpha: f64, beta: f64| {
        let model = TemporalModel::ModifiedCauchy { alpha, beta };
        let predicted: Vec<f64> = lags.iter().map(|&t| peak * model.eval(t)).collect();
        residual_pnorm(&predicted, values, 0.5)
    };
    let mut best = start;
    let (mut alpha_step, mut beta_step) = (1.3f64, 1.5f64);
    for _ in 0..6 {
        // 1-D scan in β around the incumbent.
        for k in -4i32..=4 {
            let beta = best.beta * beta_step.powi(k).max(1e-6);
            let residual = eval(best.alpha, beta);
            if residual < best.residual {
                best = ModCauchyFit { beta, residual, ..best };
            }
        }
        // 1-D scan in α.
        for k in -4i32..=4 {
            let alpha = (best.alpha * alpha_step.powi(k)).max(1e-3);
            let residual = eval(alpha, best.beta);
            if residual < best.residual {
                best = ModCauchyFit { alpha, residual, ..best };
            }
        }
        alpha_step = alpha_step.sqrt();
        beta_step = beta_step.sqrt();
    }
    best
}

fn fit_single_param(
    lags: &[f64],
    values: &[f64],
    params: &[f64],
    make: impl Fn(f64) -> TemporalModel,
) -> Option<SingleParamFit> {
    assert_eq!(lags.len(), values.len());
    if lags.is_empty() {
        return None;
    }
    let peak = peak_of(values);
    if peak <= 0.0 || peak.is_nan() {
        return None;
    }
    let mut best: Option<SingleParamFit> = None;
    for &p in params {
        let model = make(p);
        let predicted: Vec<f64> = lags.iter().map(|&t| peak * model.eval(t)).collect();
        let residual = residual_pnorm(&predicted, values, 0.5);
        if best.map(|b| residual < b.residual).unwrap_or(true) {
            best = Some(SingleParamFit { param: p, peak, residual });
        }
    }
    best
}

/// Default width grid for the one-parameter models: 0.05 .. 20 months.
pub fn default_width_grid() -> Vec<f64> {
    (1..=400).map(|i| i as f64 * 0.05).collect()
}

/// Fit a Gaussian `exp(−τ²/2σ²)` by grid scan over σ.
pub fn fit_gaussian(lags: &[f64], values: &[f64]) -> Option<SingleParamFit> {
    fit_single_param(lags, values, &default_width_grid(), |sigma| TemporalModel::Gaussian {
        sigma,
    })
}

/// Fit a Cauchy `γ²/(γ²+τ²)` by grid scan over γ.
pub fn fit_cauchy(lags: &[f64], values: &[f64]) -> Option<SingleParamFit> {
    fit_single_param(lags, values, &default_width_grid(), |gamma| TemporalModel::Cauchy {
        gamma,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_peak_at_one() {
        for m in [
            TemporalModel::Gaussian { sigma: 2.0 },
            TemporalModel::Cauchy { gamma: 1.5 },
            TemporalModel::ModifiedCauchy { alpha: 1.0, beta: 4.0 },
        ] {
            assert!((m.eval(0.0) - 1.0).abs() < 1e-12);
            assert!(m.eval(3.0) < 1.0);
            assert!((m.eval(3.0) - m.eval(-3.0)).abs() < 1e-12, "symmetric in lag");
        }
    }

    #[test]
    fn modified_cauchy_reduces_to_cauchy() {
        // α = 2, β = γ² gives the standard Cauchy.
        let gamma = 1.7f64;
        let mc = TemporalModel::ModifiedCauchy { alpha: 2.0, beta: gamma * gamma };
        let c = TemporalModel::Cauchy { gamma };
        for tau in [0.0, 0.5, 1.0, 3.0, 7.5] {
            assert!((mc.eval(tau) - c.eval(tau)).abs() < 1e-12);
        }
    }

    #[test]
    fn one_month_drop_formula() {
        assert!((one_month_drop(1.0) - 0.5).abs() < 1e-12);
        assert!((one_month_drop(4.0) - 0.2).abs() < 1e-12);
        let m = TemporalModel::ModifiedCauchy { alpha: 1.0, beta: 4.0 };
        assert!((m.one_month_drop() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn paper_typical_models() {
        // "f ∝ 1/(1 + |t−t0|)" for d ≈ 10^3: α = 1, β = 1 → 50% drop.
        let typical = TemporalModel::ModifiedCauchy { alpha: 1.0, beta: 1.0 };
        assert!((typical.one_month_drop() - 0.5).abs() < 1e-12);
        // "4/(4 + |t−t0|)": 20% drop.
        let bright = TemporalModel::ModifiedCauchy { alpha: 1.0, beta: 4.0 };
        assert!((bright.one_month_drop() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn fit_recovers_planted_modified_cauchy() {
        let truth = TemporalModel::ModifiedCauchy { alpha: 1.0, beta: 2.0 };
        let lags: Vec<f64> = (-7..=7).map(|m| m as f64).collect();
        let values: Vec<f64> = lags.iter().map(|&t| 0.6 * truth.eval(t)).collect();
        let fit = fit_modified_cauchy(&lags, &values).unwrap();
        assert!((fit.alpha - 1.0).abs() < 0.06, "alpha {}", fit.alpha);
        assert!((fit.beta - 2.0).abs() / 2.0 < 0.15, "beta {}", fit.beta);
        assert!((fit.peak - 0.6).abs() < 1e-12);
        // β = 2.0 is not exactly on the log-spaced grid, so the residual is
        // nonzero; the 1/2-norm over 15 points scales a mean per-point
        // error e to roughly 225·e, so 0.5 ≈ 2e-3 per point.
        assert!(fit.residual < 0.5, "residual {}", fit.residual);
    }

    #[test]
    fn modified_cauchy_beats_gaussian_on_heavy_tail() {
        // Data generated by a modified Cauchy has a heavy tail the Gaussian
        // cannot reproduce: the paper's Fig 5 comparison.
        let truth = TemporalModel::ModifiedCauchy { alpha: 1.0, beta: 1.5 };
        let lags: Vec<f64> = (-7..=7).map(|m| m as f64).collect();
        let values: Vec<f64> = lags.iter().map(|&t| 0.5 * truth.eval(t)).collect();
        let mc = fit_modified_cauchy(&lags, &values).unwrap();
        let g = fit_gaussian(&lags, &values).unwrap();
        let c = fit_cauchy(&lags, &values).unwrap();
        assert!(mc.residual < g.residual);
        assert!(mc.residual <= c.residual + 1e-12);
        assert!(c.residual < g.residual, "even plain Cauchy beats Gaussian");
    }

    #[test]
    fn fit_handles_asymmetric_lags() {
        // CAIDA windows sit mid-span: lags need not be symmetric.
        let truth = TemporalModel::ModifiedCauchy { alpha: 1.5, beta: 4.0 };
        let lags: Vec<f64> = (-4..=10).map(|m| m as f64).collect();
        let values: Vec<f64> = lags.iter().map(|&t| truth.eval(t)).collect();
        let fit = fit_modified_cauchy(&lags, &values).unwrap();
        assert!((fit.alpha - 1.5).abs() < 0.06);
    }

    #[test]
    fn empty_and_zero_inputs_give_none() {
        assert!(fit_modified_cauchy(&[], &[]).is_none());
        assert!(fit_modified_cauchy(&[0.0, 1.0], &[0.0, 0.0]).is_none());
        assert!(fit_gaussian(&[], &[]).is_none());
        assert!(fit_cauchy(&[0.0], &[0.0]).is_none());
    }

    #[test]
    fn fitted_eval_includes_peak() {
        let lags = [0.0, 1.0, 2.0];
        let vals = [0.8, 0.4, 0.3];
        let fit = fit_modified_cauchy(&lags, &vals).unwrap();
        assert!((fit.eval(0.0) - 0.8).abs() < 1e-12);
        assert!(fit.eval(2.0) < 0.8);
    }

    #[test]
    fn default_grids_are_sane() {
        let a = default_mc_alpha_grid();
        let b = default_mc_beta_grid();
        assert!(a.iter().all(|&x| x > 0.0));
        assert!(b.iter().all(|&x| x > 0.0));
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!((b[0] - 0.02).abs() < 1e-9 && (b[b.len() - 1] - 100.0).abs() < 1e-6);
    }
}
