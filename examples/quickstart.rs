//! Quickstart: run the complete paper pipeline on a small synthetic
//! world and print the reproduced tables and figures.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use obscor::core::{pipeline, AnalysisConfig};
use obscor::netmodel::Scenario;

fn main() {
    // A scaled-down world: N_V = 2^16 packets per telescope window
    // (the paper uses 2^30; every structural claim is scale-covariant,
    // with the Fig 4 knee at sqrt(N_V)).
    let n_v = 1 << 16;
    let scenario = Scenario::paper_scaled(n_v, 42);
    println!(
        "world: {} sources, 15 months, 5 telescope windows of {} packets\n",
        scenario.population.len(),
        scenario.n_v
    );

    let analysis = pipeline::run(&scenario, &AnalysisConfig::fast());

    // The full paper-shaped report: Tables I-II, Figs 1, 3-8.
    println!("{}", analysis.render_all());

    // Programmatic access to the headline numbers:
    let bright_fractions: Vec<f64> = analysis
        .peaks
        .iter()
        .flat_map(|p| p.points.iter())
        .filter(|pt| (pt.d as f64).log2() >= analysis.bright_log2)
        .map(|pt| pt.fraction)
        .collect();
    if !bright_fractions.is_empty() {
        let mean = bright_fractions.iter().sum::<f64>() / bright_fractions.len() as f64;
        println!(
            "\nheadline: bright (d > sqrt(N_V)) sources coevally detected {:.0}% of the time",
            mean * 100.0
        );
    }
}
