//! Offline stand-in for `crossbeam`.
//!
//! Only the [`channel`] module is provided — bounded/unbounded channels with
//! the blocking-send backpressure semantics the workspace's
//! `StreamingBuilder` and `telescope::stream` ingest service rely on —
//! implemented over [`std::sync::mpsc`]. (Real crossbeam channels are MPMC;
//! every use in this workspace is MPSC, which std's channels provide
//! directly.)

#![forbid(unsafe_code)]

/// Multi-producer channels with bounded-capacity backpressure.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        // Like real crossbeam: Debug does not require `T: Debug`.
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`]: the channel is either full
    /// (backpressure — the caller may block on [`Sender::send`] instead) or
    /// disconnected. Carries the message back in both cases.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded buffer is at capacity; sending now would block.
        Full(T),
        /// The receiving side has disconnected.
        Disconnected(T),
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    f.write_str("sending on a disconnected channel")
                }
            }
        }
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        // Like real crossbeam: Debug does not require `T: Debug`.
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::try_recv`] when no message is ready.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The buffer is currently empty (senders may still be live).
        Empty,
        /// Every sender has disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender has disconnected and the buffer is drained.
        Disconnected,
    }

    /// Either flavour of std sender behind one crossbeam-shaped facade.
    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        // Manual impl: like real crossbeam, cloning a sender must not
        // require `T: Clone` (the derive would add that bound).
        fn clone(&self) -> Self {
            match self {
                Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
                Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Send `msg`, blocking while the channel is full.
        ///
        /// # Errors
        /// Returns the message back if the receiving side has disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.inner {
                Tx::Bounded(tx) => tx.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
                Tx::Unbounded(tx) => tx.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
            }
        }

        /// Send `msg` without blocking.
        ///
        /// # Errors
        /// [`TrySendError::Full`] if the bounded buffer is at capacity
        /// (never returned by unbounded channels), or
        /// [`TrySendError::Disconnected`] if the receiver is gone.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.inner {
                Tx::Bounded(tx) => tx.try_send(msg).map_err(|e| match e {
                    mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                    mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
                }),
                Tx::Unbounded(tx) => tx
                    .send(msg)
                    .map_err(|mpsc::SendError(m)| TrySendError::Disconnected(m)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocking iterator over received messages; ends when all senders
        /// have disconnected.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }

        /// Receive one message, blocking until one is available.
        ///
        /// # Errors
        /// Fails when every sender has disconnected and the buffer is empty.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.inner.recv()
        }

        /// Receive one message if one is already buffered, without blocking.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] when nothing is ready yet,
        /// [`TryRecvError::Disconnected`] once all senders are gone and the
        /// buffer is drained.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receive one message, blocking at most `timeout`.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] when nothing arrived in time,
        /// [`RecvTimeoutError::Disconnected`] once all senders are gone and
        /// the buffer is drained.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// Create a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: Tx::Bounded(tx) }, Receiver { inner: rx })
    }

    /// Create a channel with no capacity bound: sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: Tx::Unbounded(tx) }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError, TrySendError};

    #[test]
    fn round_trip_and_disconnect() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            for i in 0..8 {
                tx.send(i).unwrap();
            }
        });
        std::thread::spawn(move || {
            for i in 8..16 {
                tx2.send(i).unwrap();
            }
        });
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn try_send_reports_full_then_succeeds_after_drain() {
        let (tx, rx) = bounded::<u32>(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(2).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }

    #[test]
    fn unbounded_never_fills() {
        let (tx, rx) = unbounded::<u32>();
        for i in 0..10_000 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(rx.iter().take(10_000).count(), 10_000);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (tx, rx) = unbounded::<u32>();
        assert!(rx.recv_timeout(Duration::from_millis(1)).is_err());
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 9);
    }
}
