//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses —
//! [`Strategy`], [`any`], range and regex-literal strategies, tuple and
//! [`collection::vec`] composition, [`Just`], `prop_map`, and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assume!`] macros — over the
//! vendored deterministic `rand` crate.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its deterministic case seed
//!   instead of a minimised input. Re-running the same test binary
//!   reproduces it exactly.
//! * **Deterministic by default.** Case streams are seeded from the test
//!   name, so failures are stable across runs and machines.
//! * The string strategy accepts only the literal character-class patterns
//!   this workspace uses (`"[a-z]{1,6}"`, `"[a-zA-Z0-9 ]{0,8}"`, `"[a-z]"`,
//!   plain literals).
//! * **Regression corpora replay by seed, not by value.** Upstream
//!   persists failing values; here the case seed *is* the value, so the
//!   corpus stores seeds. Files live in
//!   `$CARGO_MANIFEST_DIR/proptest-regressions/*.txt`, one entry per
//!   line: `cc <property-name> <hex-seed>` (`#` starts a comment). Every
//!   seed recorded for a property is replayed before any fresh cases are
//!   generated, so once-failing inputs stay covered forever.
//!
//! The number of cases per property defaults to 64 and can be raised with
//! the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by [`prop_assume!`]; it does not count toward
    /// the case budget.
    Reject,
    /// A [`prop_assert!`]-family assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection (assumption veto).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// A generator of values of an associated type.
///
/// Upstream proptest strategies also carry shrinking machinery; here a
/// strategy is simply a pure function of the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `f` returns `true` (rejection sampling).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::Rng;
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::Rng;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngExt;
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let mag = rng.random_range(-9.0f64..9.0);
        let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag)
    }
}

/// Marker strategy produced by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        use rand::RngExt;
        rng.random_range(self.clone())
    }
}

/// String strategies from literal regex-like patterns.
///
/// Supports sequences of either literal characters or a single character
/// class `[...]` (with `a-z` ranges and literal members) followed by an
/// optional `{m}` / `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    use rand::RngExt;
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let (alphabet, next) = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
            (parse_class(&chars[i + 1..close], pattern), close + 1)
        } else {
            (vec![chars[i]], i + 1)
        };
        let (lo, hi, next) = parse_repeat(&chars, next, pattern);
        let n = if lo == hi { lo } else { rng.random_range(lo..hi + 1) };
        for _ in 0..n {
            out.push(alphabet[rng.random_range(0..alphabet.len())]);
        }
        i = next;
    }
    out
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut alphabet = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
            assert!(lo <= hi, "descending class range in pattern {pattern:?}");
            for c in lo..=hi {
                alphabet.push(char::from_u32(c).expect("class range spans invalid char"));
            }
            j += 3;
        } else {
            alphabet.push(body[j]);
            j += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class in pattern {pattern:?}");
    alphabet
}

fn parse_repeat(chars: &[char], at: usize, pattern: &str) -> (usize, usize, usize) {
    if at >= chars.len() || chars[at] != '{' {
        return (1, 1, at);
    }
    let close = chars[at..]
        .iter()
        .position(|&c| c == '}')
        .map(|p| at + p)
        .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
    let body: String = chars[at + 1..close].iter().collect();
    let parse =
        |s: &str| s.trim().parse::<usize>().unwrap_or_else(|_| panic!("bad repeat in {pattern:?}"));
    let (lo, hi) = match body.split_once(',') {
        Some((a, b)) => (parse(a), parse(b)),
        None => (parse(&body), parse(&body)),
    };
    assert!(lo <= hi, "descending repeat in pattern {pattern:?}");
    (lo, hi, close + 1)
}

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples!(
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for vectors with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::RngExt;
            let n = if self.size.is_empty() {
                self.size.start
            } else {
                rng.random_range(self.size.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` strategy generating between `size.start` and `size.end - 1`
    /// elements of `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Choice strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy drawing uniformly from a fixed list of options.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::RngExt;
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }

    /// Draw one of `options` uniformly.
    ///
    /// # Panics
    /// Panics (on generation) if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

/// Drive one property: run `cases` accepted cases (rejections retry with a
/// fresh deterministic seed), panicking on the first failure.
///
/// This is the runtime behind the [`proptest!`] macro; tests do not call it
/// directly.
///
/// # Panics
/// Panics when a case fails or when rejection sampling exhausts its budget.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Replay the committed regression corpus first: seeds that once
    // produced a failure are pinned forever (see the module docs for the
    // file format).
    for seed in corpus_seeds(name) {
        let mut rng = StdRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) | Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => panic!(
                "property '{name}' failed replaying regression corpus seed {seed:#x}: {msg}"
            ),
        }
    }
    let cases: u64 = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
    // FNV-1a over the test name: stable, deterministic case stream.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    let mut accepted = 0u64;
    let mut attempt = 0u64;
    while accepted < cases {
        attempt += 1;
        assert!(
            attempt <= cases.saturating_mul(20),
            "property '{name}': too many rejected cases ({} accepted of {cases} wanted)",
            accepted
        );
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(attempt));
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => panic!(
                "property '{name}' failed at case {accepted} \
                 (deterministic seed {:#x}): {msg}",
                seed.wrapping_add(attempt)
            ),
        }
    }
}

/// One regression-corpus entry: `cc <property-name> <hex-seed>`, with
/// `#`-comments and blank lines ignored. Returns the property name and
/// the seed, or `None` for non-entry lines.
fn parse_corpus_line(line: &str) -> Option<(&str, u64)> {
    let line = line.split('#').next().unwrap_or("").trim();
    let mut parts = line.split_whitespace();
    if parts.next()? != "cc" {
        return None;
    }
    let name = parts.next()?;
    let tok = parts.next()?;
    let tok = tok.strip_prefix("0x").unwrap_or(tok);
    u64::from_str_radix(tok, 16).ok().map(|seed| (name, seed))
}

/// All corpus seeds recorded for property `name` in the running crate
/// (every `proptest-regressions/*.txt` under `$CARGO_MANIFEST_DIR`).
fn corpus_seeds(name: &str) -> Vec<u64> {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => corpus_seeds_in(std::path::Path::new(&dir), name),
        Err(_) => Vec::new(),
    }
}

/// [`corpus_seeds`] against an explicit crate root (separated for tests).
fn corpus_seeds_in(root: &std::path::Path, name: &str) -> Vec<u64> {
    let Ok(entries) = std::fs::read_dir(root.join("proptest-regressions")) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("txt") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        seeds.extend(
            text.lines()
                .filter_map(parse_corpus_line)
                .filter(|(n, _)| *n == name)
                .map(|(_, s)| s),
        );
    }
    seeds.sort_unstable();
    seeds.dedup();
    seeds
}

/// Everything a test file needs in scope.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Each `fn` inside runs [`run_cases`] over its
/// argument strategies; the `#[test]` attribute is written by the caller
/// and passed through.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fail the current case unless the two sides compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`: {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l
            )));
        }
    }};
}

/// Veto the current case (it is regenerated and does not count).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0u8..=4, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<u32>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn string_patterns(s in "[a-z]{1,6}", t in "[a-zA-Z0-9 ]{0,8}", u in "[a-z]") {
            prop_assert!((1..=6).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.len() <= 8);
            prop_assert_eq!(u.len(), 1);
        }

        #[test]
        fn assume_rejects(a in any::<u8>(), b in any::<u8>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn map_and_tuples(pair in (1u32..5, 1u32..5).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..25).contains(&pair));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::run_cases("always_fails", |_| Err(TestCaseError::fail("nope")));
    }

    #[test]
    fn corpus_lines_parse() {
        assert_eq!(
            crate::parse_corpus_line("cc codec_round_trip 0xdeadbeef"),
            Some(("codec_round_trip", 0xdead_beef))
        );
        assert_eq!(
            crate::parse_corpus_line("  cc p cafe  # shrunk by hand"),
            Some(("p", 0xcafe))
        );
        assert_eq!(crate::parse_corpus_line("# a comment"), None);
        assert_eq!(crate::parse_corpus_line(""), None);
        assert_eq!(crate::parse_corpus_line("cc missing_seed"), None);
        assert_eq!(crate::parse_corpus_line("cc p 0xnothex"), None);
        assert_eq!(crate::parse_corpus_line("dd p 0x1"), None);
    }

    #[test]
    fn corpus_discovery_filters_sorts_and_dedups() {
        let root = std::env::temp_dir().join(format!(
            "proptest_stub_corpus_{}_{}",
            std::process::id(),
            line!()
        ));
        let dir = root.join("proptest-regressions");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("a.txt"),
            "# comment\ncc wanted 0x2\ncc other 0x9\ncc wanted 0x1\n",
        )
        .unwrap();
        std::fs::write(dir.join("b.txt"), "cc wanted 0x2 # duplicate across files\n").unwrap();
        std::fs::write(dir.join("ignored.md"), "cc wanted 0xff\n").unwrap();
        assert_eq!(crate::corpus_seeds_in(&root, "wanted"), vec![1, 2]);
        assert_eq!(crate::corpus_seeds_in(&root, "missing"), Vec::<u64>::new());
        assert_eq!(
            crate::corpus_seeds_in(&root.join("nonexistent"), "wanted"),
            Vec::<u64>::new()
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}
