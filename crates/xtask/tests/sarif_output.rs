//! SARIF 2.1.0 output validation and round-trip against `--format json`.
//!
//! The container has no network and no external schema validator, so the
//! test carries its own strict JSON parser and checks the emitted
//! document against the SARIF 2.1.0 *required-property* subset by hand:
//! version/runs at the root, tool.driver.name per run, message + location
//! per result, legal suppression kinds/statuses. The finding set must
//! round-trip `--format json` exactly — same (rule, file, line,
//! fingerprint) tuples — so code-scanning uploads and the machine-read
//! gate can never disagree.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

// ---------------------------------------------------------------------------
// A deliberately strict, dependency-free JSON parser (test-only).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn req(&self, key: &str) -> &Json {
        self.get(key).unwrap_or_else(|| panic!("required property `{key}` missing in {self:?}"))
    }

    fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(a) => a,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) {
        assert!(
            self.i < self.b.len() && self.b[self.i] == c,
            "expected `{}` at byte {} (found `{}`)",
            c as char,
            self.i,
            self.b.get(self.i).map(|&b| b as char).unwrap_or('∅')
        );
        self.i += 1;
    }

    fn value(&mut self) -> Json {
        self.ws();
        match self.b[self.i] {
            b'{' => {
                self.eat(b'{');
                let mut kv = Vec::new();
                self.ws();
                if self.b[self.i] == b'}' {
                    self.eat(b'}');
                    return Json::Obj(kv);
                }
                loop {
                    self.ws();
                    let k = self.string();
                    self.ws();
                    self.eat(b':');
                    let v = self.value();
                    kv.push((k, v));
                    self.ws();
                    if self.b[self.i] == b',' {
                        self.eat(b',');
                    } else {
                        self.eat(b'}');
                        return Json::Obj(kv);
                    }
                }
            }
            b'[' => {
                self.eat(b'[');
                let mut a = Vec::new();
                self.ws();
                if self.b[self.i] == b']' {
                    self.eat(b']');
                    return Json::Arr(a);
                }
                loop {
                    a.push(self.value());
                    self.ws();
                    if self.b[self.i] == b',' {
                        self.eat(b',');
                    } else {
                        self.eat(b']');
                        return Json::Arr(a);
                    }
                }
            }
            b'"' => Json::Str(self.string()),
            b't' => {
                assert_eq!(&self.b[self.i..self.i + 4], b"true");
                self.i += 4;
                Json::Bool(true)
            }
            b'f' => {
                assert_eq!(&self.b[self.i..self.i + 5], b"false");
                self.i += 5;
                Json::Bool(false)
            }
            b'n' => {
                assert_eq!(&self.b[self.i..self.i + 4], b"null");
                self.i += 4;
                Json::Null
            }
            _ => {
                let start = self.i;
                while self.i < self.b.len()
                    && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    self.i += 1;
                }
                let text = std::str::from_utf8(&self.b[start..self.i]).expect("utf8 number");
                Json::Num(text.parse().unwrap_or_else(|_| panic!("bad number `{text}`")))
            }
        }
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut s = String::new();
        loop {
            match self.b[self.i] {
                b'"' => {
                    self.i += 1;
                    return s;
                }
                b'\\' => {
                    self.i += 1;
                    match self.b[self.i] {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .expect("utf8 escape");
                            let code = u32::from_str_radix(hex, 16).expect("hex escape");
                            s.push(char::from_u32(code).expect("scalar escape"));
                            self.i += 4;
                        }
                        other => panic!("bad escape `\\{}`", other as char),
                    }
                    self.i += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte sequences intact).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0b1100_0000) == 0b1000_0000 {
                        self.i += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.b[start..self.i]).expect("utf8"));
                }
            }
        }
    }
}

fn parse_json(text: &str) -> Json {
    let mut p = Parser { b: text.as_bytes(), i: 0 };
    let v = p.value();
    p.ws();
    assert_eq!(p.i, p.b.len(), "trailing bytes after JSON document");
    v
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn audit(extra: &[&str]) -> (Option<i32>, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xtask"));
    cmd.args(["audit", "--root"]).arg(fixture("bad"));
    cmd.args(extra);
    let out = cmd.output().expect("binary runs");
    (out.status.code(), String::from_utf8(out.stdout).expect("utf8 stdout"))
}

/// Validate `doc` against the SARIF 2.1.0 required-property subset and
/// return the `(ruleId, uri, startLine, fingerprint)` tuple per result.
fn validate_sarif(doc: &Json) -> Vec<(String, String, u64, String)> {
    assert_eq!(doc.req("version").str(), "2.1.0");
    assert!(
        doc.req("$schema").str().ends_with("sarif-schema-2.1.0.json"),
        "schema URI must pin 2.1.0"
    );
    let runs = doc.req("runs").arr();
    assert_eq!(runs.len(), 1);
    let run = &runs[0];
    let driver = run.req("tool").req("driver");
    assert!(!driver.req("name").str().is_empty());
    let rules = driver.req("rules").arr();
    for rule in rules {
        assert!(!rule.req("id").str().is_empty());
        assert!(!rule.req("shortDescription").req("text").str().is_empty());
        assert!(!rule.req("fullDescription").req("text").str().is_empty());
    }
    let mut tuples = Vec::new();
    for result in run.req("results").arr() {
        assert!(!result.req("message").req("text").str().is_empty());
        let rule_id = result.req("ruleId").str().to_string();
        let index = result.req("ruleIndex").num() as usize;
        assert_eq!(
            rules[index].req("id").str(),
            rule_id,
            "ruleIndex must point at the matching driver rule"
        );
        let locations = result.req("locations").arr();
        assert_eq!(locations.len(), 1);
        let phys = locations[0].req("physicalLocation");
        let uri = phys.req("artifactLocation").req("uri").str().to_string();
        assert_eq!(phys.req("artifactLocation").req("uriBaseId").str(), "SRCROOT");
        let line = phys.req("region").req("startLine").num();
        assert!(line >= 1.0 && line.fract() == 0.0, "startLine must be a positive integer");
        let fp = result
            .req("partialFingerprints")
            .req(xtask::sarif::FINGERPRINT_KEY)
            .str()
            .to_string();
        for sup in result.req("suppressions").arr() {
            assert!(matches!(sup.req("kind").str(), "external" | "inSource"));
            assert!(matches!(sup.req("status").str(), "accepted" | "underReview" | "rejected"));
        }
        tuples.push((rule_id, uri, line as u64, fp));
    }
    tuples
}

#[test]
fn sarif_output_is_valid_2_1_0() {
    let (code, stdout) = audit(&["--format", "sarif"]);
    assert_eq!(code, Some(1), "bad fixture still fails in SARIF mode");
    let doc = parse_json(&stdout);
    let tuples = validate_sarif(&doc);
    assert!(!tuples.is_empty(), "bad fixture must produce results");
    // Driver metadata declares every registry rule, in registry order.
    let ids: Vec<String> = doc.req("runs").arr()[0]
        .req("tool")
        .req("driver")
        .req("rules")
        .arr()
        .iter()
        .map(|r| r.req("id").str().to_string())
        .collect();
    let expect: Vec<String> =
        xtask::docs::RULE_DOCS.iter().map(|d| d.name.to_string()).collect();
    assert_eq!(ids, expect);
}

#[test]
fn sarif_round_trips_the_json_finding_set() {
    let (_, sarif_out) = audit(&["--format", "sarif"]);
    let (_, json_out) = audit(&["--format", "json"]);
    let sarif_set: BTreeSet<(String, String, u64, String)> =
        validate_sarif(&parse_json(&sarif_out)).into_iter().collect();
    let json_doc = parse_json(&json_out);
    let json_set: BTreeSet<(String, String, u64, String)> = json_doc
        .req("violations")
        .arr()
        .iter()
        .map(|v| {
            (
                v.req("rule").str().to_string(),
                v.req("file").str().to_string(),
                v.req("line").num() as u64,
                v.req("fingerprint").str().to_string(),
            )
        })
        .collect();
    assert_eq!(sarif_set, json_set, "SARIF and JSON must report identical findings");
    assert_eq!(sarif_set.len(), validate_sarif(&parse_json(&sarif_out)).len(), "no dup collapse");
}

#[test]
fn gated_sarif_marks_baselined_findings_as_suppressed() {
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("sarif_gate");
    std::fs::create_dir_all(&tmp).expect("mkdir");
    let baseline = tmp.join("baseline.json");
    let (code, _) = audit(&[
        "--baseline",
        baseline.to_str().expect("utf8 path"),
        "--update-baseline",
    ]);
    assert_eq!(code, Some(0));

    let (code, stdout) =
        audit(&["--format", "sarif", "--baseline", baseline.to_str().expect("utf8 path")]);
    assert_eq!(code, Some(0), "fully baselined run passes");
    let doc = parse_json(&stdout);
    validate_sarif(&doc);
    let results = doc.req("runs").arr()[0].req("results").arr();
    assert!(!results.is_empty());
    for result in results {
        let sups = result.req("suppressions").arr();
        assert_eq!(sups.len(), 1, "every baselined finding carries a suppression");
        assert_eq!(sups[0].req("kind").str(), "external");
        assert_eq!(sups[0].req("status").str(), "accepted");
        assert!(sups[0].get("justification").is_some());
    }
}
