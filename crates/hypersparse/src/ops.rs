//! Element-wise matrix operations.
//!
//! The paper's analytics need only a small GraphBLAS subset: element-wise
//! addition over the `(+, +)` semiring reduct (for hierarchical window
//! accumulation), the zero-norm `| |_0` (pattern extraction), scalar
//! scaling, and index permutation (which models anonymization — Table II
//! notes all network quantities are invariant under it).

use crate::csr::Csr;
use crate::value::Value;
use crate::Index;

/// Element-wise sum `C = A + B`.
///
/// Implemented as a streaming two-way merge over the sorted row lists — the
/// kernel that the hierarchical accumulator applies at every carry, so it is
/// careful to be `O(nnz(A) + nnz(B))` with no hashing.
pub fn ewise_add<V: Value>(a: &Csr<V>, b: &Csr<V>) -> Csr<V> {
    let mut triples: Vec<(Index, Index, V)> = Vec::with_capacity(a.nnz() + b.nnz());
    let (mut ia, mut ib) = (0usize, 0usize);
    let (ra, rb) = (a.row_keys(), b.row_keys());
    loop {
        let next_a = ra.get(ia).copied();
        let next_b = rb.get(ib).copied();
        match (next_a, next_b) {
            (Some(r), Some(s)) if r == s => {
                merge_rows(r, a.row_at(ia), b.row_at(ib), &mut triples);
                ia += 1;
                ib += 1;
            }
            (Some(r), Some(s)) if r < s => {
                copy_row(r, a.row_at(ia), &mut triples);
                ia += 1;
            }
            (Some(_), Some(s)) => {
                copy_row(s, b.row_at(ib), &mut triples);
                ib += 1;
            }
            (Some(r), None) => {
                copy_row(r, a.row_at(ia), &mut triples);
                ia += 1;
            }
            (None, Some(s)) => {
                copy_row(s, b.row_at(ib), &mut triples);
                ib += 1;
            }
            // Both sides exhausted: the merge is complete.
            (None, None) => break,
        }
    }
    Csr::from_sorted_dedup_triples(triples)
}

fn copy_row<V: Value>(r: Index, (cols, vals): (&[Index], &[V]), out: &mut Vec<(Index, Index, V)>) {
    for (&c, &v) in cols.iter().zip(vals) {
        out.push((r, c, v));
    }
}

fn merge_rows<V: Value>(
    r: Index,
    (ca, va): (&[Index], &[V]),
    (cb, vb): (&[Index], &[V]),
    out: &mut Vec<(Index, Index, V)>,
) {
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        match (ca.get(i), cb.get(j)) {
            (Some(&c), Some(&d)) if c == d => {
                let mut v = va[i];
                v += vb[j];
                if !v.is_zero() {
                    out.push((r, c, v));
                }
                i += 1;
                j += 1;
            }
            (Some(&c), Some(&d)) if c < d => {
                out.push((r, c, va[i]));
                i += 1;
            }
            (Some(_), Some(&d)) => {
                out.push((r, d, vb[j]));
                j += 1;
            }
            (Some(&c), None) => {
                out.push((r, c, va[i]));
                i += 1;
            }
            (None, Some(&d)) => {
                out.push((r, d, vb[j]));
                j += 1;
            }
            // Both sides exhausted: the merge is complete.
            (None, None) => break,
        }
    }
}

/// Sum many matrices with a parallel pairwise reduction tree (rayon).
///
/// Equivalent to folding [`ewise_add`] left to right (addition is
/// associative and commutative), but `O(log n)` depth: the shape used to
/// re-assemble a window from its archived leaves.
pub fn merge_all<V: Value>(mut parts: Vec<Csr<V>>) -> Csr<V> {
    use rayon::prelude::*;
    let _span = obscor_obs::span("hypersparse.merge_all");
    obscor_obs::counter("hypersparse.merge_all.parts_total").add(parts.len() as u64);
    let pair_merges = obscor_obs::counter("hypersparse.merge_all.pair_merges_total");
    while parts.len() > 1 {
        // An odd tail is popped off and re-appended after the round, so it
        // is moved — never cloned — and rejoins the reduction next round.
        let tail = if parts.len() % 2 == 1 { parts.pop() } else { None };
        let mut merged: Vec<Csr<V>> = parts
            .par_chunks(2)
            .map(|pair| match pair {
                [a, b] => ewise_add(a, b),
                // len is even here and par_chunks(2) never yields empty
                // chunks, so only full pairs occur.
                _ => Csr::empty(),
            })
            .collect();
        pair_merges.add(merged.len() as u64);
        merged.extend(tail);
        parts = merged;
    }
    parts.pop().unwrap_or_else(Csr::empty)
}

/// The zero-norm `|A|_0`: every stored nonzero becomes `1`. This is the
/// operator behind every "unique ..." quantity in Table II.
pub fn zero_norm<V: Value>(a: &Csr<V>) -> Csr<V> {
    let triples: Vec<(Index, Index, V)> = a.iter().map(|(r, c, _)| (r, c, V::one())).collect();
    Csr::from_sorted_dedup_triples(triples)
}

/// Scale every stored value: `C(i,j) = f(A(i,j))`, dropping entries that `f`
/// maps to zero.
pub fn map_values<V: Value, W: Value, F: Fn(V) -> W>(a: &Csr<V>, f: F) -> Csr<W> {
    let triples: Vec<(Index, Index, W)> = a
        .iter()
        .filter_map(|(r, c, v)| {
            let w = f(v);
            if w.is_zero() {
                None
            } else {
                Some((r, c, w))
            }
        })
        .collect();
    Csr::from_sorted_dedup_triples(triples)
}

/// Apply an index bijection to both axes: `C(p(i), p(j)) = A(i, j)`.
///
/// Anonymization (CryptoPAN or hashing) is exactly such a permutation of the
/// IPv4 index space; every Table II quantity must be invariant under this
/// map, which the property tests verify.
pub fn permute<V: Value, P: Fn(Index) -> Index>(a: &Csr<V>, p: P) -> Csr<V> {
    let mut coo = crate::Coo::with_capacity(a.nnz());
    for (r, c, v) in a.iter() {
        coo.push(p(r), p(c), v);
    }
    coo.into_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn m(triples: &[(Index, Index, u64)]) -> Csr<u64> {
        Coo::from_triples(triples.iter().copied()).into_csr()
    }

    #[test]
    fn ewise_add_disjoint_rows() {
        let a = m(&[(1, 1, 1)]);
        let b = m(&[(2, 2, 2)]);
        let c = ewise_add(&a, &b);
        assert_eq!(c.get(1, 1), Some(1));
        assert_eq!(c.get(2, 2), Some(2));
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn ewise_add_overlapping_entries_sum() {
        let a = m(&[(1, 1, 1), (1, 2, 5)]);
        let b = m(&[(1, 1, 3), (1, 3, 7)]);
        let c = ewise_add(&a, &b);
        assert_eq!(c.get(1, 1), Some(4));
        assert_eq!(c.get(1, 2), Some(5));
        assert_eq!(c.get(1, 3), Some(7));
        c.check_invariants().unwrap();
    }

    #[test]
    fn ewise_add_with_empty_is_identity() {
        let a = m(&[(4, 4, 4), (9, 1, 2)]);
        let e = Csr::empty();
        assert_eq!(ewise_add(&a, &e), a);
        assert_eq!(ewise_add(&e, &a), a);
    }

    #[test]
    fn ewise_add_is_commutative() {
        let a = m(&[(1, 1, 1), (3, 2, 9), (7, 7, 7)]);
        let b = m(&[(1, 1, 2), (3, 5, 1)]);
        assert_eq!(ewise_add(&a, &b), ewise_add(&b, &a));
    }

    #[test]
    fn cancellation_drops_entries() {
        let a = Coo::from_triples(vec![(1u32, 1u32, 2.0f64)]).into_csr();
        let b = Coo::from_triples(vec![(1u32, 1u32, -2.0f64)]).into_csr();
        let c = ewise_add(&a, &b);
        assert!(c.is_empty());
        c.check_invariants().unwrap();
    }

    #[test]
    fn merge_all_equals_sequential_fold() {
        let parts: Vec<Csr<u64>> = (0..7u32)
            .map(|k| m(&[(k, k, 1), (0, 0, 1), (k % 3, 5, 2)]))
            .collect();
        let folded = parts.iter().skip(1).fold(parts[0].clone(), |acc, x| ewise_add(&acc, x));
        assert_eq!(merge_all(parts), folded);
    }

    #[test]
    fn merge_all_matches_left_fold_for_all_small_part_counts() {
        // 1..=9 covers even, odd, power-of-two, and repeated-odd-tail
        // rounds (9 -> 5 -> 3 -> 2 -> 1); each part is distinct so a
        // dropped or double-counted tail changes the result.
        for n in 1..=9u32 {
            let parts: Vec<Csr<u64>> = (0..n)
                .map(|k| m(&[(k, k, 1), (0, 0, 1), (k % 3, 5, 2), (7, k % 4, u64::from(k) + 1)]))
                .collect();
            let folded =
                parts.iter().skip(1).fold(parts[0].clone(), |acc, x| ewise_add(&acc, x));
            assert_eq!(merge_all(parts), folded, "n = {n}");
        }
    }

    #[test]
    fn merge_all_edge_cases() {
        assert!(merge_all(Vec::<Csr<u64>>::new()).is_empty());
        let single = m(&[(1, 2, 3)]);
        assert_eq!(merge_all(vec![single.clone()]), single);
    }

    #[test]
    fn zero_norm_patterns() {
        let a = m(&[(1, 1, 100), (2, 3, 42)]);
        let z = zero_norm(&a);
        assert_eq!(z.get(1, 1), Some(1));
        assert_eq!(z.get(2, 3), Some(1));
        assert_eq!(z.nnz(), a.nnz());
    }

    #[test]
    fn zero_norm_is_idempotent() {
        let a = m(&[(1, 1, 100), (2, 3, 42), (9, 0, 7)]);
        let z = zero_norm(&a);
        assert_eq!(zero_norm(&z), z);
    }

    #[test]
    fn map_values_drops_zeros() {
        let a = m(&[(1, 1, 1), (2, 2, 10)]);
        let c = map_values(&a, |v| if v > 5 { v } else { 0 });
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(2, 2), Some(10));
    }

    #[test]
    fn permute_preserves_values() {
        let a = m(&[(1, 2, 3), (4, 5, 6)]);
        let p = permute(&a, |i| i.wrapping_add(100));
        assert_eq!(p.get(101, 102), Some(3));
        assert_eq!(p.get(104, 105), Some(6));
        assert_eq!(p.nnz(), a.nnz());
    }

    #[test]
    fn permute_identity_is_noop() {
        let a = m(&[(1, 2, 3), (4, 5, 6), (0, 0, 1)]);
        assert_eq!(permute(&a, |i| i), a);
    }
}
