//! `cargo xtask audit` — the workspace's static-analysis gate.
//!
//! A dependency-free source-scanning lint pass that enforces the project's
//! correctness policies (see `DESIGN.md` § Correctness tooling):
//!
//! 1. **`index-cast`** — no truncating `as u32`/`as usize`/`as Index` casts
//!    on expressions with wide-typed sources, anywhere in library code.
//! 2. **`panic-path`** — no `unwrap`/`expect`/`panic!` in the library code
//!    of the `core`, `hypersparse`, `assoc`, `anonymize`, `telescope`,
//!    and `pcap` crates.
//! 3. **`float-eq`** — no floating-point `==`/`!=` in `stats` or
//!    `core::fitscan`.
//! 4. **`invariant-coverage`** — every public constructor of a
//!    `hypersparse`/`assoc` type must be exercised by a test that calls
//!    `check_invariants`.
//! 5. **`instant-timing`** — no ad-hoc `Instant::now()`/`SystemTime::now()`
//!    timing in library code outside the `obs` crate; timing goes through
//!    `obscor_obs::span` so it lands in the metrics registry.
//! 6. **`key-pack`** — no ad-hoc `as u64` + `<< 32` key packing in
//!    `hypersparse` library code outside `keypack.rs`; the packed
//!    `(row << 32) | col` layout must be built through
//!    `keypack::pack_key`/`unpack_key` only.
//! 7. **`map-iter-order`** — `HashMap`/`HashSet` iteration order must not
//!    flow into ordered output (Vec pushes, string building, or — via the
//!    cross-file symbol index, one call hop — the `obscor_obs::json`
//!    codec).
//! 8. **`nonassoc-reduce`** — no rayon `reduce`/`fold`/`sum`/`product`
//!    over float accumulators outside blessed tree-reduction helpers.
//! 9. **`atomic-ordering`** — every `Ordering::*` site carries an
//!    `// ordering:` justification; stricter-than-Relaxed notes must name
//!    the happens-before edge.
//! 10. **`shared-static-mut`** — no process-global mutable statics outside
//!     the `obs` registry and the declared metric-enable flags.
//! 11. **`allow-justification`** — every `audit:allow(...)` marker carries
//!     a non-empty justification.
//! 12. **`nondet-reach`** — nondeterminism sources (hash-ordered
//!     iteration, wall-clock reads, thread identity) in any function that
//!     *transitively* reaches the `obscor_obs::json` codec or the
//!     hypersparse archive codec, at any call depth.
//! 13. **`blocking-in-par`** — blocking operations (`.lock()`, `.recv()`,
//!     `.join()`, ...) directly or transitively reachable from inside a
//!     rayon parallel-closure extent.
//! 14. **`lock-order`** — cycles in the workspace lock-acquisition graph
//!     (lock A held while acquiring B, and elsewhere B while acquiring A),
//!     including holds that cross function boundaries.
//! 15. **`panic-in-drop`** — panic-path sites directly or transitively
//!     reachable from `Drop::drop` bodies.
//!
//! The engine lexes each file into spanned tokens ([`lex`]), parses a
//! brace-tree of items ([`parse`]), and builds a workspace call graph
//! with memoized reachability closures ([`index`]); rules ([`rules`])
//! walk tokens, never raw strings. Rule documentation lives in a single
//! registry ([`docs`]) that `--explain` and the README table share.
//!
//! Violations print as `file:line: [rule] message` (or as JSON with
//! `--format json`) and the process exits non-zero. Individual sites are
//! suppressed with `// audit:allow(<rule>) — justification` on the same or
//! the preceding line; pre-existing debt is frozen in a ratchet baseline
//! ([`baseline`], `--baseline audit-baseline.json`) keyed by stable
//! line-number-free fingerprints.

pub mod baseline;
pub mod docs;
pub mod index;
pub mod sarif;
pub mod lex;
pub mod parse;
pub mod rules;
pub mod scan;

use std::io;
use std::path::{Path, PathBuf};

use rules::{Diagnostic, INVARIANT_CRATES, PANIC_FREE_CRATES};
use scan::SourceFile;

/// Result of auditing a workspace tree.
pub struct AuditReport {
    /// Every finding, sorted by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// The workspace call graph the interprocedural rules ran over
    /// (exported by `--call-graph`).
    pub call_graph: index::CallGraph,
}

impl AuditReport {
    /// True when the audit found nothing.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render as a JSON object (machine-readable `--format json` mode).
    pub fn to_json(&self) -> String {
        self.to_json_gated(None)
    }

    /// Render as JSON; when gated against a baseline, `ok` reflects *new*
    /// findings only and each violation carries a `baselined` flag.
    pub fn to_json_gated(&self, gate: Option<&baseline::Gate>) -> String {
        let ok = match gate {
            Some(g) => g.new.is_empty(),
            None => self.is_clean(),
        };
        let mut s = String::from("{");
        s.push_str(&format!("\"ok\":{ok},\"files_scanned\":{},", self.files_scanned));
        if let Some(g) = gate {
            s.push_str(&format!(
                "\"new\":{},\"baselined\":{},\"stale\":{},",
                g.new.len(),
                g.baselined,
                g.stale.len()
            ));
        }
        s.push_str("\"violations\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let baselined = gate.map(|g| !g.new.contains(&i));
            s.push_str(&format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"fingerprint\":\"{}\",",
                json_escape(d.rule),
                json_escape(&d.file),
                d.line,
                json_escape(&d.fingerprint),
            ));
            if let Some(b) = baselined {
                s.push_str(&format!("\"baselined\":{b},"));
            }
            s.push_str(&format!("\"message\":\"{}\"}}", json_escape(&d.message)));
        }
        s.push_str("]}");
        s
    }
}

/// Escape a string for embedding in a JSON literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Audit the workspace rooted at `root`.
///
/// The tree is expected to follow this repository's layout: member crates
/// under `crates/<name>/` with library code in `src/` and integration tests
/// in `tests/`, plus an optional root package (`src/`, `tests/`).
/// `vendor/` and `target/` are never scanned, and the audit fixtures under
/// `crates/xtask/tests/` are reached only when `root` points *at* them.
pub fn audit(root: &Path) -> io::Result<AuditReport> {
    if !root.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("audit root `{}` is not a directory", root.display()),
        ));
    }
    let mut lib_files: Vec<(String, SourceFile)> = Vec::new(); // (crate, file)
    let mut test_files: Vec<SourceFile> = Vec::new();

    // Root package.
    collect_rs(&root.join("src"), root, &mut |p, rel| {
        lib_files.push(("root".into(), SourceFile::load(p, rel)?));
        Ok(())
    })?;
    collect_rs(&root.join("tests"), root, &mut |p, rel| {
        test_files.push(SourceFile::load(p, rel)?);
        Ok(())
    })?;

    // Member crates.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(&crates_dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for dir in entries.into_iter().filter(|p| p.is_dir()) {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            collect_rs(&dir.join("src"), root, &mut |p, rel| {
                lib_files.push((name.clone(), SourceFile::load(p, rel)?));
                Ok(())
            })?;
            // Fixture trees under the xtask crate hold *deliberate*
            // violations for the audit's own tests; never treat them as
            // workspace test corpus.
            if name != "xtask" {
                collect_rs(&dir.join("tests"), root, &mut |p, rel| {
                    test_files.push(SourceFile::load(p, rel)?);
                    Ok(())
                })?;
            }
        }
    }

    let files_scanned = lib_files.len() + test_files.len();
    let mut diagnostics = Vec::new();

    // Workspace call graph over all library sources, with memoized
    // reachability closures shared by the interprocedural rules; the
    // one-hop symbol index `map-iter-order` consumes is derived from it.
    let lib_refs: Vec<&SourceFile> = lib_files.iter().map(|(_, f)| f).collect();
    let analyses = index::Analyses::new(index::build_graph(&lib_refs));
    let symbol_index = index::SymbolIndex::from_graph(&analyses.graph);

    // Per-file rules. `file_id` is the node-graph file index (lib_refs
    // order == lib_files order).
    for (file_id, (crate_name, file)) in lib_files.iter().enumerate() {
        diagnostics.extend(rules::rule_index_cast(file));
        if PANIC_FREE_CRATES.contains(&crate_name.as_str()) {
            diagnostics.extend(rules::rule_panic_path(file));
        }
        if crate_name == "stats" || file.rel.ends_with("core/src/fitscan.rs") {
            diagnostics.extend(rules::rule_float_eq(file));
        }
        // `obs` is the one crate allowed to read the wall clock: its
        // SpanTimer is where every other crate's timing must flow.
        if crate_name != "obs" {
            diagnostics.extend(rules::rule_instant_timing(file));
        }
        // The packed (row << 32) | col key layout is owned by
        // hypersparse::keypack; the rule exempts keypack.rs itself.
        if crate_name == "hypersparse" {
            diagnostics.extend(rules::rule_key_pack(file));
        }
        // The u64 word/bit membership layout (word = k >> 6, bit = k & 63)
        // is owned by assoc::bitset; the rule exempts that module itself.
        diagnostics.extend(rules::rule_word_bit_manip(file));
        diagnostics.extend(rules::rule_map_iter_order(file, &symbol_index));
        diagnostics.extend(rules::rule_nonassoc_reduce(file));
        diagnostics.extend(rules::rule_atomic_ordering(file));
        // `obs` hosts the sanctioned process-global state (the metrics
        // registry); everywhere else globals must be declared or routed.
        if crate_name != "obs" {
            diagnostics.extend(rules::rule_shared_static_mut(file));
        }
        diagnostics.extend(rules::rule_allow_justification(file));
        diagnostics.extend(rules::rule_nondet_reach(file, file_id, &analyses, crate_name));
        diagnostics.extend(rules::rule_blocking_in_par(file, file_id, &analyses));
        diagnostics.extend(rules::rule_panic_in_drop(file, file_id, &analyses));
    }

    // Lock-order cycles are a whole-workspace property: fold every
    // function's held-while-acquiring pairs into one lock graph.
    diagnostics.extend(rules::rule_lock_order(&lib_refs, &analyses));

    // Invariant coverage: corpus is every test source (integration tests
    // plus in-crate `#[cfg(test)]` regions) that mentions check_invariants.
    let mut corpus = String::new();
    for f in &test_files {
        if f.code.contains("check_invariants") {
            corpus.push_str(&f.code);
            corpus.push('\n');
        }
    }
    for (_, f) in &lib_files {
        if f.code.contains("check_invariants") {
            // Contribute only the test-marked lines of library files.
            for (no, line) in f.code_lines() {
                if f.is_test_line(no) {
                    corpus.push_str(line);
                    corpus.push('\n');
                }
            }
        }
    }
    for crate_name in INVARIANT_CRATES {
        let crate_files: Vec<&SourceFile> = lib_files
            .iter()
            .filter(|(n, _)| n == crate_name)
            .map(|(_, f)| f)
            .collect();
        let owned: Vec<SourceFile> = crate_files
            .iter()
            .map(|f| SourceFile::from_source(f.path.clone(), f.rel.clone(), f.raw.clone()))
            .collect();
        diagnostics.extend(rules::rule_invariant_coverage(&owned, &corpus));
    }

    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    // Stable, line-number-free fingerprints for the ratchet baseline.
    let sources: std::collections::HashMap<&str, &SourceFile> =
        lib_files.iter().map(|(_, f)| (f.rel.as_str(), f)).collect();
    baseline::assign_fingerprints(&mut diagnostics, &sources);

    Ok(AuditReport { diagnostics, files_scanned, call_graph: analyses.graph })
}

/// Recursively visit every `.rs` file under `dir`, reporting paths relative
/// to `root`. Missing directories are fine (not every crate has `tests/`).
fn collect_rs(
    dir: &Path,
    root: &Path,
    visit: &mut dyn FnMut(PathBuf, String) -> io::Result<()>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, visit)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            visit(path, rel)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn report_json_shape() {
        let report = AuditReport {
            diagnostics: vec![Diagnostic {
                rule: "panic-path",
                file: "crates/core/src/lib.rs".into(),
                line: 7,
                message: "`unwrap()` in panic-free library code".into(),
                fingerprint: "deadbeefdeadbeef".into(),
            }],
            files_scanned: 3,
            call_graph: Default::default(),
        };
        let json = report.to_json();
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\"line\":7"));
        assert!(json.contains("\"fingerprint\":\"deadbeefdeadbeef\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn gated_json_reports_new_vs_baselined() {
        let report = AuditReport {
            diagnostics: vec![
                Diagnostic {
                    rule: "panic-path",
                    file: "a.rs".into(),
                    line: 1,
                    message: "m".into(),
                    fingerprint: "aaaaaaaaaaaaaaaa".into(),
                },
                Diagnostic {
                    rule: "float-eq",
                    file: "b.rs".into(),
                    line: 2,
                    message: "m".into(),
                    fingerprint: "bbbbbbbbbbbbbbbb".into(),
                },
            ],
            files_scanned: 2,
            call_graph: Default::default(),
        };
        let b = baseline::Baseline {
            entries: vec![baseline::BaselineEntry {
                fingerprint: "aaaaaaaaaaaaaaaa".into(),
                rule: "panic-path".into(),
                file: "a.rs".into(),
                why: "test".into(),
            }],
        };
        let g = baseline::gate(&report.diagnostics, &b);
        let json = report.to_json_gated(Some(&g));
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\"new\":1"));
        assert!(json.contains("\"baselined\":1,"));
        assert!(json.contains("\"baselined\":true"));
        assert!(json.contains("\"baselined\":false"));
    }
}
