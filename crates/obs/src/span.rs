//! RAII timing spans.
//!
//! A [`SpanTimer`] measures the wall-clock time between its creation and its
//! drop and records the duration into the registry: one observation in the
//! histogram `span.<name>.ns` and one increment of the counter
//! `span.<name>.calls_total`. This module is the single sanctioned home of
//! `Instant::now()` in the workspace — the `instant-timing` audit rule
//! rejects ad-hoc timing everywhere else so that all measurements flow
//! through the registry and show up in the metrics snapshot.

use std::time::Instant;

use crate::registry::{global, Registry};

/// Guard that records elapsed wall-clock time into a registry on drop.
///
/// ```
/// {
///     let _span = obscor_obs::span("demo.work");
///     // ... timed work ...
/// } // drop records span.demo.work.ns and span.demo.work.calls_total
/// ```
#[derive(Debug)]
pub struct SpanTimer {
    registry: &'static Registry,
    name: String,
    started: Instant,
}

impl SpanTimer {
    /// Start timing `name` against the global registry.
    pub fn start(name: &str) -> Self {
        Self::start_in(global(), name)
    }

    /// Start timing `name` against a specific registry (tests).
    pub fn start_in(registry: &'static Registry, name: &str) -> Self {
        Self { registry, name: name.to_owned(), started: Instant::now() }
    }

    /// The span name this timer records under.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let elapsed_ns = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.registry.histogram(&format!("span.{}.ns", self.name)).observe(elapsed_ns);
        self.registry.counter(&format!("span.{}.calls_total", self.name)).inc();
    }
}

/// Run `f` and return its result together with the elapsed wall-clock
/// nanoseconds, without touching the registry.
///
/// This is the sanctioned stopwatch for code that needs a raw duration to
/// *act on* (e.g. the hypersparse crossover calibration picks a kernel from
/// measured timings) rather than to report. Reporting still goes through
/// [`SpanTimer`]; `time_fn` exists so callers outside `obs` never need
/// `Instant::now()` directly, keeping the `instant-timing` audit rule
/// airtight.
pub fn time_fn<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let started = Instant::now();
    let out = f();
    let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (out, elapsed_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_histogram_and_counter() {
        {
            let _s = SpanTimer::start("obs.test.drop_records");
        }
        {
            let _s = SpanTimer::start("obs.test.drop_records");
        }
        let snap = global().snapshot();
        assert_eq!(snap.counters["span.obs.test.drop_records.calls_total"], 2);
        let h = &snap.histograms["span.obs.test.drop_records.ns"];
        assert_eq!(h.count, 2);
    }

    #[test]
    fn name_accessor() {
        let s = SpanTimer::start("obs.test.name_accessor");
        assert_eq!(s.name(), "obs.test.name_accessor");
    }

    #[test]
    fn time_fn_returns_result_and_duration() {
        let (value, ns) = time_fn(|| (0..1000u64).sum::<u64>());
        assert_eq!(value, 499_500);
        assert!(ns > 0);
        // No registry traffic: time_fn is a raw stopwatch.
        let snap = global().snapshot();
        assert!(!snap.histograms.keys().any(|k| k.contains("time_fn")));
    }
}
