//! Concurrent streaming matrix construction.
//!
//! The telescope ingest path of the paper's infrastructure accepts packets
//! from many capture threads at once. [`StreamingBuilder`] reproduces that
//! architecture in miniature: producers hand batches of triples to a pool of
//! worker threads over a bounded crossbeam channel; each worker owns a
//! private [`HierarchicalAccumulator`]; on `finish` the per-worker matrices
//! are folded with element-wise addition. Because matrix addition is
//! commutative and associative, the result is identical to a serial build no
//! matter how batches interleave — a property the tests exercise.

use crate::csr::Csr;
use crate::hier::HierarchicalAccumulator;
use crate::ops::ewise_add;
use crate::value::Value;
use crate::Index;
use crossbeam::channel::{bounded, Sender};
use std::thread::JoinHandle;

/// A batch of `(row, col, value)` triples handed to the worker pool.
pub type Batch<V> = Vec<(Index, Index, V)>;

/// Multi-producer concurrent builder for hypersparse matrices.
pub struct StreamingBuilder<V: Value> {
    senders: Vec<Sender<Batch<V>>>,
    handles: Vec<JoinHandle<Csr<V>>>,
    next_worker: usize,
    sent: u64,
}

impl<V: Value> StreamingBuilder<V> {
    /// Spawn `n_workers` accumulator threads, each compacting in leaves of
    /// `leaf_capacity` triples. `channel_depth` bounds the number of batches
    /// buffered per worker before senders block (backpressure).
    ///
    /// # Panics
    /// Panics if `n_workers == 0` or `leaf_capacity == 0`.
    pub fn new(n_workers: usize, leaf_capacity: usize, channel_depth: usize) -> Self {
        assert!(n_workers > 0, "need at least one worker");
        let mut senders = Vec::with_capacity(n_workers);
        let mut handles = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let (tx, rx) = bounded::<Batch<V>>(channel_depth.max(1));
            senders.push(tx);
            handles.push(std::thread::spawn(move || {
                let mut acc = HierarchicalAccumulator::with_leaf_capacity(leaf_capacity);
                for batch in rx.iter() {
                    acc.extend(batch);
                }
                acc.finalize()
            }));
        }
        Self { senders, handles, next_worker: 0, sent: 0 }
    }

    /// Internal consistency check: one live channel per worker thread and
    /// a round-robin cursor inside the pool. (The built matrix is checked
    /// separately — [`Csr::check_invariants`] on the result of
    /// [`StreamingBuilder::finish`].) Used by tests and the pipeline's
    /// `strict-invariants` stage checks.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.senders.is_empty() {
            return Err("no workers".into());
        }
        if self.senders.len() != self.handles.len() {
            return Err("senders/handles length mismatch".into());
        }
        if self.next_worker >= self.senders.len() {
            return Err("round-robin cursor out of range".into());
        }
        Ok(())
    }

    /// Hand one batch to the pool (round-robin sharding).
    ///
    /// # Panics
    /// Panics if a worker thread has died (its receiver is gone).
    pub fn send_batch(&mut self, batch: Batch<V>) {
        self.sent += batch.len() as u64;
        self.senders[self.next_worker]
            .send(batch)
            // audit:allow(panic-path) — documented `# Panics` contract: a dead worker is unrecoverable
            .expect("streaming worker thread terminated early");
        self.next_worker = (self.next_worker + 1) % self.senders.len();
    }

    /// Total triples sent so far.
    pub fn triples_sent(&self) -> u64 {
        self.sent
    }

    /// Close the channels, join the workers, and fold their matrices.
    pub fn finish(self) -> Csr<V> {
        drop(self.senders);
        let mut acc: Option<Csr<V>> = None;
        for handle in self.handles {
            // audit:allow(panic-path) — propagating a worker panic to the caller is the documented contract
            let part = handle.join().expect("streaming worker panicked");
            acc = Some(match acc {
                None => part,
                Some(a) => ewise_add(&a, &part),
            });
        }
        acc.unwrap_or_else(Csr::empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hier::accumulate_flat;

    fn triples(n: usize, seed: u64) -> Vec<(Index, Index, u64)> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (((state >> 33) % 300) as Index, ((state >> 11) % 300) as Index, 1u64)
            })
            .collect()
    }

    #[test]
    fn concurrent_build_matches_flat() {
        let t = triples(50_000, 42);
        let mut b = StreamingBuilder::new(4, 512, 8);
        for chunk in t.chunks(777) {
            b.send_batch(chunk.to_vec());
        }
        assert_eq!(b.triples_sent(), 50_000);
        assert_eq!(b.finish(), accumulate_flat(t));
    }

    #[test]
    fn single_worker_matches_flat() {
        let t = triples(5_000, 7);
        let mut b = StreamingBuilder::new(1, 64, 2);
        for chunk in t.chunks(100) {
            b.send_batch(chunk.to_vec());
        }
        assert_eq!(b.finish(), accumulate_flat(t));
    }

    #[test]
    fn no_batches_yields_empty() {
        let b = StreamingBuilder::<u64>::new(3, 128, 4);
        assert!(b.finish().is_empty());
    }

    #[test]
    fn empty_batches_are_harmless() {
        let mut b = StreamingBuilder::<u64>::new(2, 128, 4);
        b.send_batch(vec![]);
        b.send_batch(vec![(1, 1, 1)]);
        b.send_batch(vec![]);
        let m = b.finish();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = StreamingBuilder::<u64>::new(0, 128, 4);
    }
}
