//! Temporal correlation of Internet observatories and outposts.
//!
//! This crate is the paper's primary contribution: the analysis pipeline
//! that correlates source observations from a darknet telescope
//! (observatory) with those from a honeyfarm (outpost), reproducing every
//! table and figure of Kepner et al., *Temporal Correlation of Internet
//! Observatories and Outposts* (IPDPS Workshops, 2022):
//!
//! | Artifact | Module | Content |
//! |---|---|---|
//! | Table I  | [`pipeline`] | data-set inventory (windows, months, source counts) |
//! | Table II | [`pipeline`] | network quantities of each window's traffic matrix |
//! | Fig 3    | [`distribution`] | log2-binned source-packet distributions + Zipf–Mandelbrot fits |
//! | Fig 4    | [`peak`] | coeval telescope∩honeyfarm fraction vs. source packets |
//! | Fig 5/6  | [`temporal`], [`fitscan`] | overlap vs. month lag, per degree bin, with Gaussian/Cauchy/modified-Cauchy fits |
//! | Fig 7    | [`fitscan`] | best-fit modified-Cauchy α vs. d |
//! | Fig 8    | [`fitscan`] | one-month drop `1/(β+1)` vs. d |
//!
//! The full workflow (see [`pipeline::run`]) follows the paper's §I-III:
//! capture constant-packet windows, build CryptoPAN-anonymized
//! hierarchical GraphBLAS matrices, reduce to source packet counts,
//! deanonymize the reduced source list through the trusted-sharing
//! send-back workflow, convert to D4M key sets, and intersect with the
//! honeyfarm's monthly D4M arrays per log2 degree bin and month lag.
//!
//! ```no_run
//! use obscor_core::{pipeline, AnalysisConfig};
//! use obscor_netmodel::Scenario;
//!
//! let scenario = Scenario::paper_scaled(1 << 20, 42);
//! let analysis = pipeline::run(&scenario, &AnalysisConfig::default());
//! println!("{}", analysis.render_all());
//! ```

pub mod algebra;
pub mod classes;
pub mod config;
pub mod degree;
pub mod distribution;
pub mod fitscan;
pub mod forecast;
pub mod peak;
pub mod pipeline;
pub mod report;
pub mod scaling;
pub mod subnets;
pub mod temporal;
pub mod validate;

pub use config::{AnalysisConfig, ArchiveConfig, SpillSettings};
pub use degree::WindowDegrees;
pub use pipeline::{run, PaperAnalysis};
