//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, dependency-free implementation of the
//! exact API surface it uses: [`SeedableRng::seed_from_u64`], the [`Rng`]
//! core trait, the [`RngExt`] extension methods (`random`, `random_range`,
//! `random_bool`), and [`rngs::StdRng`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically strong enough for the synthetic-traffic and
//! bootstrap workloads in this workspace. It is **not** the same stream as
//! upstream `rand`'s `StdRng`, so seeds are stable only within this
//! repository.

#![forbid(unsafe_code)]

/// A source of random bits.
///
/// Only [`next_u64`](Rng::next_u64) is required; everything user-facing
/// lives on [`RngExt`] so that `R: Rng + ?Sized` bounds stay object-safe
/// friendly and mirror upstream's split between core and extension traits.
pub trait Rng {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits (upper half of [`next_u64`](Rng::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the `StandardUniform`
/// distribution in upstream terms).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`RngExt::random_range`] accepts, producing values of `T`.
///
/// `T` is a type parameter (not an associated type) so that integer
/// literals in a range infer their type from the call site's expected
/// output, exactly as with upstream `rand`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let v = reduce_u64(rng.next_u64(), span);
                ((self.start as $wide as u64).wrapping_add(v)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = reduce_u64(rng.next_u64(), span + 1);
                ((start as $wide as u64).wrapping_add(v)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Debiased reduction of a raw 64-bit draw onto `[0, span)` (`span > 0`).
fn reduce_u64(raw: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening multiply: maps raw uniformly onto [0, span) with bias at most
    // 2^-64 per bucket — immaterial for the simulation workloads here.
    (((raw as u128) * (span as u128)) >> 64) as u64
}

/// User-facing sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Sample a value of type `T` from its standard uniform distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs that can be constructed from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0u8..=32);
            assert!(w <= 32);
            let x = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
