//! Generative model of the Internet background-radiation source population.
//!
//! The paper's raw data — CAIDA telescope packets and the GreyNoise
//! database — cannot be redistributed, so this crate provides the
//! *world* that the two synthetic observatories in `obscor-telescope` and
//! `obscor-honeyfarm` observe. The model encodes exactly the generative
//! structure the paper infers from its measurements, and nothing more;
//! every analysis result must be *recovered* from raw synthetic packets by
//! the measurement pipeline, not read out of the generator.
//!
//! Three mechanisms:
//!
//! 1. **Zipf–Mandelbrot brightness** ([`population`]): each source has an
//!    expected per-window packet count ("brightness") drawn from
//!    `p(d) ∝ 1/(d+δ)^α`, the law the paper fits to CAIDA source packets
//!    (Fig 3).
//! 2. **Drifting-beam churn** ([`activity`]): each source is active on a
//!    time interval with a Pareto-distributed lifetime whose scale grows
//!    with brightness. Stationary heavy-tailed residual lifetimes produce
//!    overlap kernels of modified-Cauchy shape — the paper's conclusion
//!    that its observations are "consistent with a correlated high
//!    frequency beam of sources that drifts on a time scale of a month".
//! 3. **Class-structured emission** ([`class`], [`traffic`]): sources are
//!    scanners, botnet nodes, backscatter reflectors, or misconfigured
//!    hosts, each with its own protocol/port behaviour; packets are drawn
//!    from the active population by alias sampling with exponential
//!    inter-arrivals.
//!
//! [`scenario`] assembles the paper-scaled experiment: the Table I month
//! grid (2020-02 .. 2021-04), five CAIDA window instants, and calibrated
//! population parameters at a configurable `N_V`.

pub mod activity;
pub mod class;
pub mod hybrid;
pub mod population;
pub mod scenario;
pub mod time;
pub mod traffic;

pub use activity::{ActivityInterval, ChurnModel};
pub use class::SourceClass;
pub use hybrid::HybridPowerLaw;
pub use population::{PopulationConfig, Source, SourcePopulation};
pub use scenario::Scenario;
pub use time::MonthGrid;
pub use traffic::{PacketStream, TrafficConfig};
