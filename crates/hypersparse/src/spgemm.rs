//! Sparse matrix products over the counting semiring.
//!
//! D4M methodology computes correlations *as matrix multiplies*: if `A`
//! is an observation matrix (rows = windows/months, columns = sources,
//! pattern-valued), then `C = A B'` over the `(+, &)` semiring counts,
//! for every row pair, the number of shared columns — exactly the
//! source-set intersections behind Figs 4-6. This module provides that
//! kernel two ways:
//!
//! * [`cooccurrence`] — row-pair merge-intersection, `O(r_A · r_B)` row
//!   pairs with linear merges; ideal for skinny observation matrices
//!   (15 months × millions of sources),
//! * [`spgemm_pattern`] — general hash-accumulated SpGEMM over the
//!   counting semiring (`C = A B` with `C(i,j) = Σ_k |A(i,k)|_0·|B(k,j)|_0`),
//!   for when the right operand is tall.

use crate::csr::Csr;
use crate::value::Value;
use crate::{Coo, Index};
use std::collections::HashMap;

/// Count shared columns for every row pair: `C(i, j) = |cols(A_i) ∩
/// cols(B_j)|`, rows indexed by the *positional* order of the occupied
/// rows of `A` and `B`.
///
/// Entries with zero intersection are not stored.
pub fn cooccurrence<V: Value, W: Value>(a: &Csr<V>, b: &Csr<W>) -> Csr<u64> {
    let mut coo = Coo::new();
    for i in 0..a.n_rows() {
        let (ca, _) = a.row_at(i);
        for j in 0..b.n_rows() {
            let (cb, _) = b.row_at(j);
            let shared = intersect_count(ca, cb);
            if shared > 0 {
                coo.push(i as Index, j as Index, shared);
            }
        }
    }
    coo.into_csr()
}

/// Linear merge intersection count of two sorted index slices.
fn intersect_count(a: &[Index], b: &[Index]) -> u64 {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// General pattern SpGEMM over the counting semiring:
/// `C(i, j) = Σ_k |A(i, k)|_0 · |B(k, j)|_0`.
///
/// Row-wise Gustavson with a hash accumulator; `B` is accessed by row
/// index, so `A`'s column space must be `B`'s row space.
pub fn spgemm_pattern<V: Value, W: Value>(a: &Csr<V>, b: &Csr<W>) -> Csr<u64> {
    let mut coo = Coo::new();
    let mut acc: HashMap<Index, u64> = HashMap::new();
    for (ar, a_cols, _) in a.iter_rows() {
        acc.clear();
        for &k in a_cols {
            if let Some((b_cols, _)) = b.row(k) {
                for &bc in b_cols {
                    *acc.entry(bc).or_insert(0) += 1;
                }
            }
        }
        // audit:allow(map-iter-order) — into_csr() below radix-sorts by packed key, erasing accumulator order
        for (&c, &n) in acc.iter() {
            coo.push(ar, c, n);
        }
    }
    coo.into_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(rows: &[(Index, &[Index])]) -> Csr<u64> {
        let mut coo = Coo::new();
        for &(r, cols) in rows {
            for &c in cols {
                coo.push(r, c, 1u64);
            }
        }
        coo.into_csr()
    }

    #[test]
    fn cooccurrence_counts_shared_columns() {
        let a = pattern(&[(0, &[1, 2, 3]), (1, &[3, 4])]);
        let b = pattern(&[(0, &[2, 3]), (1, &[9])]);
        let c = cooccurrence(&a, &b);
        assert_eq!(c.get(0, 0), Some(2)); // {2,3}
        assert_eq!(c.get(1, 0), Some(1)); // {3}
        assert_eq!(c.get(0, 1), None); // no overlap with {9}
        assert_eq!(c.get(1, 1), None);
    }

    #[test]
    fn cooccurrence_diagonal_is_row_degree() {
        let a = pattern(&[(0, &[1, 2, 3]), (5, &[7]), (9, &[1, 9, 17, 33])]);
        let c = cooccurrence(&a, &a);
        assert_eq!(c.get(0, 0), Some(3));
        assert_eq!(c.get(1, 1), Some(1));
        assert_eq!(c.get(2, 2), Some(4));
    }

    #[test]
    fn cooccurrence_is_symmetric_for_self_product() {
        let a = pattern(&[(0, &[1, 2]), (1, &[2, 3]), (2, &[3, 4])]);
        let c = cooccurrence(&a, &a);
        for (i, j, v) in c.iter() {
            assert_eq!(c.get(j, i), Some(v), "asymmetry at ({i},{j})");
        }
    }

    #[test]
    fn spgemm_pattern_matches_manual() {
        // A: 2x3 pattern, B: 3x2 pattern.
        let a = pattern(&[(0, &[0, 1]), (1, &[1, 2])]);
        let b = pattern(&[(0, &[10]), (1, &[10, 11]), (2, &[11])]);
        let c = spgemm_pattern(&a, &b);
        // C(0,10) = A(0,0)B(0,10) + A(0,1)B(1,10) = 2.
        assert_eq!(c.get(0, 10), Some(2));
        assert_eq!(c.get(0, 11), Some(1));
        assert_eq!(c.get(1, 10), Some(1));
        assert_eq!(c.get(1, 11), Some(2));
    }

    #[test]
    fn spgemm_against_transpose_equals_cooccurrence() {
        let a = pattern(&[(3, &[1, 2, 3]), (7, &[2, 3, 4]), (9, &[5])]);
        let b = pattern(&[(0, &[2, 3]), (4, &[4, 5])]);
        let via_spgemm = spgemm_pattern(&a, &b.transpose());
        let via_cooc = cooccurrence(&a, &b);
        // spgemm indexes by original row ids; cooccurrence by position.
        let rows_a = [3u32, 7, 9];
        let rows_b = [0u32, 4];
        for (ia, &ra) in rows_a.iter().enumerate() {
            for (ib, &rb) in rows_b.iter().enumerate() {
                assert_eq!(
                    via_spgemm.get(ra, rb),
                    via_cooc.get(ia as Index, ib as Index),
                    "mismatch at ({ra},{rb})"
                );
            }
        }
    }

    #[test]
    fn empty_operands() {
        let e = Csr::<u64>::empty();
        let a = pattern(&[(0, &[1])]);
        assert!(cooccurrence(&a, &e).is_empty());
        assert!(cooccurrence(&e, &a).is_empty());
        assert!(spgemm_pattern(&e, &a).is_empty());
    }
}
