// Seeds `atomic-ordering` violations: an undocumented SeqCst and a
// stricter-than-Relaxed note that fails to name the happens-before edge.

mod bare_allow;
mod globals;
mod reduce;

use std::sync::atomic::{AtomicU64, Ordering};

pub fn undocumented(c: &AtomicU64) {
    c.store(1, Ordering::SeqCst);
}

pub fn vague_strict(c: &AtomicU64) {
    // ordering: seems safer this way
    c.store(2, Ordering::Release);
}

pub fn documented(c: &AtomicU64) {
    // ordering: publishes the buffer; happens-before the consumer's Acquire load
    c.store(3, Ordering::Release);
    // ordering: stat counter; no reader synchronizes on it
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn allowed(c: &AtomicU64) {
    // audit:allow(atomic-ordering) — fixture: the marker must silence this site
    c.store(4, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    pub fn exempt() {
        let c = AtomicU64::new(0);
        c.store(9, Ordering::SeqCst);
    }
}
