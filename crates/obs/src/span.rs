//! RAII timing spans.
//!
//! A [`SpanTimer`] measures the wall-clock time between its creation and its
//! drop and records the duration into the registry: one observation in the
//! histogram `span.<name>.ns` and one increment of the counter
//! `span.<name>.calls_total`. This module is the single sanctioned home of
//! `Instant::now()` in the workspace — the `instant-timing` audit rule
//! rejects ad-hoc timing everywhere else so that all measurements flow
//! through the registry and show up in the metrics snapshot.

use std::time::Instant;

use crate::registry::{global, Registry};

/// Guard that records elapsed wall-clock time into a registry on drop.
///
/// ```
/// {
///     let _span = obscor_obs::span("demo.work");
///     // ... timed work ...
/// } // drop records span.demo.work.ns and span.demo.work.calls_total
/// ```
#[derive(Debug)]
pub struct SpanTimer {
    registry: &'static Registry,
    name: String,
    started: Instant,
}

impl SpanTimer {
    /// Start timing `name` against the global registry.
    pub fn start(name: &str) -> Self {
        Self::start_in(global(), name)
    }

    /// Start timing `name` against a specific registry (tests).
    pub fn start_in(registry: &'static Registry, name: &str) -> Self {
        Self { registry, name: name.to_owned(), started: Instant::now() }
    }

    /// The span name this timer records under.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let elapsed_ns = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.registry.histogram(&format!("span.{}.ns", self.name)).observe(elapsed_ns);
        self.registry.counter(&format!("span.{}.calls_total", self.name)).inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_histogram_and_counter() {
        {
            let _s = SpanTimer::start("obs.test.drop_records");
        }
        {
            let _s = SpanTimer::start("obs.test.drop_records");
        }
        let snap = global().snapshot();
        assert_eq!(snap.counters["span.obs.test.drop_records.calls_total"], 2);
        let h = &snap.histograms["span.obs.test.drop_records.ns"];
        assert_eq!(h.count, 2);
    }

    #[test]
    fn name_accessor() {
        let s = SpanTimer::start("obs.test.name_accessor");
        assert_eq!(s.name(), "obs.test.name_accessor");
    }
}
