//! # obscor — Temporal Correlation of Internet Observatories and Outposts
//!
//! A from-scratch Rust reproduction of Kepner et al. (IPDPS Workshops
//! 2022): hypersparse GraphBLAS-style traffic matrices, D4M associative
//! arrays, prefix-preserving anonymization, a packet-capture layer, a
//! generative Internet-background-radiation world model, synthetic
//! telescope and honeyfarm observers, and the full correlation pipeline
//! that regenerates every table and figure of the paper.
//!
//! This meta-crate re-exports the workspace crates under one namespace:
//!
//! ```
//! use obscor::netmodel::Scenario;
//! use obscor::core::{pipeline, AnalysisConfig};
//!
//! let scenario = Scenario::paper_scaled(1 << 14, 42);
//! let analysis = pipeline::run(&scenario, &AnalysisConfig::fast());
//! assert_eq!(analysis.caida_inventory.len(), 5);
//! assert_eq!(analysis.greynoise_inventory.len(), 15);
//! ```
//!
//! See the crate-level docs of each member for the full story:
//!
//! * [`hypersparse`] — DCSR matrices, hierarchical accumulation, Table II,
//! * [`assoc`] — D4M associative arrays and key-set algebra,
//! * [`pcap`] — packets, libpcap codec, constant-packet windows,
//! * [`anonymize`] — AES-128, CryptoPAN, trusted-sharing workflows,
//! * [`stats`] — log2 binning, Zipf–Mandelbrot, modified-Cauchy fits,
//! * [`netmodel`] — the synthetic world (brightness, churn, classes),
//! * [`telescope`] — the darknet observatory,
//! * [`honeyfarm`] — the engaging outpost,
//! * [`core`] — the paper's correlation pipeline and reports.

pub use obscor_anonymize as anonymize;
pub use obscor_assoc as assoc;
pub use obscor_core as core;
pub use obscor_honeyfarm as honeyfarm;
pub use obscor_hypersparse as hypersparse;
pub use obscor_netmodel as netmodel;
pub use obscor_pcap as pcap;
pub use obscor_stats as stats;
pub use obscor_telescope as telescope;
