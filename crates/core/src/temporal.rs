//! Figs 5 & 6: temporal correlation curves.
//!
//! For each log2 degree bin of each telescope window, the fraction of the
//! bin's sources found in the honeyfarm's source set of every month of
//! the 15-month span — overlap as a function of the month lag `t − t0`.

use crate::degree::WindowDegrees;
use obscor_assoc::{KeySet, NumKeySet};
use obscor_stats::binning::bin_representative;

/// One temporal correlation curve (one window × one degree bin).
#[derive(Clone, Debug, PartialEq)]
pub struct TemporalCurve {
    /// Window label (`t0`).
    pub window_label: String,
    /// Window coordinate in months.
    pub coord: f64,
    /// Degree bin index.
    pub bin: u32,
    /// Representative degree `d_i = 2^i`.
    pub d: u64,
    /// Sources in the bin.
    pub n_sources: usize,
    /// Month indices, in grid order.
    pub months: Vec<usize>,
    /// Month lags `t − t0` (month midpoints minus window coordinate).
    pub lags: Vec<f64>,
    /// Fraction of the bin's sources in each month's honeyfarm set.
    pub fractions: Vec<f64>,
}

impl TemporalCurve {
    /// The fraction at the month closest to zero lag.
    pub fn peak_fraction(&self) -> f64 {
        let mut best = (f64::INFINITY, 0.0);
        for (&lag, &frac) in self.lags.iter().zip(&self.fractions) {
            if lag.abs() < best.0 {
                best = (lag.abs(), frac);
            }
        }
        best.1
    }
}

/// Compute the temporal curves of one window against all honeyfarm
/// months (`monthly_sources[m]` is month `m`'s row-key set).
///
/// Dispatching wrapper: when every monthly key parses as a dotted-quad IP
/// the 15-month × per-bin overlap grid runs on the numeric fast path
/// ([`temporal_curves_ip`]); otherwise it falls back to the string-keyed
/// oracle ([`temporal_curves_str`]). Callers running many windows against
/// the same months should convert once and call the `_ip` variant.
pub fn temporal_curves(
    window: &WindowDegrees,
    monthly_sources: &[KeySet],
    min_bin_sources: usize,
) -> Vec<TemporalCurve> {
    let numeric: Option<Vec<NumKeySet>> =
        monthly_sources.iter().map(NumKeySet::from_key_set).collect();
    match numeric {
        Some(months) => temporal_curves_ip(window, &months, min_bin_sources),
        None => temporal_curves_str(window, monthly_sources, min_bin_sources),
    }
}

/// Numeric fast path of [`temporal_curves`]: every per-bin × per-month
/// overlap is a `u32` merge/gallop count with no string allocation.
pub fn temporal_curves_ip(
    window: &WindowDegrees,
    monthly_sources: &[NumKeySet],
    min_bin_sources: usize,
) -> Vec<TemporalCurve> {
    let _span = obscor_obs::span("core.temporal_curves");
    let curves: Vec<TemporalCurve> = window
        .bin_ip_sets(min_bin_sources)
        .into_iter()
        .map(|(bin, keys)| {
            let months: Vec<usize> = (0..monthly_sources.len()).collect();
            let lags: Vec<f64> =
                months.iter().map(|&m| (m as f64 + 0.5) - window.coord).collect();
            let fractions: Vec<f64> = months
                .iter()
                .map(|&m| keys.overlap_fraction(&monthly_sources[m]).unwrap_or(0.0))
                .collect();
            TemporalCurve {
                window_label: window.label.clone(),
                coord: window.coord,
                bin,
                d: bin_representative(bin),
                n_sources: keys.len(),
                months,
                lags,
                fractions,
            }
        })
        .collect();
    obscor_obs::counter("core.temporal_curves.curves_total").add(curves.len() as u64);
    curves
}

/// String-keyed path of [`temporal_curves`], kept as the differential
/// oracle for the numeric fast path (and the fallback for key sets whose
/// keys are not dotted-quad IPs).
pub fn temporal_curves_str(
    window: &WindowDegrees,
    monthly_sources: &[KeySet],
    min_bin_sources: usize,
) -> Vec<TemporalCurve> {
    let _span = obscor_obs::span("core.temporal_curves");
    let curves: Vec<TemporalCurve> = window
        .bin_key_sets(min_bin_sources)
        .into_iter()
        .map(|(bin, keys)| {
            let months: Vec<usize> = (0..monthly_sources.len()).collect();
            let lags: Vec<f64> =
                months.iter().map(|&m| (m as f64 + 0.5) - window.coord).collect();
            let fractions: Vec<f64> = months
                .iter()
                .map(|&m| keys.overlap_fraction(&monthly_sources[m]).unwrap_or(0.0))
                .collect();
            TemporalCurve {
                window_label: window.label.clone(),
                coord: window.coord,
                bin,
                d: bin_representative(bin),
                n_sources: keys.len(),
                months,
                lags,
                fractions,
            }
        })
        .collect();
    obscor_obs::counter("core.temporal_curves.curves_total").add(curves.len() as u64);
    curves
}

/// Select the Fig 5 curve: the first window's bin at degrees
/// `(sqrt(N_V)/2, sqrt(N_V)]` (the paper's `2^14 ≤ d < 2^15` for
/// `N_V = 2^30`), if measured.
pub fn fig5_curve<'a>(
    curves: &'a [TemporalCurve],
    first_window_label: &str,
    bright_log2: f64,
) -> Option<&'a TemporalCurve> {
    let target_bin = bright_log2.round() as u32;
    curves
        .iter()
        .find(|c| c.window_label == first_window_label && c.bin == target_bin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_assoc::convert::ip_key;

    fn window() -> WindowDegrees {
        let mut degrees: Vec<(u32, u64)> = (1..=10u32).map(|ip| (ip, 4u64)).collect();
        degrees.extend((21..=30u32).map(|ip| (ip, 256u64)));
        WindowDegrees { label: "w0".into(), coord: 4.5, month: 4, degrees }
    }

    fn months(present_per_month: &[&[u32]]) -> Vec<KeySet> {
        present_per_month
            .iter()
            .map(|ips| ips.iter().map(|&ip| ip_key(ip)).collect())
            .collect()
    }

    #[test]
    fn curves_have_one_point_per_month() {
        let w = window();
        let gn = months(&[&[1, 2], &[1], &[], &[21, 22, 23]]);
        let curves = temporal_curves(&w, &gn, 1);
        assert_eq!(curves.len(), 2); // bins 2 and 8
        for c in &curves {
            assert_eq!(c.months.len(), 4);
            assert_eq!(c.lags.len(), 4);
            assert_eq!(c.fractions.len(), 4);
        }
    }

    #[test]
    fn fractions_match_overlaps() {
        let w = window();
        let gn = months(&[&[1, 2], &[1], &[], &[21, 22, 23]]);
        let curves = temporal_curves(&w, &gn, 1);
        let dim = curves.iter().find(|c| c.bin == 2).unwrap();
        assert!((dim.fractions[0] - 0.2).abs() < 1e-12);
        assert!((dim.fractions[1] - 0.1).abs() < 1e-12);
        assert_eq!(dim.fractions[2], 0.0);
        let bright = curves.iter().find(|c| c.bin == 8).unwrap();
        assert!((bright.fractions[3] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn numeric_and_string_paths_are_bit_identical() {
        let w = window();
        let gn = months(&[&[1, 2], &[1], &[], &[21, 22, 23], &[1, 21, 99]]);
        let via_str = temporal_curves_str(&w, &gn, 1);
        let gn_num: Vec<NumKeySet> =
            gn.iter().map(|ks| NumKeySet::from_key_set(ks).unwrap()).collect();
        let via_num = temporal_curves_ip(&w, &gn_num, 1);
        assert_eq!(via_str, via_num);
        // The public entry point dispatches to the numeric path here.
        assert_eq!(temporal_curves(&w, &gn, 1), via_num);
    }

    #[test]
    fn unparseable_keys_fall_back_to_the_string_path() {
        let w = window();
        let mut gn = months(&[&[1, 2], &[1]]);
        gn[1] = ["not-an-ip".to_string(), ip_key(1)].into_iter().collect();
        let curves = temporal_curves(&w, &gn, 1);
        let dim = curves.iter().find(|c| c.bin == 2).unwrap();
        assert!((dim.fractions[0] - 0.2).abs() < 1e-12);
        assert!((dim.fractions[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn lags_are_centered_on_window() {
        let w = window();
        let gn = months(&[&[], &[], &[], &[], &[], &[]]);
        let curves = temporal_curves(&w, &gn, 1);
        let lags = &curves[0].lags;
        // Month 4 midpoint = 4.5 = window coord -> lag 0.
        assert!((lags[4] - 0.0).abs() < 1e-12);
        assert!((lags[0] + 4.0).abs() < 1e-12);
        assert!((lags[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn peak_fraction_is_at_zero_lag() {
        let w = window();
        let gn = months(&[&[], &[], &[], &[], &[1, 2, 3, 4, 5], &[]]);
        let curves = temporal_curves(&w, &gn, 1);
        let dim = curves.iter().find(|c| c.bin == 2).unwrap();
        assert!((dim.peak_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fig5_selection_picks_the_bright_knee_bin() {
        let w = window();
        let gn = months(&[&[]]);
        let curves = temporal_curves(&w, &gn, 1);
        // bright_log2 = 8 -> bin 8 (degrees 129..=256).
        let c = fig5_curve(&curves, "w0", 8.0).unwrap();
        assert_eq!(c.bin, 8);
        assert!(fig5_curve(&curves, "nope", 8.0).is_none());
        assert!(fig5_curve(&curves, "w0", 3.0).is_none());
    }
}
