//! The sensor fleet.
//!
//! GreyNoise operates hundreds of sensor addresses scattered across many
//! networks. The fleet's size sets the baseline detection efficiency; its
//! addresses matter to the engagement layer (sources talk *to* the
//! sensors, so the honeyfarm's traffic matrix has both quadrants).

use obscor_pcap::Ip4;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// A fleet of honeyfarm sensor addresses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SensorFleet {
    sensors: Vec<Ip4>,
}

impl SensorFleet {
    /// Deploy `n` sensors at distinct addresses outside the darkspace /8
    /// rooted at `darkspace_octet` (an observatory and an outpost never
    /// share address space in the study).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn deploy(n: usize, darkspace_octet: u8, seed: u64) -> Self {
        assert!(n > 0, "a honeyfarm needs sensors");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut used = HashSet::with_capacity(n);
        let mut sensors = Vec::with_capacity(n);
        while sensors.len() < n {
            let ip: u32 = rng.random();
            if (ip >> 24) as u8 == darkspace_octet {
                continue;
            }
            if used.insert(ip) {
                sensors.push(Ip4(ip));
            }
        }
        sensors.sort_unstable();
        Self { sensors }
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// Whether the fleet is empty (never true after deployment).
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }

    /// The sensor addresses, sorted.
    pub fn addresses(&self) -> &[Ip4] {
        &self.sensors
    }

    /// Whether `ip` is one of the fleet's sensors.
    pub fn is_sensor(&self, ip: Ip4) -> bool {
        self.sensors.binary_search(&ip).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_is_deterministic_and_unique() {
        let a = SensorFleet::deploy(500, 44, 1);
        let b = SensorFleet::deploy(500, 44, 1);
        assert_eq!(a, b);
        let unique: HashSet<u32> = a.addresses().iter().map(|ip| ip.0).collect();
        assert_eq!(unique.len(), 500);
    }

    #[test]
    fn sensors_avoid_darkspace() {
        let fleet = SensorFleet::deploy(1000, 44, 2);
        assert!(fleet.addresses().iter().all(|ip| (ip.0 >> 24) as u8 != 44));
    }

    #[test]
    fn membership_queries() {
        let fleet = SensorFleet::deploy(100, 44, 3);
        let first = fleet.addresses()[0];
        assert!(fleet.is_sensor(first));
        assert!(!fleet.is_sensor(Ip4(first.0.wrapping_add(1))) || fleet.addresses().contains(&Ip4(first.0 + 1)));
    }

    #[test]
    #[should_panic(expected = "needs sensors")]
    fn empty_fleet_rejected() {
        let _ = SensorFleet::deploy(0, 44, 1);
    }
}
