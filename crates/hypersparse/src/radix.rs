//! LSD radix compaction kernel.
//!
//! Compacting a COO buffer is a sort-then-dedup problem over the packed
//! row-major key `(row << 32) | col` (see [`crate::keypack`]). The
//! comparison sort in [`crate::Coo::into_csr_serial`] pays `O(n log n)`
//! comparisons per leaf; this kernel replaces it with a least-significant-
//! digit radix sort over the key's byte digits:
//!
//! 1. **One counting sweep** builds all eight 256-entry digit histograms in
//!    a single pass over the keys, accumulated per chunk (the shape a real
//!    thread pool parallelizes; the vendored rayon executes it
//!    sequentially) and merged.
//! 2. **Digit passes** run least- to most-significant over only the *active*
//!    digits — digits where every key shares one byte value are skipped
//!    outright, which on real telescope traffic removes most of the eight
//!    passes (row indices are dense near zero, columns live in one /8).
//! 3. The **final scatter is fused with dedup-sum**: because all earlier
//!    passes are stable, equal keys arrive consecutively within their
//!    destination bucket, so the last pass can sum duplicates and drop
//!    zero-sums (GraphBLAS semantics) while it scatters, writing each
//!    bucket compacted in place.
//! 4. **Direct CSR assembly** walks the compacted buckets in order and
//!    builds the `row_keys`/`row_ptr`/`col_keys`/`vals` arrays without ever
//!    materializing an intermediate dedup'd triple `Vec`.
//!
//! The comparison path remains in `coo.rs` as the differential oracle
//! (`serial ≡ radix` property tests live in `tests/properties.rs`), and
//! [`crate::Coo::into_csr`] picks between the two with a measured crossover
//! rather than a magic constant.
//!
//! Opt-in metrics (enable with [`enable_metrics`]; never emitted otherwise,
//! so the default 80-name metrics schema is untouched):
//!
//! * `hypersparse.radix.compactions_total` — kernel invocations
//! * `hypersparse.radix.keys_total` — triples ingested
//! * `hypersparse.radix.digit_passes_total` / `.skipped_digits_total` —
//!   scatter passes run vs. skipped as constant
//! * `span.hypersparse.radix.digit_passes.{ns,calls_total}` — scatter time

use std::sync::atomic::{AtomicBool, Ordering};

use rayon::prelude::*;

use crate::csr::Csr;
use crate::keypack::{pack_key, unpack_key};
use crate::value::Value;
use crate::Index;

/// Number of byte digits in a packed key.
const DIGITS: usize = 8;
/// Radix of one digit pass.
const RADIX: usize = 256;
/// Chunk size of the counting sweep (per-"thread" accumulation unit).
const COUNT_CHUNK: usize = 1 << 16;

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Opt in to `hypersparse.radix.*` metrics emission for this process.
///
/// Off by default so the pinned default metrics schema never changes; the
/// CLI exposes this through `--fast-path-metrics`.
pub fn enable_metrics() {
    METRICS_ENABLED.store(true, Ordering::Relaxed); // ordering: set-once enable flag; callers tolerate a stale false
}

/// Whether [`enable_metrics`] has been called.
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed) // ordering: enable-flag read; staleness only delays metric emission
}

/// Compact raw COO columns into a CSR matrix: radix-sort by packed key,
/// sum duplicate coordinates, drop zero sums, assemble CSR directly.
///
/// The result is bit-identical to the comparison-sort path
/// ([`crate::Coo::into_csr_serial`]); `into_csr` chooses between them.
pub fn compact_into_csr<V: Value>(rows: Vec<Index>, cols: Vec<Index>, vals: Vec<V>) -> Csr<V> {
    debug_assert_eq!(rows.len(), cols.len());
    debug_assert_eq!(rows.len(), vals.len());
    let n = rows.len();
    if n == 0 {
        return Csr::empty();
    }
    let mut src: Vec<(u64, V)> = rows
        .into_iter()
        .zip(cols)
        .zip(vals)
        .map(|((r, c), v)| (pack_key(r, c), v))
        .collect();

    let hist = digit_histograms(&src);
    let active: Vec<usize> =
        (0..DIGITS).filter(|&d| hist[d].iter().filter(|&&count| count > 0).count() > 1).collect();

    if metrics_enabled() {
        obscor_obs::counter("hypersparse.radix.compactions_total").inc();
        obscor_obs::counter("hypersparse.radix.keys_total").add(n as u64);
        obscor_obs::counter("hypersparse.radix.digit_passes_total").add(active.len() as u64);
        obscor_obs::counter("hypersparse.radix.skipped_digits_total")
            .add((DIGITS - active.len()) as u64);
    }

    let Some((&last_digit, earlier)) = active.split_last() else {
        // Every key is identical: the whole buffer folds to one entry.
        let (key, _) = src[0];
        let mut acc = V::zero();
        for &(_, v) in &src {
            acc += v;
        }
        if acc.is_zero() {
            return Csr::empty();
        }
        let (r, c) = unpack_key(key);
        return Csr::from_sorted_dedup_triples(vec![(r, c, acc)]);
    };

    let _scatter_span =
        metrics_enabled().then(|| obscor_obs::span("hypersparse.radix.digit_passes"));

    // Stable counting scatters over all but the most-significant active
    // digit. `dst` is pre-filled with placeholder pairs (never read before
    // being overwritten) so the scatter stays safe code.
    let mut dst: Vec<(u64, V)> = vec![(0u64, V::zero()); n];
    for &digit in earlier {
        let shift = digit * 8;
        let mut cursor = bucket_starts(&hist[digit]);
        for &(key, v) in &src {
            let b = digit_of(key, shift);
            dst[cursor[b]] = (key, v);
            cursor[b] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }

    // Final pass: scatter on the most-significant active digit, fusing the
    // duplicate-sum and zero-drop into the write. Earlier passes were
    // stable, so equal keys land consecutively within their bucket and a
    // single "last written key" comparison per bucket suffices.
    let shift = last_digit * 8;
    let starts = bucket_starts(&hist[last_digit]);
    let mut write = starts;
    for &(key, v) in &src {
        let b = digit_of(key, shift);
        if write[b] > starts[b] {
            let slot = write[b] - 1;
            if dst[slot].0 == key {
                dst[slot].1 += v;
                continue;
            }
            if dst[slot].1.is_zero() {
                // The previous run summed to zero: reuse its slot.
                dst[slot] = (key, v);
                continue;
            }
        }
        dst[write[b]] = (key, v);
        write[b] += 1;
    }
    // A bucket's trailing run can still have summed to zero.
    for b in 0..RADIX {
        if write[b] > starts[b] && dst[write[b] - 1].1.is_zero() {
            write[b] -= 1;
        }
    }
    drop(_scatter_span);

    assemble_csr(&dst, &starts, &write)
}

/// Walk the compacted buckets in digit order and build the CSR arrays
/// directly — no intermediate dedup'd triple `Vec`.
fn assemble_csr<V: Value>(
    compacted: &[(u64, V)],
    starts: &[usize; RADIX],
    write: &[usize; RADIX],
) -> Csr<V> {
    let nnz: usize = (0..RADIX).map(|b| write[b] - starts[b]).sum();
    if nnz == 0 {
        return Csr::empty();
    }
    let mut row_keys: Vec<Index> = Vec::new();
    let mut row_ptr: Vec<usize> = vec![0];
    let mut col_keys: Vec<Index> = Vec::with_capacity(nnz);
    let mut vals: Vec<V> = Vec::with_capacity(nnz);
    for b in 0..RADIX {
        for &(key, v) in &compacted[starts[b]..write[b]] {
            let (r, c) = unpack_key(key);
            match row_keys.last() {
                Some(&last) if last == r => {}
                Some(_) => {
                    row_ptr.push(col_keys.len());
                    row_keys.push(r);
                }
                None => row_keys.push(r),
            }
            col_keys.push(c);
            vals.push(v);
        }
    }
    row_ptr.push(col_keys.len());
    Csr::from_parts(row_keys, row_ptr, col_keys, vals)
}

/// All eight digit histograms in one sweep, accumulated per chunk and
/// merged (the per-thread shape of a counting pass).
fn digit_histograms<V: Value>(src: &[(u64, V)]) -> Vec<[usize; RADIX]> {
    src.par_chunks(COUNT_CHUNK)
        .map(|chunk| {
            let mut hist = vec![[0usize; RADIX]; DIGITS];
            for &(key, _) in chunk {
                for (d, h) in hist.iter_mut().enumerate() {
                    h[digit_of(key, d * 8)] += 1;
                }
            }
            hist
        })
        .fold(vec![[0usize; RADIX]; DIGITS], |mut acc, part| {
            for (a, p) in acc.iter_mut().zip(&part) {
                for (slot, add) in a.iter_mut().zip(p) {
                    *slot += add;
                }
            }
            acc
        })
}

/// Byte digit of `key` at bit offset `shift`.
#[inline]
fn digit_of(key: u64, shift: usize) -> usize {
    ((key >> shift) & 0xFF) as usize
}

/// Exclusive prefix sum of a digit histogram: bucket start offsets.
fn bucket_starts(hist: &[usize; RADIX]) -> [usize; RADIX] {
    let mut starts = [0usize; RADIX];
    let mut running = 0usize;
    for (b, &count) in hist.iter().enumerate() {
        starts[b] = running;
        running += count;
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn via_radix(triples: Vec<(Index, Index, u64)>) -> Csr<u64> {
        let coo = Coo::from_triples(triples);
        coo.into_csr_radix()
    }

    #[test]
    fn empty_input_is_empty_csr() {
        let csr = compact_into_csr::<u64>(vec![], vec![], vec![]);
        assert!(csr.is_empty());
        csr.check_invariants().unwrap();
    }

    #[test]
    fn all_identical_keys_fold_to_one_entry() {
        let csr = via_radix(vec![(3, 4, 2); 10]);
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(3, 4), Some(20));
        csr.check_invariants().unwrap();
    }

    #[test]
    fn all_identical_keys_cancelling_to_zero_is_empty() {
        let csr = compact_into_csr::<f64>(vec![7, 7], vec![9, 9], vec![2.5, -2.5]);
        assert!(csr.is_empty());
    }

    #[test]
    fn duplicates_sum_and_zeros_drop_per_bucket() {
        // Keys spanning several top-digit buckets, with a cancelling run in
        // the middle of one bucket and at the tail of another.
        let csr = compact_into_csr::<f64>(
            vec![1, 1, 1, 1, 2, 2, 0x0100_0000, 0x0100_0000],
            vec![5, 5, 9, 9, 1, 1, 3, 3],
            vec![1.0, -1.0, 2.0, 3.0, 4.0, 5.0, 6.0, -6.0],
        );
        assert_eq!(csr.get(1, 5), None);
        assert_eq!(csr.get(1, 9), Some(5.0));
        assert_eq!(csr.get(2, 1), Some(9.0));
        assert_eq!(csr.get(0x0100_0000, 3), None);
        assert_eq!(csr.nnz(), 2);
        csr.check_invariants().unwrap();
    }

    #[test]
    fn matches_serial_oracle_on_pseudorandom_triples() {
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut triples = Vec::new();
        for _ in 0..60_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = (state >> 40) as Index % 997;
            let c = (state >> 20) as Index % 991;
            triples.push((r, c, 1u64));
        }
        let serial = Coo::from_triples(triples.iter().copied()).into_csr_serial();
        let radix = via_radix(triples);
        assert_eq!(serial, radix);
        radix.check_invariants().unwrap();
    }

    #[test]
    fn full_range_keys_exercise_all_digits() {
        let triples = vec![
            (u32::MAX, u32::MAX, 1u64),
            (0, 0, 1),
            (u32::MAX, 0, 2),
            (0, u32::MAX, 3),
            (0x8000_0000, 0x7FFF_FFFF, 4),
            (u32::MAX, u32::MAX, 5),
        ];
        let serial = Coo::from_triples(triples.iter().copied()).into_csr_serial();
        let radix = via_radix(triples);
        assert_eq!(serial, radix);
        assert_eq!(radix.get(u32::MAX, u32::MAX), Some(6));
    }

    #[test]
    fn metrics_are_silent_until_enabled() {
        // This test must not itself enable metrics: it shares the process
        // with other tests, so it only checks the default-off behavior of
        // a fresh compaction against the names' absence when disabled at
        // entry. (Opt-in emission is covered by tests/metrics_optin.rs in
        // the workspace root, which runs in its own process.)
        if metrics_enabled() {
            return;
        }
        let before = obscor_obs::snapshot();
        let _ = via_radix(vec![(1, 2, 3), (4, 5, 6)]);
        let delta = obscor_obs::snapshot().delta_since(&before);
        assert!(delta.counters.keys().all(|k| !k.starts_with("hypersparse.radix.")));
    }
}
