//! Forecasting future overlap from fitted temporal models.
//!
//! The paper closes with: "Each of these observations provides a basis
//! for predictions for future measurements." This module makes that
//! concrete: fit the modified Cauchy on the months up to a cutoff, then
//! predict the telescope∩honeyfarm fraction for the held-out months, and
//! score the prediction against the actual measurements — with a
//! persistence baseline (last observed value carries forward) for
//! comparison, as any forecasting claim needs one.

use crate::config::AnalysisConfig;
use crate::temporal::TemporalCurve;
use obscor_stats::fit::fit_modified_cauchy_grid;

/// A held-out evaluation of one curve's forecast.
#[derive(Clone, Debug, PartialEq)]
pub struct ForecastEval {
    /// Window label.
    pub window_label: String,
    /// Degree bin.
    pub bin: u32,
    /// Months used for fitting (indices `0..cutoff`).
    pub cutoff: usize,
    /// Held-out month indices.
    pub held_out: Vec<usize>,
    /// Model predictions for the held-out months.
    pub predicted: Vec<f64>,
    /// Actual measured fractions.
    pub actual: Vec<f64>,
    /// Persistence-baseline predictions (last trained value).
    pub baseline: Vec<f64>,
}

impl ForecastEval {
    /// Mean absolute error of the model on the held-out months.
    pub fn model_mae(&self) -> f64 {
        mae(&self.predicted, &self.actual)
    }

    /// Mean absolute error of the persistence baseline.
    pub fn baseline_mae(&self) -> f64 {
        mae(&self.baseline, &self.actual)
    }

    /// Whether the fitted model beats persistence.
    pub fn model_wins(&self) -> bool {
        self.model_mae() <= self.baseline_mae()
    }
}

fn mae(pred: &[f64], actual: &[f64]) -> f64 {
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().zip(actual).map(|(p, a)| (p - a).abs()).sum::<f64>() / pred.len() as f64
}

/// Fit the curve on months `< cutoff` and evaluate on the rest.
///
/// Returns `None` if fewer than 4 training months, no held-out months, or
/// the training data is all zero.
pub fn forecast_curve(
    curve: &TemporalCurve,
    cutoff: usize,
    config: &AnalysisConfig,
) -> Option<ForecastEval> {
    if cutoff < 4 || cutoff >= curve.months.len() {
        return None;
    }
    let train_lags = &curve.lags[..cutoff];
    let train_vals = &curve.fractions[..cutoff];
    let fit = fit_modified_cauchy_grid(
        train_lags,
        train_vals,
        &config.mc_alphas,
        &config.mc_betas,
    )?;
    let held_out: Vec<usize> = curve.months[cutoff..].to_vec();
    let predicted: Vec<f64> =
        curve.lags[cutoff..].iter().map(|&lag| fit.eval(lag)).collect();
    let actual: Vec<f64> = curve.fractions[cutoff..].to_vec();
    let last_train = train_vals[cutoff - 1];
    let baseline = vec![last_train; actual.len()];
    Some(ForecastEval {
        window_label: curve.window_label.clone(),
        bin: curve.bin,
        cutoff,
        held_out,
        predicted,
        actual,
        baseline,
    })
}

/// Forecast every curve with enough training months; curves whose window
/// sits too late in the span (no post-cutoff decay to learn from) are
/// skipped.
pub fn forecast_all(
    curves: &[TemporalCurve],
    cutoff: usize,
    config: &AnalysisConfig,
) -> Vec<ForecastEval> {
    curves
        .iter()
        .filter(|c| c.coord < cutoff as f64 - 1.0)
        .filter_map(|c| forecast_curve(c, cutoff, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_stats::TemporalModel;

    fn model_curve(alpha: f64, beta: f64, noise: f64) -> TemporalCurve {
        let model = TemporalModel::ModifiedCauchy { alpha, beta };
        let coord = 4.5;
        let months: Vec<usize> = (0..15).collect();
        let lags: Vec<f64> = months.iter().map(|&m| (m as f64 + 0.5) - coord).collect();
        let fractions: Vec<f64> = lags
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let wiggle = noise * ((i * 2654435761) % 7) as f64 / 7.0;
                (0.7 * model.eval(t) + wiggle).min(1.0)
            })
            .collect();
        TemporalCurve {
            window_label: "w".into(),
            coord,
            bin: 8,
            d: 256,
            n_sources: 100,
            months,
            lags,
            fractions,
        }
    }

    #[test]
    fn clean_curve_forecasts_exactly() {
        let curve = model_curve(1.0, 2.0, 0.0);
        let eval = forecast_curve(&curve, 10, &AnalysisConfig::default()).unwrap();
        assert_eq!(eval.held_out, vec![10, 11, 12, 13, 14]);
        assert!(eval.model_mae() < 0.02, "model MAE {}", eval.model_mae());
        assert!(eval.model_wins());
    }

    #[test]
    fn model_beats_persistence_on_decaying_curves() {
        // Persistence holds the last (still-decaying) value flat; the
        // model knows the tail keeps falling.
        let curve = model_curve(1.2, 1.0, 0.01);
        let eval = forecast_curve(&curve, 9, &AnalysisConfig::default()).unwrap();
        assert!(
            eval.model_mae() < eval.baseline_mae(),
            "model {} vs baseline {}",
            eval.model_mae(),
            eval.baseline_mae()
        );
    }

    #[test]
    fn too_short_training_is_rejected() {
        let curve = model_curve(1.0, 2.0, 0.0);
        assert!(forecast_curve(&curve, 3, &AnalysisConfig::default()).is_none());
        assert!(forecast_curve(&curve, 15, &AnalysisConfig::default()).is_none());
    }

    #[test]
    fn all_zero_training_is_rejected() {
        let mut curve = model_curve(1.0, 2.0, 0.0);
        for v in curve.fractions.iter_mut().take(10) {
            *v = 0.0;
        }
        assert!(forecast_curve(&curve, 10, &AnalysisConfig::default()).is_none());
    }

    #[test]
    fn forecast_all_skips_late_windows() {
        let mut early = model_curve(1.0, 2.0, 0.0);
        early.coord = 4.5;
        let mut late = model_curve(1.0, 2.0, 0.0);
        late.coord = 12.5;
        let evals = forecast_all(&[early, late], 10, &AnalysisConfig::default());
        assert_eq!(evals.len(), 1, "late window must be excluded");
    }
}
