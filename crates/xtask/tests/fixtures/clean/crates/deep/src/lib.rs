// Transitive-taint negatives for `nondet-reach`: ordered iteration
// feeding a call chain, and hash iteration whose sinks never reach a
// codec.

use std::collections::{BTreeMap, HashMap};

pub fn render(k: u32) -> String {
    format!("{k}")
}

pub fn relay(k: u32) -> String {
    render(k)
}

pub fn digest_sorted(m: &BTreeMap<u32, u64>) {
    for k in m.keys() {
        relay(*k);
    }
}

pub fn tally(m: &HashMap<u32, u64>) -> u64 {
    let mut total = 0;
    for v in m.values() {
        total += v;
    }
    total
}
