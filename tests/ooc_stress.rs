//! Out-of-core stress: large constant-packet windows built under a fixed
//! live-byte budget on a real spill directory (DESIGN.md §16).
//!
//! The always-on test scales the paper geometry down; the `#[ignore]`d
//! tier-2 test builds a full `2^26`-packet window (the paper's windows
//! are `2^30`) under a budget far below the fold's unconstrained
//! footprint, proving the scheduler genuinely evicts and reloads at scale
//! while remaining bit-identical to the in-memory build.
//!
//! Run the big one explicitly:
//!
//! ```text
//! cargo test --release --test ooc_stress -- --ignored
//! ```

use obscor::hypersparse::hier::HierarchicalAccumulator;
use obscor::hypersparse::reduce::NetworkQuantities;
use obscor::hypersparse::spill::{DirMedium, SpillAccumulator, SpillConfig};
use obscor::hypersparse::Csr;
use std::sync::Arc;

/// Deterministic heavy-tailed edge stream, generated on the fly so the
/// driver never holds the packet list in memory (the point of the test is
/// the *matrix* footprint, not the driver's).
fn edges(n: usize, seed: u64, src_bits: u32, dst_bits: u32) -> impl Iterator<Item = (u32, u32)> {
    let mut state = seed | 1;
    let (src_mask, dst_mask) = ((1u32 << src_bits) - 1, (1u32 << dst_bits) - 1);
    (0..n).map(move |_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // The edge cardinality (2^src_bits x 2^dst_bits) bounds the final
        // matrix size; each test picks it so the carry levels saturate at
        // a footprint well below the unconstrained fold's resident sum but
        // whose largest single merge still fits the pinned budget.
        ((state >> 24) as u32 & src_mask, ((state >> 8) as u32 & dst_mask) | (44 << 24))
    })
}

fn in_memory(n: usize, seed: u64, bits: (u32, u32), leaf_capacity: usize) -> Csr<u64> {
    let mut acc = HierarchicalAccumulator::<u64>::with_leaf_capacity(leaf_capacity);
    for (s, d) in edges(n, seed, bits.0, bits.1) {
        acc.push_edge(s, d);
    }
    acc.finalize()
}

/// Build `n` packets spilled-to-disk under `budget` and check the full
/// contract: bit identity, exact coverage, real eviction traffic, and a
/// peak tracked footprint within the budget (with zero overruns — the
/// budget must have been *feasible*, not merely aspired to).
fn run_budgeted(n: usize, seed: u64, bits: (u32, u32), leaf_capacity: usize, budget: u64) {
    let dir = std::env::temp_dir();
    let medium = DirMedium::create_in(&dir).expect("spill dir in temp");
    let config = SpillConfig {
        leaf_capacity,
        memory_budget: Some(budget),
        ..SpillConfig::default()
    };
    let mut acc = SpillAccumulator::new(config, Arc::new(medium));
    for (s, d) in edges(n, seed, bits.0, bits.1) {
        acc.push_edge(s, d);
    }
    let (matrix, report) = acc.finalize();
    assert!(report.is_exact(), "spill run lost packets: {report:?}");
    assert_eq!(report.packets_expected, n as u64);
    assert!(
        report.stats.evictions > 0,
        "budget {budget} never forced an eviction: {:?}",
        report.stats
    );
    assert!(
        report.stats.reloads > 0,
        "evicted parts must be reloaded for their merges: {:?}",
        report.stats
    );
    assert_eq!(
        report.stats.budget_overruns, 0,
        "budget {budget} was infeasible: {:?}",
        report.stats
    );
    assert!(
        report.stats.peak_live_bytes <= budget,
        "peak tracked bytes {} exceeded budget {budget}",
        report.stats.peak_live_bytes
    );
    let oracle = in_memory(n, seed, bits, leaf_capacity);
    assert_eq!(matrix, oracle, "spilled build diverged from the in-memory fold");
    assert_eq!(
        NetworkQuantities::compute(&matrix),
        NetworkQuantities::compute(&oracle)
    );
}

#[test]
fn scaled_window_stays_within_a_pinned_budget() {
    // 2^20 packets over 2^8 x 2^5 distinct edges in 2^13-packet leaves
    // (128 leaves, 7 carry levels). Leaves are as large as the edge space,
    // so every carry level saturates near the ~134 KiB full matrix: the
    // unconstrained fold keeps ~1 MiB resident, the largest single merge
    // needs ~0.4 MiB, and a 640 KiB budget sits between — evictions are
    // forced, yet the budget stays feasible with margin on both sides.
    run_budgeted(1 << 20, 0xA5A5_0001, (8, 5), 1 << 13, 640 << 10);
}

#[test]
#[ignore = "tier-2: 2^26-packet window; run with --release -- --ignored"]
fn full_scale_window_builds_under_a_fixed_budget() {
    // 2^26 packets over 2^12 x 2^5 distinct edges in 2^17-packet leaves —
    // 512 leaves (9 carry levels), the paper's hierarchical geometry at
    // 1/16 window scale. Every level saturates near the ~2.2 MiB full
    // matrix (~20 MiB resident unconstrained); 10 MiB covers the largest
    // single merge (~6.5 MiB) but forces everything else out to disk.
    run_budgeted(1 << 26, 0xA5A5_0002, (12, 5), 1 << 17, 10 << 20);
}
