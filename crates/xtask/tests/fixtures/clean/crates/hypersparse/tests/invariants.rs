// Audit fixture: invariant test covering Grid::new, making the clean tree
// pass the invariant-coverage rule.

#[test]
fn grid_new_upholds_invariants() {
    let g = Grid::new(4);
    g.check_invariants().unwrap();
}
