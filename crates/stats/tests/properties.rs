//! Property-based tests for the statistics substrate.

use obscor_stats::binning::{bin_representative, differential_cumulative, log2_bin};
use obscor_stats::fit::{fit_modified_cauchy, one_month_drop, TemporalModel};
use obscor_stats::norms::{pnorm, residual_pnorm};
use obscor_stats::summary::{mean, quantile, variance};
use obscor_stats::zipf::ZipfMandelbrot;
use obscor_stats::DegreeHistogram;
use proptest::prelude::*;

proptest! {
    /// Bin boundaries: every degree lands in exactly the bin whose
    /// interval (2^{i-1}, 2^i] contains it.
    #[test]
    fn log2_bin_interval_membership(d in 1u64..1u64 << 40) {
        let i = log2_bin(d);
        let hi = bin_representative(i);
        prop_assert!(d <= hi);
        if i > 0 {
            prop_assert!(d > bin_representative(i - 1));
        }
    }

    /// Pooled mass equals one for any nonempty histogram.
    #[test]
    fn pooled_mass_conserved(degrees in prop::collection::vec(1u64..100_000, 1..300)) {
        let h = DegreeHistogram::from_degrees(degrees);
        let binned = differential_cumulative(&h);
        prop_assert!((binned.total() - 1.0).abs() < 1e-9);
    }

    /// The histogram's cumulative function is monotone and normalized.
    #[test]
    fn cumulative_monotone(degrees in prop::collection::vec(1u64..10_000, 1..200)) {
        let h = DegreeHistogram::from_degrees(degrees);
        let mut last = 0.0;
        for d in [1u64, 2, 5, 10, 100, 1_000, 10_000] {
            let c = h.cumulative(d);
            prop_assert!(c >= last - 1e-12);
            last = c;
        }
        prop_assert!((h.cumulative(h.d_max()) - 1.0).abs() < 1e-12);
    }

    /// p-norm axioms that hold for all p > 0: absolute homogeneity and
    /// zero iff zero vector.
    #[test]
    fn pnorm_homogeneous(
        xs in prop::collection::vec(-100.0f64..100.0, 1..20),
        scale in 0.1f64..10.0,
        p in prop::sample::select(vec![0.5f64, 1.0, 2.0]),
    ) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        let lhs = pnorm(&scaled, p);
        let rhs = scale * pnorm(&xs, p);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * rhs.abs().max(1.0));
    }

    /// Residual norm is symmetric and zero on equal inputs.
    #[test]
    fn residual_symmetric(
        a in prop::collection::vec(-10.0f64..10.0, 1..15),
        p in prop::sample::select(vec![0.5f64, 1.0, 2.0]),
    ) {
        let b: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
        prop_assert!((residual_pnorm(&a, &b, p) - residual_pnorm(&b, &a, p)).abs() < 1e-9);
        prop_assert_eq!(residual_pnorm(&a, &a, p), 0.0);
    }

    /// Zipf-Mandelbrot: pmf sums to one and is monotone decreasing for
    /// any parameters.
    #[test]
    fn zm_pmf_valid(alpha in 0.5f64..3.0, delta in 0.0f64..8.0, dmax in 16u64..2048) {
        let zm = ZipfMandelbrot::new(alpha, delta, dmax);
        let total: f64 = (1..=dmax).map(|d| zm.pmf(d)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for d in 1..dmax.min(64) {
            prop_assert!(zm.pmf(d) >= zm.pmf(d + 1));
        }
    }

    /// ZM cdf is the running sum of the pmf.
    #[test]
    fn zm_cdf_consistent(alpha in 0.5f64..3.0, dmax in 8u64..512) {
        let zm = ZipfMandelbrot::new(alpha, 1.0, dmax);
        let mut acc = 0.0;
        for d in 1..=dmax {
            acc += zm.pmf(d);
            prop_assert!((zm.cdf(d) - acc).abs() < 1e-9);
        }
    }

    /// Temporal models: bounded in (0, 1], symmetric, monotone decaying.
    #[test]
    fn temporal_models_well_behaved(
        tau in 0.0f64..20.0,
        sigma in 0.1f64..10.0,
        alpha in 0.1f64..4.0,
        beta in 0.01f64..50.0,
    ) {
        for m in [
            TemporalModel::Gaussian { sigma },
            TemporalModel::Cauchy { gamma: sigma },
            TemporalModel::ModifiedCauchy { alpha, beta },
        ] {
            let v = m.eval(tau);
            // The Gaussian may underflow to exactly 0 at extreme tau/sigma.
            prop_assert!((0.0..=1.0).contains(&v), "{m:?} at {tau}: {v}");
            prop_assert!((m.eval(-tau) - v).abs() < 1e-12);
            prop_assert!(m.eval(tau + 1.0) <= v + 1e-12);
        }
    }

    /// The fitted modified Cauchy always reproduces the peak at lag 0 and
    /// never has a negative residual.
    #[test]
    fn fit_respects_peak(
        peak in 0.05f64..1.0,
        alpha in 0.3f64..2.5,
        beta in 0.1f64..10.0,
    ) {
        let truth = TemporalModel::ModifiedCauchy { alpha, beta };
        let lags: Vec<f64> = (-7..=7).map(|m| m as f64).collect();
        let values: Vec<f64> = lags.iter().map(|&t| peak * truth.eval(t)).collect();
        let fit = fit_modified_cauchy(&lags, &values).unwrap();
        prop_assert!((fit.peak - peak).abs() < 1e-12);
        prop_assert!(fit.residual >= 0.0);
        prop_assert!((fit.eval(0.0) - peak).abs() < 1e-9);
        // Recovered parameters are in the right region.
        prop_assert!((fit.alpha - alpha).abs() < 0.4, "alpha {} vs {}", fit.alpha, alpha);
    }

    /// One-month drop is in (0, 1) and decreasing in beta.
    #[test]
    fn drop_monotone_in_beta(beta in 0.01f64..100.0) {
        let d = one_month_drop(beta);
        prop_assert!(d > 0.0 && d < 1.0);
        prop_assert!(one_month_drop(beta * 2.0) < d);
    }

    /// Quantiles are bounded by the extremes and monotone in q.
    #[test]
    fn quantiles_bounded(xs in prop::collection::vec(-1000.0f64..1000.0, 1..60)) {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut last = lo;
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = quantile(&xs, q).unwrap();
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prop_assert!(v >= last - 1e-9);
            last = v;
        }
    }

    /// Variance is non-negative and zero for constant data.
    #[test]
    fn variance_nonnegative(xs in prop::collection::vec(-100.0f64..100.0, 2..40)) {
        prop_assert!(variance(&xs) >= 0.0);
        let constant = vec![xs[0]; xs.len()];
        prop_assert!(variance(&constant).abs() < 1e-9);
        prop_assert!((mean(&constant) - xs[0]).abs() < 1e-9);
    }
}
