//! Traffic-matrix construction from captured windows.
//!
//! The paper's pipeline: packets → CryptoPAN anonymization → hierarchical
//! hypersparse GraphBLAS matrices (`2^13` leaves of `2^17` packets for a
//! `2^30` window). The same architecture is used here with the leaf count
//! held at `2^13` by default so leaf size scales with `N_V`.

use crate::capture::TelescopeWindow;
use obscor_anonymize::{CryptoPan, MemoCryptoPan};
use obscor_hypersparse::{
    Csr, DirMedium, HierarchicalAccumulator, SpillAccumulator, SpillConfig, SpillFault, SpillReport,
};
use std::path::Path;
use std::sync::Arc;

/// The paper's leaf count: a window is the hierarchical sum of `2^13`
/// leaf matrices.
pub const PAPER_LEAF_COUNT: usize = 1 << 13;

/// Build the window's traffic matrix with raw (non-anonymized) indices.
pub fn build_matrix(w: &TelescopeWindow) -> Csr<u64> {
    build_matrix_with(w, |ip| ip)
}

/// Build the window's traffic matrix with CryptoPAN-anonymized indices —
/// what the archive actually stores. Kept as the differential oracle for
/// [`build_anonymized_matrix_memo`], the ingest fast path.
pub fn build_anonymized_matrix(w: &TelescopeWindow, cp: &CryptoPan) -> Csr<u64> {
    build_matrix_with(w, |ip| cp.anonymize(ip))
}

/// Build the window's anonymized traffic matrix through the memoized
/// CryptoPAN (prefix-table + 16 AES calls per address). Bit-identical to
/// [`build_anonymized_matrix`] under the same key.
pub fn build_anonymized_matrix_memo(w: &TelescopeWindow, cp: &MemoCryptoPan) -> Csr<u64> {
    build_matrix_with(w, |ip| cp.anonymize(ip))
}

/// Build with an arbitrary index transform, using hierarchical
/// accumulation with the paper's leaf count.
pub fn build_matrix_with(w: &TelescopeWindow, map: impl Fn(u32) -> u32) -> Csr<u64> {
    let _span = obscor_obs::span("telescope.build_matrix");
    let leaf = (w.window.packets.len() / PAPER_LEAF_COUNT).max(1024);
    obscor_obs::gauge("telescope.build_matrix.leaf_capacity").set_max(leaf as u64);
    let mut acc = HierarchicalAccumulator::with_leaf_capacity(leaf);
    for p in &w.window.packets {
        acc.push_edge(map(p.src.0), map(p.dst.0));
    }
    obscor_obs::counter("telescope.build_matrix.edges_total").add(acc.len_pushed());
    acc.finalize()
}

/// Build the window's traffic matrix out-of-core: carry-level CSR parts
/// spill to `spill_dir` (the system temp dir when `None`) whenever tracked
/// live bytes exceed `budget`. Bit-identical to [`build_matrix`]; the
/// returned [`SpillReport`] records eviction/reload traffic and any
/// quarantined (unrecoverable) spill frames.
pub fn build_matrix_spilled(
    w: &TelescopeWindow,
    budget: Option<u64>,
    spill_dir: Option<&Path>,
) -> Result<(Csr<u64>, SpillReport), SpillFault> {
    build_matrix_spilled_with(w, |ip| ip, budget, spill_dir)
}

/// Out-of-core variant of [`build_matrix_with`]: same leaf sizing, same
/// index transform, but accumulated through a [`SpillAccumulator`] bound to
/// a fresh [`DirMedium`] so carry parts can live on disk.
pub fn build_matrix_spilled_with(
    w: &TelescopeWindow,
    map: impl Fn(u32) -> u32,
    budget: Option<u64>,
    spill_dir: Option<&Path>,
) -> Result<(Csr<u64>, SpillReport), SpillFault> {
    let _span = obscor_obs::span("telescope.build_matrix_spilled");
    let leaf = (w.window.packets.len() / PAPER_LEAF_COUNT).max(1024);
    obscor_obs::gauge("telescope.build_matrix.leaf_capacity").set_max(leaf as u64);
    let base = spill_dir.map(Path::to_path_buf).unwrap_or_else(std::env::temp_dir);
    let medium = DirMedium::create_in(&base)?;
    let config = SpillConfig { leaf_capacity: leaf, memory_budget: budget, ..SpillConfig::default() };
    let mut acc = SpillAccumulator::new(config, Arc::new(medium));
    for p in &w.window.packets {
        acc.push_edge(map(p.src.0), map(p.dst.0));
    }
    Ok(acc.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::capture_window;
    use obscor_hypersparse::reduce;
    use obscor_netmodel::Scenario;

    fn window() -> TelescopeWindow {
        let s = Scenario::paper_scaled(1 << 14, 5);
        capture_window(&s, &s.caida_windows[0])
    }

    #[test]
    fn matrix_conserves_packets() {
        let w = window();
        let m = build_matrix(&w);
        assert_eq!(reduce::valid_packets(&m), w.packets() as u64);
    }

    #[test]
    fn matrix_sources_match_window_sources() {
        let w = window();
        let m = build_matrix(&w);
        assert_eq!(reduce::unique_sources(&m) as usize, w.unique_sources());
    }

    #[test]
    fn only_external_to_internal_quadrant_is_populated() {
        // Fig 1: a darkspace has data only in the upper-left quadrant:
        // every row (source) is external, every column (dest) internal.
        let w = window();
        let m = build_matrix(&w);
        for &src in m.row_keys() {
            assert_ne!((src >> 24) as u8, 44, "internal source in darkspace matrix");
        }
        for &dst in m.col_indices() {
            assert_eq!((dst >> 24) as u8, 44, "external destination in darkspace matrix");
        }
    }

    #[test]
    fn anonymized_matrix_preserves_all_quantities() {
        let w = window();
        let raw = build_matrix(&w);
        let cp = CryptoPan::new(&[3u8; 32]);
        let anon = build_anonymized_matrix(&w, &cp);
        assert_eq!(
            reduce::NetworkQuantities::compute(&raw),
            reduce::NetworkQuantities::compute(&anon)
        );
        // But the index sets differ.
        assert_ne!(raw.row_keys(), anon.row_keys());
    }

    #[test]
    fn memoized_anonymized_matrix_is_bit_identical() {
        let w = window();
        let key = [0x5Au8; 32];
        let uncached = build_anonymized_matrix(&w, &CryptoPan::new(&key));
        let memoized = build_anonymized_matrix_memo(&w, &MemoCryptoPan::new(&key));
        assert_eq!(uncached, memoized);
    }

    #[test]
    fn spilled_matrix_is_bit_identical_under_any_budget() {
        let w = window();
        let oracle = build_matrix(&w);
        for budget in [None, Some(0), Some(1 << 20)] {
            let (m, report) = build_matrix_spilled(&w, budget, None).unwrap();
            assert_eq!(m, oracle, "budget {budget:?}");
            assert!(report.is_exact(), "budget {budget:?}: {report:?}");
        }
        // A zero budget cannot hold anything resident: every carry evicts.
        let (_, tight) = build_matrix_spilled(&w, Some(0), None).unwrap();
        assert!(tight.stats.evictions > 0);
        assert!(tight.stats.reloads > 0);
    }

    #[test]
    fn anonymized_sources_deanonymize_back() {
        let w = window();
        let cp = CryptoPan::new(&[9u8; 32]);
        let raw = build_matrix(&w);
        let anon = build_anonymized_matrix(&w, &cp);
        let mut recovered: Vec<u32> =
            anon.row_keys().iter().map(|&r| cp.deanonymize(r)).collect();
        recovered.sort_unstable();
        assert_eq!(recovered, raw.row_keys());
    }
}
