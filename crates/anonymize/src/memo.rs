//! Memoized CryptoPAN: a precomputed prefix subtree for the top 16 bits.
//!
//! CryptoPAN's one-time pad bit `i` depends only on the first `i` address
//! bits, so the pads of all addresses sharing a 16-bit prefix agree on
//! their top 16 bits. [`MemoCryptoPan`] exploits this by walking the whole
//! 16-level prefix tree once per key — `2^0 + 2^1 + … + 2^15 = 65535` AES
//! invocations — and flattening the top-16 pad bits into a `2^16`-entry
//! table. Each subsequent address then costs **one table lookup plus 16 AES
//! calls** (for bit positions 16..32) instead of 32 AES calls, and
//! [`MemoCryptoPan::anonymize_slice`] sorts batches so duplicate addresses
//! cost nothing and neighbours walk the table cache-resident.
//!
//! The memoized map is **bit-identical** to [`CryptoPan`]: both are built
//! from the same [`CryptoPan::pad_bit`] block construction, and the
//! differential property suite (`tests/properties.rs`) pins
//! `memo ≡ uncached` over full-range address samples.
//!
//! Opt-in metrics (enable with [`enable_cache_metrics`]; never emitted
//! otherwise, keeping the default 80-name metrics schema untouched):
//!
//! * `anonymize.cache.table_builds_total` — prefix tables built (per key)
//! * `anonymize.cache.prefix_hits_total` — addresses whose top-16 pad came
//!   from the table
//! * `anonymize.cache.suffix_aes_total` — AES calls spent on suffix bits
//! * `anonymize.cache.batch_dup_hits_total` — batch entries served by the
//!   previous identical address

use std::sync::atomic::{AtomicBool, Ordering};

use crate::cryptopan::CryptoPan;

/// Number of prefix bits resolved by the flat table.
const TABLE_BITS: u32 = 16;

static CACHE_METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Opt in to `anonymize.cache.*` metrics emission for this process.
///
/// Off by default so the pinned default metrics schema never changes; the
/// CLI exposes this through `--fast-path-metrics`.
pub fn enable_cache_metrics() {
    CACHE_METRICS_ENABLED.store(true, Ordering::Relaxed); // ordering: set-once enable flag; callers tolerate a stale false
}

/// Whether [`enable_cache_metrics`] has been called.
pub fn cache_metrics_enabled() -> bool {
    CACHE_METRICS_ENABLED.load(Ordering::Relaxed) // ordering: enable-flag read; staleness only delays metric emission
}

/// A [`CryptoPan`] with the top-16-bit pad subtree precomputed.
///
/// Construction costs 65535 AES calls; every anonymization after that
/// costs 16 (vs. 32 uncached). Output is bit-identical to the wrapped
/// [`CryptoPan`] by construction.
pub struct MemoCryptoPan {
    inner: CryptoPan,
    /// `table[p]` holds pad bits 0..16 (MSB-first in the u16) shared by
    /// every address whose top 16 bits equal `p`.
    table: Vec<u16>,
}

impl MemoCryptoPan {
    /// Initialize from a 32-byte key (same key schedule as
    /// [`CryptoPan::new`]) and precompute the prefix table.
    pub fn new(key: &[u8; 32]) -> Self {
        Self::from_pan(CryptoPan::new(key))
    }

    /// Wrap an existing [`CryptoPan`], precomputing the prefix table.
    pub fn from_pan(inner: CryptoPan) -> Self {
        let mut table = vec![0u16; 1 << TABLE_BITS];
        // Level `i` of the prefix tree: one AES call per length-`i` prefix
        // fixes pad bit `i` for the whole subtree below it.
        for i in 0..TABLE_BITS {
            let prefixes = 1u32 << i;
            for q in 0..prefixes {
                let addr = if i == 0 { 0 } else { q << (32 - i) };
                if inner.pad_bit(addr, i) != 0 {
                    let bit = 1u16 << (15 - i);
                    let lo = (q << (TABLE_BITS - i)) as usize;
                    let hi = ((q + 1) << (TABLE_BITS - i)) as usize;
                    for entry in &mut table[lo..hi] {
                        *entry |= bit;
                    }
                }
            }
        }
        if cache_metrics_enabled() {
            obscor_obs::counter("anonymize.cache.table_builds_total").inc();
        }
        Self { inner, table }
    }

    /// Anonymize one address: table lookup for the top 16 pad bits, 16 AES
    /// calls for the rest. Bit-identical to [`CryptoPan::anonymize`].
    ///
    /// With the `strict-invariants` feature enabled, every call verifies
    /// its own inverse, mirroring the uncached path.
    pub fn anonymize(&self, addr: u32) -> u32 {
        let hi = u32::from(self.table[(addr >> TABLE_BITS) as usize]);
        let mut lo = 0u32;
        for pos in TABLE_BITS..32 {
            lo = (lo << 1) | self.inner.pad_bit(addr, pos);
        }
        if cache_metrics_enabled() {
            obscor_obs::counter("anonymize.cache.prefix_hits_total").inc();
            obscor_obs::counter("anonymize.cache.suffix_aes_total")
                .add(u64::from(32 - TABLE_BITS));
        }
        let anon = addr ^ ((hi << TABLE_BITS) | lo);
        #[cfg(feature = "strict-invariants")]
        {
            if self.deanonymize(anon) != addr {
                // audit:allow(panic-path) — strict-invariants mode aborts on a broken bijection by contract
                panic!("memoized CryptoPAn round-trip failed for {addr:#010x}");
            }
        }
        anon
    }

    /// Invert the anonymization: the top 16 real bits come from a walk of
    /// the prefix table (no AES at all), the rest bit-sequentially as in
    /// [`CryptoPan::deanonymize`].
    pub fn deanonymize(&self, anon: u32) -> u32 {
        let mut real = 0u32;
        for pos in 0..TABLE_BITS {
            // `real` holds the first `pos` recovered bits (rest zero), so
            // its top 16 bits index a table entry whose bit `15 - pos`
            // depends only on those recovered bits.
            let entry = self.table[(real >> TABLE_BITS) as usize];
            let pad_bit = u32::from((entry >> (15 - pos)) & 1);
            let anon_bit = (anon >> (31 - pos)) & 1;
            real |= (anon_bit ^ pad_bit) << (31 - pos);
        }
        for pos in TABLE_BITS..32 {
            let pad_bit = self.inner.pad_bit(real, pos);
            let anon_bit = (anon >> (31 - pos)) & 1;
            real |= (anon_bit ^ pad_bit) << (31 - pos);
        }
        real
    }

    /// Anonymize a batch in place, sorted by address so that duplicate
    /// addresses are anonymized once and neighbouring prefixes walk the
    /// table cache-resident. Results land in the original positions.
    pub fn anonymize_slice(&self, addrs: &mut [u32]) {
        if addrs.len() < 2 {
            for a in addrs.iter_mut() {
                *a = self.anonymize(*a);
            }
            return;
        }
        let mut order: Vec<usize> = (0..addrs.len()).collect();
        order.sort_unstable_by_key(|&i| addrs[i]);
        let mut results = vec![0u32; addrs.len()];
        let mut prev: Option<(u32, u32)> = None;
        let mut dup_hits = 0u64;
        for &i in &order {
            let addr = addrs[i];
            let anon = match prev {
                Some((p_addr, p_anon)) if p_addr == addr => {
                    dup_hits += 1;
                    p_anon
                }
                _ => self.anonymize(addr),
            };
            prev = Some((addr, anon));
            results[i] = anon;
        }
        addrs.copy_from_slice(&results);
        if cache_metrics_enabled() && dup_hits > 0 {
            obscor_obs::counter("anonymize.cache.batch_dup_hits_total").add(dup_hits);
        }
    }

    /// Borrow the wrapped uncached anonymizer (the differential oracle).
    pub fn uncached(&self) -> &CryptoPan {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u8) -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = seed.wrapping_mul(31).wrapping_add(i as u8);
        }
        k
    }

    fn sample_addrs() -> Vec<u32> {
        let mut v: Vec<u32> =
            vec![0, 1, 0xFFFF_FFFF, 0x8000_0000, 0x7FFF_FFFF, 0x0A01_0203, 0x0A01_0204];
        // Deterministic full-range sample.
        v.extend((0..2048u32).map(|i| i.wrapping_mul(0x9E37_79B9)));
        v
    }

    #[test]
    fn memo_is_bit_identical_to_uncached() {
        let memo = MemoCryptoPan::new(&key(1));
        let plain = CryptoPan::new(&key(1));
        for addr in sample_addrs() {
            assert_eq!(
                memo.anonymize(addr),
                plain.anonymize(addr),
                "memoized path diverged at {addr:#010x}"
            );
        }
    }

    #[test]
    fn memo_round_trips() {
        let memo = MemoCryptoPan::new(&key(2));
        for addr in sample_addrs() {
            assert_eq!(memo.deanonymize(memo.anonymize(addr)), addr);
        }
    }

    #[test]
    fn memo_deanonymize_inverts_uncached() {
        let memo = MemoCryptoPan::new(&key(3));
        let plain = CryptoPan::new(&key(3));
        for addr in sample_addrs() {
            assert_eq!(memo.deanonymize(plain.anonymize(addr)), addr);
        }
    }

    #[test]
    fn slice_matches_scalar_and_handles_duplicates() {
        let memo = MemoCryptoPan::new(&key(4));
        let mut v = vec![5u32, 5, 1, 0xFFFF_0000, 1, 5, 0];
        let expect: Vec<u32> = v.iter().map(|&a| memo.anonymize(a)).collect();
        memo.anonymize_slice(&mut v);
        assert_eq!(v, expect);

        let mut empty: Vec<u32> = vec![];
        memo.anonymize_slice(&mut empty);
        let mut one = vec![42u32];
        memo.anonymize_slice(&mut one);
        assert_eq!(one[0], memo.anonymize(42));
    }

    #[test]
    fn from_pan_equals_new() {
        let a = MemoCryptoPan::new(&key(5));
        let b = MemoCryptoPan::from_pan(CryptoPan::new(&key(5)));
        for addr in [0u32, 99, 0xDEAD_BEEF] {
            assert_eq!(a.anonymize(addr), b.anonymize(addr));
        }
        assert_eq!(a.uncached().anonymize(7), b.uncached().anonymize(7));
    }

    #[test]
    fn cache_metrics_are_silent_until_enabled() {
        if cache_metrics_enabled() {
            return;
        }
        let before = obscor_obs::snapshot();
        let memo = MemoCryptoPan::new(&key(6));
        let mut v = vec![1u32, 1, 2];
        memo.anonymize_slice(&mut v);
        let delta = obscor_obs::snapshot().delta_since(&before);
        assert!(delta.counters.keys().all(|k| !k.starts_with("anonymize.cache.")));
    }
}
