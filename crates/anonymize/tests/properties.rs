//! Property-based tests for CryptoPAN and the sharing workflows.

use obscor_anonymize::cryptopan::{common_prefix_len, CryptoPan};
use obscor_anonymize::sharing::{raw_overlap, Holder};
use obscor_anonymize::MemoCryptoPan;
use proptest::prelude::*;
use std::sync::OnceLock;

fn key_from(key_seed: u64) -> [u8; 32] {
    let mut key = [0u8; 32];
    let mut x = key_seed | 1;
    for b in key.iter_mut() {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *b = (x >> 56) as u8;
    }
    key
}

fn cp_from(key_seed: u64) -> CryptoPan {
    CryptoPan::new(&key_from(key_seed))
}

/// Two fixed uncached/memoized pairs under distinct keys. The memo table
/// build is too expensive to repeat per proptest case, so the *schemes*
/// are fixed and the *addresses* range over the full u32 space.
fn memo_pair(second: bool) -> &'static (CryptoPan, MemoCryptoPan) {
    static A: OnceLock<(CryptoPan, MemoCryptoPan)> = OnceLock::new();
    static B: OnceLock<(CryptoPan, MemoCryptoPan)> = OnceLock::new();
    let (cell, seed) = if second {
        (&B, 0x0F1E_2D3C_4B5A_6978u64)
    } else {
        (&A, 0x1234_5678_9ABC_DEF0u64)
    };
    cell.get_or_init(|| {
        let key = key_from(seed);
        (CryptoPan::new(&key), MemoCryptoPan::new(&key))
    })
}

proptest! {
    /// Anonymization is invertible for every address.
    #[test]
    fn round_trip(addr in any::<u32>(), seed in any::<u64>()) {
        let cp = cp_from(seed);
        prop_assert_eq!(cp.deanonymize(cp.anonymize(addr)), addr);
    }

    /// The defining CryptoPAN property: common prefixes are preserved
    /// *exactly* — no longer, no shorter.
    #[test]
    fn prefix_preservation(a in any::<u32>(), b in any::<u32>(), seed in any::<u64>()) {
        let cp = cp_from(seed);
        prop_assert_eq!(
            common_prefix_len(cp.anonymize(a), cp.anonymize(b)),
            common_prefix_len(a, b)
        );
    }

    /// Distinct inputs map to distinct outputs (injectivity on samples).
    #[test]
    fn injective(a in any::<u32>(), b in any::<u32>(), seed in any::<u64>()) {
        prop_assume!(a != b);
        let cp = cp_from(seed);
        prop_assert_ne!(cp.anonymize(a), cp.anonymize(b));
    }

    /// Every sharing workflow preserves the overlap of two address sets.
    #[test]
    fn workflows_preserve_overlap(
        mut set_a in prop::collection::vec(any::<u32>(), 1..50),
        mut set_b in prop::collection::vec(any::<u32>(), 1..50),
        ka in any::<u64>(),
        kb in any::<u64>(),
        kc in any::<u64>(),
    ) {
        set_a.sort_unstable();
        set_a.dedup();
        set_b.sort_unstable();
        set_b.dedup();
        let truth = raw_overlap(&set_a, &set_b);

        let mut key = [0u8; 32];
        let fill = |seed: u64, key: &mut [u8; 32]| {
            let mut x = seed | 1;
            for b in key.iter_mut() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
                *b = (x >> 48) as u8;
            }
        };
        fill(ka, &mut key);
        let holder_a = Holder::new("a", &key);
        fill(kb, &mut key);
        let holder_b = Holder::new("b", &key);
        fill(kc, &mut key);
        let common = CryptoPan::new(&key);

        let (pub_a, pub_b) = (holder_a.publish(&set_a), holder_b.publish(&set_b));

        // Workflow 1.
        let ra = holder_a.deanonymize_subset(&pub_a, pub_a.len()).unwrap();
        let rb = holder_b.deanonymize_subset(&pub_b, pub_b.len()).unwrap();
        prop_assert_eq!(raw_overlap(&ra, &rb), truth);

        // Workflow 2.
        let ca = holder_a.reanonymize_subset(&pub_a, &common, pub_a.len()).unwrap();
        let cb = holder_b.reanonymize_subset(&pub_b, &common, pub_b.len()).unwrap();
        prop_assert_eq!(raw_overlap(&ca, &cb), truth);

        // Workflow 3.
        let ta = holder_a.transformation_table(&pub_a, &common);
        let tb = holder_b.transformation_table(&pub_b, &common);
        prop_assert_eq!(
            raw_overlap(&ta.translate_all(&pub_a), &tb.translate_all(&pub_b)),
            truth
        );
    }

    /// The memoized scheme is bit-identical to uncached CryptoPAN across
    /// the full address range, under more than one key.
    #[test]
    fn memo_equals_uncached(addr in any::<u32>(), second in any::<bool>()) {
        let (cp, memo) = memo_pair(second);
        prop_assert_eq!(memo.anonymize(addr), cp.anonymize(addr));
    }

    /// The memoized scheme inverts itself, and inverts the uncached
    /// scheme's output (they are the same bijection).
    #[test]
    fn memo_round_trip(addr in any::<u32>(), second in any::<bool>()) {
        let (cp, memo) = memo_pair(second);
        prop_assert_eq!(memo.deanonymize(memo.anonymize(addr)), addr);
        prop_assert_eq!(memo.deanonymize(cp.anonymize(addr)), addr);
    }

    /// Prefix preservation holds through the memo table exactly: common
    /// prefixes are neither extended nor shortened.
    #[test]
    fn memo_prefix_preservation(a in any::<u32>(), b in any::<u32>(), second in any::<bool>()) {
        let (_, memo) = memo_pair(second);
        prop_assert_eq!(
            common_prefix_len(memo.anonymize(a), memo.anonymize(b)),
            common_prefix_len(a, b)
        );
    }

    /// The batched sort-by-prefix path equals the scalar path (and hence
    /// the uncached scheme) element-wise, duplicates and all.
    #[test]
    fn memo_slice_equals_scalar(
        addrs in prop::collection::vec(any::<u32>(), 0..64),
        second in any::<bool>(),
    ) {
        let (cp, memo) = memo_pair(second);
        let mut batched = addrs.clone();
        memo.anonymize_slice(&mut batched);
        let scalar: Vec<u32> = addrs.iter().map(|&a| cp.anonymize(a)).collect();
        prop_assert_eq!(batched, scalar);
    }

    /// Anonymizing a sorted set preserves relative order of shared-prefix
    /// groups: membership counts per /8 are permuted, never merged.
    #[test]
    fn slash8_group_sizes_preserved(
        addrs in prop::collection::vec(any::<u32>(), 1..80),
        seed in any::<u64>(),
    ) {
        let cp = cp_from(seed);
        let count_groups = |v: &[u32]| {
            let mut octets: Vec<u8> = v.iter().map(|a| (a >> 24) as u8).collect();
            octets.sort_unstable();
            octets.dedup();
            octets.len()
        };
        let anon: Vec<u32> = addrs.iter().map(|&a| cp.anonymize(a)).collect();
        prop_assert_eq!(count_groups(&addrs), count_groups(&anon));
    }
}
