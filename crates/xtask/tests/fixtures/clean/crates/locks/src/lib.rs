// `lock-order` negatives: every function takes `accounts` before
// `journal`, so the workspace lock graph is a straight line — no cycle.

use std::sync::Mutex;

pub struct Bank {
    pub accounts: Mutex<Vec<u64>>,
    pub journal: Mutex<Vec<String>>,
}

pub fn transfer(b: &Bank) {
    let _a = b.accounts.lock();
    let _j = b.journal.lock();
}

pub fn settle(b: &Bank) {
    let _a = b.accounts.lock();
    let _j = b.journal.lock();
}
