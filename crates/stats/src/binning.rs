//! Binary-logarithmic pooling of heavy-tailed distributions.
//!
//! "Because of the relatively large values of d observed, the measured
//! probability at large d often exhibits large fluctuations. However, the
//! cumulative probability lacks sufficient detail... so it is typical to
//! pool the differential cumulative probability with logarithmic bins in d:
//! `D_t(d_i) = P_t(d_i) − P_t(d_{i−1})` where `d_i = 2^i`."
//!
//! Bin `i` therefore covers the half-open degree interval
//! `(2^{i−1}, 2^i]` for `i ≥ 1`, and bin `0` holds exactly `d = 1`. All of
//! the paper's distributions use this binning so that data sets of
//! different sizes compare consistently.

use crate::histogram::DegreeHistogram;

/// The bin index of degree `d`: the `i` such that `d ∈ (2^{i−1}, 2^i]`
/// (`i = ceil(log2 d)`; `d = 1` maps to bin 0).
///
/// # Panics
/// Panics if `d == 0`.
pub fn log2_bin(d: u64) -> u32 {
    assert!(d > 0, "degrees are positive");
    // ceil(log2(d)) == 64 - (d-1).leading_zeros() for d > 1.
    if d == 1 {
        0
    } else {
        64 - (d - 1).leading_zeros()
    }
}

/// The representative degree `d_i = 2^i` of bin `i`.
pub fn bin_representative(i: u32) -> u64 {
    1u64 << i
}

/// A log2-binned distribution: `values[i]` is the pooled probability (or
/// fraction) attached to representative degree `2^i`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Log2Binned {
    /// Pooled value per bin, indexed by bin number.
    pub values: Vec<f64>,
}

impl Log2Binned {
    /// Number of bins.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether there are no bins.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate `(d_i, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.values.iter().enumerate().map(|(i, &v)| (bin_representative(i as u32), v))
    }

    /// The pooled value of the bin containing degree `d` (0.0 outside).
    pub fn value_for_degree(&self, d: u64) -> f64 {
        let i = log2_bin(d) as usize;
        self.values.get(i).copied().unwrap_or(0.0)
    }

    /// Total pooled mass.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Normalize so the pooled masses sum to one (no-op on empty/zero).
    pub fn normalized(&self) -> Log2Binned {
        let t = self.total();
        // audit:allow(float-eq) — exact-zero sentinel: only an all-zero histogram sums to literal 0.0
        if t == 0.0 {
            return self.clone();
        }
        Log2Binned { values: self.values.iter().map(|v| v / t).collect() }
    }
}

/// Pool a degree histogram into the paper's differential cumulative
/// probability `D_t(d_i)`.
pub fn differential_cumulative(h: &DegreeHistogram) -> Log2Binned {
    if h.total() == 0 {
        return Log2Binned::default();
    }
    let n_bins = log2_bin(h.d_max()) as usize + 1;
    let mut values = vec![0.0; n_bins];
    for (d, c) in h.iter() {
        values[log2_bin(d) as usize] += c as f64;
    }
    let total = h.total() as f64;
    for v in &mut values {
        *v /= total;
    }
    Log2Binned { values }
}

/// Pool a histogram into *linear* bins of the given width — the baseline
/// the paper's logarithmic binning is chosen against. On heavy-tailed
/// data, linear bins leave the tail as isolated single-count spikes
/// (large relative fluctuations), which is exactly why Clauset-Shalizi-
/// Newman-style log binning is used instead; the ablation tests
/// demonstrate the difference quantitatively.
pub fn linear_binned(h: &DegreeHistogram, width: u64) -> Vec<(u64, f64)> {
    assert!(width > 0, "bin width must be positive");
    if h.total() == 0 {
        return Vec::new();
    }
    let total = h.total() as f64;
    let mut out: Vec<(u64, f64)> = Vec::new();
    for (d, c) in h.iter() {
        let bin_start = ((d - 1) / width) * width + 1;
        let mass = c as f64 / total;
        match out.last_mut() {
            Some((s, acc)) if *s == bin_start => *acc += mass,
            _ => out.push((bin_start, mass)),
        }
    }
    out
}

/// The fraction of occupied bins holding fewer than `min_count` raw
/// observations. Starved bins carry ~100 % relative sampling error; a
/// binning suited to heavy tails keeps this fraction small by pooling the
/// sparse tail — the quantitative argument for the paper's logarithmic
/// bins over linear ones.
pub fn starved_bin_fraction(counts: &[u64], min_count: u64) -> f64 {
    let occupied: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
    if occupied.is_empty() {
        return 0.0;
    }
    occupied.iter().filter(|&&c| c < min_count).count() as f64 / occupied.len() as f64
}

/// Raw per-bin counts under log2 binning.
pub fn log2_bin_counts(h: &DegreeHistogram) -> Vec<u64> {
    if h.total() == 0 {
        return Vec::new();
    }
    let mut counts = vec![0u64; log2_bin(h.d_max()) as usize + 1];
    for (d, c) in h.iter() {
        counts[log2_bin(d) as usize] += c;
    }
    counts
}

/// Raw per-bin counts under linear binning of the given width.
pub fn linear_bin_counts(h: &DegreeHistogram, width: u64) -> Vec<u64> {
    assert!(width > 0, "bin width must be positive");
    if h.total() == 0 {
        return Vec::new();
    }
    let n_bins = ((h.d_max() - 1) / width + 1) as usize;
    let mut counts = vec![0u64; n_bins];
    for (d, c) in h.iter() {
        counts[((d - 1) / width) as usize] += c;
    }
    counts
}

/// Pool an arbitrary pmf `(d, p(d))` into the same bins (used to bin model
/// distributions identically to data, as required for a fair fit).
pub fn pool_pmf<I: IntoIterator<Item = (u64, f64)>>(pmf: I) -> Log2Binned {
    let mut values: Vec<f64> = Vec::new();
    for (d, p) in pmf {
        let i = log2_bin(d) as usize;
        if i >= values.len() {
            values.resize(i + 1, 0.0);
        }
        values[i] += p;
    }
    Log2Binned { values }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_boundaries_follow_paper_convention() {
        // Bin i covers (2^{i-1}, 2^i]: powers of two land in their own bin.
        assert_eq!(log2_bin(1), 0);
        assert_eq!(log2_bin(2), 1);
        assert_eq!(log2_bin(3), 2);
        assert_eq!(log2_bin(4), 2);
        assert_eq!(log2_bin(5), 3);
        assert_eq!(log2_bin(8), 3);
        assert_eq!(log2_bin(9), 4);
        assert_eq!(log2_bin(1 << 20), 20);
        assert_eq!(log2_bin((1 << 20) + 1), 21);
    }

    #[test]
    fn representative_is_power_of_two() {
        for i in 0..30 {
            assert_eq!(log2_bin(bin_representative(i)), i);
        }
    }

    #[test]
    fn differential_cumulative_matches_definition() {
        // D(d_i) must equal P(2^i) - P(2^{i-1}) of the raw histogram.
        let h = DegreeHistogram::from_degrees(vec![1, 1, 2, 3, 4, 5, 8, 9, 100]);
        let binned = differential_cumulative(&h);
        for i in 0..binned.len() as u32 {
            let hi = h.cumulative(1 << i);
            let lo = if i == 0 { 0.0 } else { h.cumulative(1 << (i - 1)) };
            assert!(
                (binned.values[i as usize] - (hi - lo)).abs() < 1e-12,
                "bin {i}: {} vs {}",
                binned.values[i as usize],
                hi - lo
            );
        }
    }

    #[test]
    fn pooled_mass_is_conserved() {
        let h = DegreeHistogram::from_degrees(1..=1000);
        let binned = differential_cumulative(&h);
        assert!((binned.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn value_for_degree_indexes_bins() {
        let h = DegreeHistogram::from_degrees(vec![1, 2, 2, 4]);
        let binned = differential_cumulative(&h);
        assert!((binned.value_for_degree(1) - 0.25).abs() < 1e-12);
        assert!((binned.value_for_degree(2) - 0.5).abs() < 1e-12);
        assert!((binned.value_for_degree(3) - 0.25).abs() < 1e-12); // bin of 4 is (2,4]
        assert_eq!(binned.value_for_degree(1 << 40), 0.0);
    }

    #[test]
    fn pool_pmf_matches_histogram_pooling() {
        let degrees = vec![1u64, 2, 2, 5, 9, 9, 9];
        let h = DegreeHistogram::from_degrees(degrees.clone());
        let n = degrees.len() as f64;
        let pmf = h.iter().map(|(d, c)| (d, c as f64 / n));
        let a = pool_pmf(pmf);
        let b = differential_cumulative(&h);
        for (x, y) in a.values.iter().zip(&b.values) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_histogram_gives_empty_binning() {
        assert!(differential_cumulative(&DegreeHistogram::new()).is_empty());
        assert!(linear_binned(&DegreeHistogram::new(), 10).is_empty());
    }

    #[test]
    fn linear_binning_conserves_mass() {
        let h = DegreeHistogram::from_degrees((1..=500).map(|d| d % 37 + 1));
        let binned = linear_binned(&h, 8);
        let mass: f64 = binned.iter().map(|(_, v)| v).sum();
        assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_bin_starts_are_aligned() {
        let h = DegreeHistogram::from_degrees(vec![1, 5, 9, 10, 11, 25]);
        let binned = linear_binned(&h, 10);
        let starts: Vec<u64> = binned.iter().map(|(s, _)| *s).collect();
        assert_eq!(starts, vec![1, 11, 21]);
    }

    #[test]
    fn log_binning_starves_fewer_bins_on_heavy_tails() {
        // Ablation (DESIGN.md §6): on a power-law sample, linear bins in
        // the tail hold 0-or-1 counts (useless statistics) while log bins
        // pool the tail into well-populated bins.
        use rand::SeedableRng;
        let zm = crate::zipf::ZipfMandelbrot::new(1.5, 0.0, 1 << 14);
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let h = DegreeHistogram::from_degrees(zm.sample_n(&mut rng, 50_000));
        // The sampled tail must actually reach isolated large degrees for
        // the comparison to be meaningful.
        assert!(h.d_max() > 1000, "d_max {}", h.d_max());
        let log_starved = starved_bin_fraction(&log2_bin_counts(&h), 10);
        let lin_starved = starved_bin_fraction(&linear_bin_counts(&h, 16), 10);
        assert!(
            log_starved + 0.3 < lin_starved,
            "log starved {log_starved:.2} vs linear starved {lin_starved:.2}"
        );
    }

    #[test]
    fn bin_counts_conserve_observations() {
        let h = DegreeHistogram::from_degrees(vec![1, 2, 3, 100, 1000, 1000]);
        assert_eq!(log2_bin_counts(&h).iter().sum::<u64>(), h.total());
        assert_eq!(linear_bin_counts(&h, 7).iter().sum::<u64>(), h.total());
    }

    #[test]
    fn starved_fraction_edge_cases() {
        assert_eq!(starved_bin_fraction(&[], 10), 0.0);
        assert_eq!(starved_bin_fraction(&[0, 0], 10), 0.0);
        assert_eq!(starved_bin_fraction(&[5, 20], 10), 0.5);
    }

    #[test]
    fn normalized_sums_to_one() {
        let b = Log2Binned { values: vec![2.0, 6.0] };
        let n = b.normalized();
        assert!((n.total() - 1.0).abs() < 1e-12);
        assert!((n.values[1] - 0.75).abs() < 1e-12);
    }
}
