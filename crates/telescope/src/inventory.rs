//! Table I (CAIDA side): window inventory rows.

use crate::capture::TelescopeWindow;

/// One CAIDA row of Table I.
#[derive(Clone, Debug, PartialEq)]
pub struct InventoryRow {
    /// Collection start time label.
    pub start_time: String,
    /// Window duration in seconds (varies at constant packets).
    pub duration_secs: f64,
    /// Packets in the window (`N_V`).
    pub packets: u64,
    /// Unique sources observed.
    pub sources: u64,
}

/// Build the inventory from captured windows.
pub fn inventory(windows: &[TelescopeWindow]) -> Vec<InventoryRow> {
    windows
        .iter()
        .map(|w| InventoryRow {
            start_time: w.label.clone(),
            duration_secs: w.duration_secs(),
            packets: w.packets() as u64,
            sources: w.unique_sources() as u64,
        })
        .collect()
}

/// Render rows in the shape of Table I's CAIDA columns.
pub fn render(rows: &[InventoryRow]) -> String {
    let mut s = String::from(
        "CAIDA Start Time      Duration   Packets      Sources\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<21} {:>6.0} sec {:>12} {:>10}\n",
            r.start_time, r.duration_secs, r.packets, r.sources
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::capture_all_windows;
    use obscor_netmodel::Scenario;

    #[test]
    fn inventory_matches_windows() {
        let s = Scenario::paper_scaled(1 << 14, 3);
        let windows = capture_all_windows(&s);
        let inv = inventory(&windows);
        assert_eq!(inv.len(), 5);
        for (row, w) in inv.iter().zip(&windows) {
            assert_eq!(row.packets, s.n_v as u64);
            assert_eq!(row.start_time, w.label);
            assert!(row.sources > 0);
            assert!(row.duration_secs > 0.0);
        }
    }

    #[test]
    fn render_has_header_and_rows() {
        let rows = vec![InventoryRow {
            start_time: "2020-06-17-12:00:00".into(),
            duration_secs: 1594.0,
            packets: 1 << 30,
            sources: 670_304,
        }];
        let out = render(&rows);
        assert!(out.contains("CAIDA Start Time"));
        assert!(out.contains("2020-06-17-12:00:00"));
        assert!(out.contains("670304"));
        assert_eq!(out.lines().count(), 2);
    }
}
