//! The study's month grid.
//!
//! All model time is measured in fractional *months* since the start of
//! the observation span (a deliberate simplification: the paper's
//! correlation analysis is indexed by month, and its finest temporal
//! feature — the CAIDA window — is three orders of magnitude shorter than
//! a month, so nothing depends on calendar-exact month lengths).

/// A contiguous grid of calendar months, e.g. 2020-02 .. 2021-04.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MonthGrid {
    start_year: i32,
    start_month: u32,
    n_months: usize,
}

impl MonthGrid {
    /// A grid of `n_months` starting at `year`-`month`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ month ≤ 12` and `n_months ≥ 1`.
    pub fn new(year: i32, month: u32, n_months: usize) -> Self {
        assert!((1..=12).contains(&month), "month must be 1..=12");
        assert!(n_months >= 1, "grid needs at least one month");
        Self { start_year: year, start_month: month, n_months }
    }

    /// The paper's GreyNoise span: 15 months from 2020-02.
    pub fn paper_span() -> Self {
        Self::new(2020, 2, 15)
    }

    /// Number of months in the grid.
    pub fn len(&self) -> usize {
        self.n_months
    }

    /// Whether the grid is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.n_months == 0
    }

    /// The `YYYY-MM` label of month index `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn label(&self, i: usize) -> String {
        assert!(i < self.n_months, "month index out of range");
        let total = self.start_year * 12 + (self.start_month as i32 - 1) + i as i32;
        let year = total.div_euclid(12);
        let month = total.rem_euclid(12) + 1;
        format!("{year:04}-{month:02}")
    }

    /// All labels in order.
    pub fn labels(&self) -> Vec<String> {
        (0..self.n_months).map(|i| self.label(i)).collect()
    }

    /// The index of a `YYYY-MM` label, if it lies on the grid.
    pub fn index_of(&self, label: &str) -> Option<usize> {
        self.labels().iter().position(|l| l == label)
    }

    /// Model-time coordinate (fractional months since grid start) of a
    /// calendar instant within the grid. Days use a 30-day month and hours
    /// a 24-hour day; precision beyond that is irrelevant at month-scale
    /// analysis.
    pub fn coord(&self, year: i32, month: u32, day: u32, hour: u32) -> f64 {
        let months =
            (year * 12 + month as i32 - 1) - (self.start_year * 12 + self.start_month as i32 - 1);
        months as f64 + (day.saturating_sub(1)) as f64 / 30.0 + hour as f64 / (30.0 * 24.0)
    }

    /// The half-open model-time interval `[i, i+1)` of month `i`.
    pub fn month_interval(&self, i: usize) -> (f64, f64) {
        assert!(i < self.n_months, "month index out of range");
        (i as f64, i as f64 + 1.0)
    }

    /// Total span in months.
    pub fn span(&self) -> f64 {
        self.n_months as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_span_matches_table1() {
        let g = MonthGrid::paper_span();
        assert_eq!(g.len(), 15);
        assert_eq!(g.label(0), "2020-02");
        assert_eq!(g.label(10), "2020-12");
        assert_eq!(g.label(14), "2021-04");
    }

    #[test]
    fn year_rollover() {
        let g = MonthGrid::new(2020, 11, 4);
        assert_eq!(g.labels(), vec!["2020-11", "2020-12", "2021-01", "2021-02"]);
    }

    #[test]
    fn index_of_round_trips() {
        let g = MonthGrid::paper_span();
        for i in 0..g.len() {
            assert_eq!(g.index_of(&g.label(i)), Some(i));
        }
        assert_eq!(g.index_of("2019-01"), None);
    }

    #[test]
    fn coord_of_caida_windows() {
        let g = MonthGrid::paper_span();
        // 2020-06-17 12:00 sits a bit past the middle of month index 4.
        let c = g.coord(2020, 6, 17, 12);
        assert!((c - (4.0 + 16.0 / 30.0 + 0.5 / 30.0)).abs() < 1e-9);
        // Month starts coincide with integer coordinates.
        assert_eq!(g.coord(2020, 2, 1, 0), 0.0);
        assert_eq!(g.coord(2020, 3, 1, 0), 1.0);
        assert_eq!(g.coord(2021, 4, 1, 0), 14.0);
    }

    #[test]
    fn month_interval_is_unit() {
        let g = MonthGrid::paper_span();
        assert_eq!(g.month_interval(0), (0.0, 1.0));
        assert_eq!(g.month_interval(14), (14.0, 15.0));
        assert_eq!(g.span(), 15.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        let _ = MonthGrid::paper_span().label(15);
    }

    #[test]
    #[should_panic(expected = "1..=12")]
    fn bad_month_panics() {
        let _ = MonthGrid::new(2020, 13, 1);
    }
}
