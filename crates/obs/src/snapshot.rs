//! Point-in-time metric snapshots and the stable `obscor.metrics.v1` JSON
//! schema.
//!
//! # Schema
//!
//! ```json
//! {
//!   "schema": "obscor.metrics.v1",
//!   "counters":   { "<name>": <u64>, ... },
//!   "gauges":     { "<name>": <u64>, ... },
//!   "histograms": {
//!     "<name>": {
//!       "count": <u64>,
//!       "sum":   <u64>,
//!       "min":   <u64>,            // omitted when count == 0
//!       "max":   <u64>,            // omitted when count == 0
//!       "buckets": { "<index>": <u64>, ... }   // nonzero log2 buckets only
//!     }, ...
//!   }
//! }
//! ```
//!
//! Keys are emitted in sorted order (all maps are `BTreeMap`s), values are
//! unsigned integers only, and absent sections are written as empty objects
//! — so byte-identical inputs produce byte-identical documents and the file
//! diffs cleanly across runs. Bucket `<index>` is the log2 bucket number of
//! [`crate::metrics::Histogram::bucket_of`]; its value range floor is
//! [`crate::metrics::Histogram::bucket_floor`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::json::{self, Json};
use crate::metrics::Histogram;

/// The schema identifier embedded in every serialized snapshot.
pub const SCHEMA: &str = "obscor.metrics.v1";

/// Frozen summary of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value, when `count > 0`.
    pub min: Option<u64>,
    /// Largest observed value, when `count > 0`.
    pub max: Option<u64>,
    /// Occupied log2 buckets: bucket index → observation count.
    pub buckets: BTreeMap<u32, u64>,
}

impl HistogramSnapshot {
    /// Freeze the current contents of a live histogram.
    pub fn of(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            buckets: h.nonzero_buckets().into_iter().collect(),
        }
    }

    /// Fold another snapshot into this one (bucketwise addition).
    ///
    /// Commutative and associative, so multi-way merges are order-independent.
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = self.max.max(other.max);
        for (&bucket, &n) in &other.buckets {
            *self.buckets.entry(bucket).or_default() += n;
        }
    }
}

/// A point-in-time copy of a whole [`crate::registry::Registry`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Every metric name in the snapshot, across all three kinds.
    pub fn metric_names(&self) -> BTreeSet<String> {
        self.counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .cloned()
            .collect()
    }

    /// Fold `other` into `self`: counters and histograms add, gauges take
    /// the maximum. All three operations are commutative and associative.
    pub fn merge(&mut self, other: &Self) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_default() += v;
        }
        for (name, v) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_default();
            *slot = (*slot).max(*v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// The change since `baseline`, for scoping one pipeline run against a
    /// long-lived global registry (e.g. other tests in the same process).
    ///
    /// Every metric present in `self` is kept — names are stable even when a
    /// value did not move. Counter and histogram quantities subtract
    /// (saturating); gauges are instantaneous, so the current value is kept
    /// as-is. Histogram `min`/`max` likewise describe the whole life of the
    /// metric, not just the delta window.
    pub fn delta_since(&self, baseline: &Self) -> Self {
        let counters = self
            .counters
            .iter()
            .map(|(name, &v)| {
                let before = baseline.counters.get(name).copied().unwrap_or(0);
                (name.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let mut delta = h.clone();
                if let Some(before) = baseline.histograms.get(name) {
                    delta.count = delta.count.saturating_sub(before.count);
                    delta.sum = delta.sum.saturating_sub(before.sum);
                    for (&bucket, &n) in &before.buckets {
                        if let Some(slot) = delta.buckets.get_mut(&bucket) {
                            *slot = slot.saturating_sub(n);
                        }
                    }
                    delta.buckets.retain(|_, n| *n > 0);
                }
                (name.clone(), delta)
            })
            .collect();
        Self { counters, gauges: self.gauges.clone(), histograms }
    }

    /// Serialize to the pretty-printed `obscor.metrics.v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        out.push_str("  \"counters\": {");
        write_u64_map(&mut out, &self.counters, 4);
        out.push_str("},\n");
        out.push_str("  \"gauges\": {");
        write_u64_map(&mut out, &self.gauges, 4);
        out.push_str("},\n");
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = writeln!(out, "    \"{}\": {{", json::escape(name));
            let _ = writeln!(out, "      \"count\": {},", h.count);
            let _ = write!(out, "      \"sum\": {}", h.sum);
            if let Some(min) = h.min {
                let _ = write!(out, ",\n      \"min\": {min}");
            }
            if let Some(max) = h.max {
                let _ = write!(out, ",\n      \"max\": {max}");
            }
            out.push_str(",\n      \"buckets\": {");
            let bucket_strings: BTreeMap<String, u64> =
                h.buckets.iter().map(|(&b, &n)| (b.to_string(), n)).collect();
            write_u64_map(&mut out, &bucket_strings, 8);
            out.push_str("}\n    }");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parse a document produced by [`MetricsSnapshot::to_json`].
    ///
    /// Rejects unknown schema tags, missing sections, and malformed
    /// histogram entries with a descriptive message.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let doc = json::parse(input)?;
        let root = doc.as_object().ok_or("document root must be an object")?;
        let schema =
            root.get("schema").and_then(Json::as_str).ok_or("missing `schema` string")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema `{schema}` (expected `{SCHEMA}`)"));
        }
        let counters = read_u64_map(root, "counters")?;
        let gauges = read_u64_map(root, "gauges")?;
        let histogram_section = root
            .get("histograms")
            .and_then(Json::as_object)
            .ok_or("missing `histograms` object")?;
        let mut histograms = BTreeMap::new();
        for (name, value) in histogram_section {
            let entry =
                value.as_object().ok_or(format!("histogram `{name}` must be an object"))?;
            let field = |key: &str| -> Result<u64, String> {
                entry
                    .get(key)
                    .and_then(Json::as_u64)
                    .ok_or(format!("histogram `{name}` missing u64 `{key}`"))
            };
            let buckets_obj = entry
                .get("buckets")
                .and_then(Json::as_object)
                .ok_or(format!("histogram `{name}` missing `buckets` object"))?;
            let mut buckets = BTreeMap::new();
            for (bucket_key, n) in buckets_obj {
                let bucket: u32 = bucket_key
                    .parse()
                    .map_err(|_| format!("histogram `{name}` bad bucket key `{bucket_key}`"))?;
                let n = n.as_u64().ok_or(format!("histogram `{name}` bucket not a u64"))?;
                buckets.insert(bucket, n);
            }
            histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    count: field("count")?,
                    sum: field("sum")?,
                    min: entry.get("min").and_then(Json::as_u64),
                    max: entry.get("max").and_then(Json::as_u64),
                    buckets,
                },
            );
        }
        Ok(Self { counters, gauges, histograms })
    }
}

fn write_u64_map(out: &mut String, map: &BTreeMap<String, u64>, indent: usize) {
    for (i, (name, v)) in map.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(out, "{:indent$}\"{}\": {v}", "", json::escape(name));
    }
    if !map.is_empty() {
        out.push('\n');
        let closing = indent.saturating_sub(2);
        let _ = write!(out, "{:closing$}", "");
    }
}

fn read_u64_map(root: &BTreeMap<String, Json>, key: &str) -> Result<BTreeMap<String, u64>, String> {
    let section = root.get(key).and_then(Json::as_object).ok_or(format!("missing `{key}` object"))?;
    section
        .iter()
        .map(|(name, v)| {
            v.as_u64()
                .map(|v| (name.clone(), v))
                .ok_or(format!("`{key}.{name}` must be a u64"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("stage.capture.packets_total".into(), 65536);
        snap.counters.insert("span.pipeline.calls_total".into(), 1);
        snap.gauges.insert("config.window_count".into(), 16);
        snap.histograms.insert(
            "span.pipeline.ns".into(),
            HistogramSnapshot {
                count: 1,
                sum: 1_500_000,
                min: Some(1_500_000),
                max: Some(1_500_000),
                buckets: BTreeMap::from([(21, 1)]),
            },
        );
        snap
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = sample();
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).expect("parses");
        assert_eq!(back, snap);
        // Serialization is deterministic: a second pass is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = MetricsSnapshot::default();
        let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(back, snap);
        assert!(back.is_empty());
    }

    #[test]
    fn schema_tag_is_enforced() {
        let text = sample().to_json().replace(SCHEMA, "obscor.metrics.v0");
        let err = MetricsSnapshot::from_json(&text).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut a = sample();
        a.counters.insert("only.a".into(), 5);
        let mut b = sample();
        b.gauges.insert("config.window_count".into(), 99);
        let mut c = MetricsSnapshot::default();
        c.histograms.insert(
            "span.pipeline.ns".into(),
            HistogramSnapshot {
                count: 2,
                sum: 10,
                min: Some(3),
                max: Some(7),
                buckets: BTreeMap::from([(2, 1), (3, 1)]),
            },
        );

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        // Spot-check semantics: counters add, gauges max, histograms add.
        assert_eq!(left.counters["stage.capture.packets_total"], 2 * 65536);
        assert_eq!(left.gauges["config.window_count"], 99);
        let h = &left.histograms["span.pipeline.ns"];
        assert_eq!(h.count, 4);
        assert_eq!(h.min, Some(3));
        assert_eq!(h.max, Some(1_500_000));
    }

    #[test]
    fn delta_keeps_names_and_subtracts_quantities() {
        let baseline = sample();
        let mut later = sample();
        *later.counters.get_mut("stage.capture.packets_total").expect("key") += 100;
        let h = later.histograms.get_mut("span.pipeline.ns").expect("key");
        h.count += 1;
        h.sum += 2_000_000;
        *h.buckets.entry(21).or_default() += 1;

        let delta = later.delta_since(&baseline);
        assert_eq!(delta.counters["stage.capture.packets_total"], 100);
        // Unchanged counters stay present at zero: names are stable.
        assert_eq!(delta.counters["span.pipeline.calls_total"], 0);
        assert_eq!(delta.metric_names(), later.metric_names());
        let dh = &delta.histograms["span.pipeline.ns"];
        assert_eq!(dh.count, 1);
        assert_eq!(dh.sum, 2_000_000);
        assert_eq!(dh.buckets, BTreeMap::from([(21, 1)]));
    }

    #[test]
    fn metric_names_spans_all_kinds() {
        let names = sample().metric_names();
        assert!(names.contains("stage.capture.packets_total"));
        assert!(names.contains("config.window_count"));
        assert!(names.contains("span.pipeline.ns"));
        assert_eq!(names.len(), 4);
    }
}
