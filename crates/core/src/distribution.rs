//! Fig 3: source packet degree distributions and Zipf–Mandelbrot fits.

use crate::config::AnalysisConfig;
use crate::degree::WindowDegrees;
use obscor_stats::binning::{differential_cumulative, Log2Binned};
use obscor_stats::powerlaw::{fit_power_law, PowerLawFit};
use obscor_stats::zipf::{fit_zipf_mandelbrot, ZmFit};

/// The Fig 3 content for one window.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeDistribution {
    /// Window label.
    pub window_label: String,
    /// Differential cumulative probability `D_t(d_i)` per log2 bin.
    pub binned: Log2Binned,
    /// Largest observed degree.
    pub d_max: u64,
    /// The Zipf–Mandelbrot grid fit.
    pub fit: Option<ZmFit>,
    /// The Clauset–Shalizi–Newman tail fit (MLE exponent above a
    /// KS-selected cutoff) — an independent cross-check of the grid fit.
    pub tail_fit: Option<PowerLawFit>,
}

/// Compute the binned distribution and its ZM fit for one window.
pub fn degree_distribution(window: &WindowDegrees, config: &AnalysisConfig) -> DegreeDistribution {
    binned_distribution(&window.label, window.degrees.iter().map(|&(_, d)| d), config)
}

/// Compute the binned distribution with ZM fit for *any* positive-integer
/// network quantity (Fig 2's menu: source packets, fan-out, fan-in,
/// destination packets, link packets...). Zero values are skipped.
pub fn binned_distribution(
    label: &str,
    degrees: impl IntoIterator<Item = u64>,
    config: &AnalysisConfig,
) -> DegreeDistribution {
    let raw: Vec<u64> = degrees.into_iter().filter(|&d| d > 0).collect();
    let (binned, d_max) = {
        let _span = obscor_obs::span("core.binning");
        obscor_obs::counter("core.binning.values_total").add(raw.len() as u64);
        let h = obscor_stats::DegreeHistogram::from_degrees(raw.iter().copied());
        (differential_cumulative(&h), h.d_max())
    };
    let fit = {
        let _span = obscor_obs::span("core.zm_fit");
        obscor_obs::counter("core.zm_fit.fits_total").inc();
        fit_zipf_mandelbrot(&binned, d_max.max(2), &config.zm_alphas, &config.zm_deltas)
    };
    let tail_fit = fit_power_law(&raw, 50);
    DegreeDistribution { window_label: label.to_string(), binned, d_max, fit, tail_fit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_stats::zipf::ZipfMandelbrot;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synthetic_window(alpha: f64, delta: f64, n: usize) -> WindowDegrees {
        let zm = ZipfMandelbrot::new(alpha, delta, 1 << 12);
        let mut rng = StdRng::seed_from_u64(5);
        let degrees: Vec<(u32, u64)> =
            zm.sample_n(&mut rng, n).into_iter().enumerate().map(|(i, d)| (i as u32, d)).collect();
        WindowDegrees { label: "syn".into(), coord: 0.5, month: 0, degrees }
    }

    #[test]
    fn distribution_mass_is_one() {
        let w = synthetic_window(1.5, 1.0, 20_000);
        let dist = degree_distribution(&w, &AnalysisConfig::fast());
        assert!((dist.binned.total() - 1.0).abs() < 1e-9);
        assert!(dist.d_max >= 1);
    }

    #[test]
    fn fit_recovers_planted_exponent() {
        let w = synthetic_window(1.5, 0.0, 50_000);
        let cfg = AnalysisConfig {
            zm_deltas: vec![0.0],
            ..AnalysisConfig::fast()
        };
        let dist = degree_distribution(&w, &cfg);
        let fit = dist.fit.unwrap();
        assert!(
            (fit.alpha - 1.5).abs() <= 0.25,
            "recovered alpha {} for planted 1.5",
            fit.alpha
        );
    }

    #[test]
    fn empty_window_yields_no_fit() {
        let w = WindowDegrees { label: "e".into(), coord: 0.0, month: 0, degrees: vec![] };
        let dist = degree_distribution(&w, &AnalysisConfig::fast());
        assert!(dist.fit.is_none());
        assert!(dist.binned.is_empty());
    }
}
