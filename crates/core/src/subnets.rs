//! Subnet-level aggregation of window sources.
//!
//! Aggregating sources by routing prefix is the standard second view of
//! darkspace data (which networks, not just which hosts, drive the
//! traffic) — and the reason the archive anonymizes with *prefix-
//! preserving* CryptoPAN instead of arbitrary hashing: the /8 and /16
//! group structure of the anonymized matrix is exactly that of the raw
//! data, so subnet analyses run on the archive unchanged. The tests here
//! prove that claim and show a non-prefix-preserving permutation
//! destroying the aggregation.

use crate::degree::WindowDegrees;
use std::collections::BTreeMap;

/// One aggregated subnet row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubnetRow {
    /// The prefix value (the top `prefix_len` bits, right-aligned).
    pub prefix: u32,
    /// Sources inside the prefix.
    pub sources: usize,
    /// Total window packets from the prefix.
    pub packets: u64,
}

/// Aggregate a window's sources by their top `prefix_len` bits
/// (`8 ≤ prefix_len ≤ 32`), descending by packet count.
///
/// # Panics
/// Panics if `prefix_len` is 0 or exceeds 32.
pub fn aggregate_by_prefix(window: &WindowDegrees, prefix_len: u8) -> Vec<SubnetRow> {
    assert!((1..=32).contains(&prefix_len), "prefix length out of range");
    let shift = 32 - prefix_len as u32;
    // BTreeMap, not HashMap: rows leave here in prefix order, so ties in
    // the packet-count sort below break identically on every run.
    let mut map: BTreeMap<u32, (usize, u64)> = BTreeMap::new();
    for &(ip, d) in &window.degrees {
        let e = map.entry(ip >> shift).or_insert((0, 0));
        e.0 += 1;
        e.1 += d;
    }
    let mut rows: Vec<SubnetRow> = map
        .into_iter()
        .map(|(prefix, (sources, packets))| SubnetRow { prefix, sources, packets })
        .collect();
    rows.sort_by(|a, b| b.packets.cmp(&a.packets).then(a.prefix.cmp(&b.prefix)));
    rows
}

/// The multiset of per-prefix group sizes — the anonymization-invariant
/// signature of the subnet structure.
pub fn group_size_signature(window: &WindowDegrees, prefix_len: u8) -> Vec<usize> {
    let mut sizes: Vec<usize> =
        aggregate_by_prefix(window, prefix_len).into_iter().map(|r| r.sources).collect();
    sizes.sort_unstable();
    sizes
}

/// The fraction of window packets carried by the top `k` prefixes.
pub fn top_k_share(window: &WindowDegrees, prefix_len: u8, k: usize) -> f64 {
    let rows = aggregate_by_prefix(window, prefix_len);
    let total: u64 = rows.iter().map(|r| r.packets).sum();
    if total == 0 {
        return 0.0;
    }
    let top: u64 = rows.iter().take(k).map(|r| r.packets).sum();
    top as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_anonymize::CryptoPan;

    fn window(degrees: Vec<(u32, u64)>) -> WindowDegrees {
        WindowDegrees { label: "w".into(), coord: 0.5, month: 0, degrees }
    }

    fn mapped(w: &WindowDegrees, f: impl Fn(u32) -> u32) -> WindowDegrees {
        let mut degrees: Vec<(u32, u64)> =
            w.degrees.iter().map(|&(ip, d)| (f(ip), d)).collect();
        degrees.sort_unstable();
        window(degrees)
    }

    #[test]
    fn aggregation_groups_and_sorts() {
        let w = window(vec![
            (0x0A000001, 5),
            (0x0A000002, 3),
            (0x0A010001, 1),
            (0xC0000001, 100),
        ]);
        let rows = aggregate_by_prefix(&w, 16);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].prefix, 0xC000);
        assert_eq!(rows[0].packets, 100);
        assert_eq!(rows[1].prefix, 0x0A00);
        assert_eq!(rows[1].sources, 2);
        assert_eq!(rows[1].packets, 8);
    }

    #[test]
    fn cryptopan_preserves_group_sizes() {
        // The purpose of prefix-preserving anonymization: subnet structure
        // survives. Cluster 60 sources into three /16s plus strays.
        let mut degrees = Vec::new();
        for i in 0..20u32 {
            degrees.push((0x0A0A_0000 | i, 2));
            degrees.push((0x1414_0000 | (i * 7), 3));
            degrees.push((0x1E1E_0000 | (i * 13), 1));
        }
        degrees.push((0x08080808, 9));
        let w = window(degrees);
        let cp = CryptoPan::new(&[0x66u8; 32]);
        let anon = mapped(&w, |ip| cp.anonymize(ip));
        for len in [8u8, 16, 24] {
            assert_eq!(
                group_size_signature(&w, len),
                group_size_signature(&anon, len),
                "/{}", len
            );
        }
    }

    #[test]
    fn random_permutation_destroys_group_sizes() {
        // The same check under a non-prefix-preserving bijection fails:
        // this is why hashing is not enough for subnet analyses.
        let mut degrees = Vec::new();
        for i in 0..40u32 {
            degrees.push((0x0A0A_0000 | i, 2));
        }
        let w = window(degrees);
        let scrambled = mapped(&w, |ip| ip.wrapping_mul(0x9E37_79B9).rotate_left(13));
        assert_ne!(
            group_size_signature(&w, 16),
            group_size_signature(&scrambled, 16)
        );
    }

    #[test]
    fn top_k_share_monotone_in_k() {
        let w = window(vec![(0x01000000, 50), (0x02000000, 30), (0x03000000, 20)]);
        let s1 = top_k_share(&w, 8, 1);
        let s2 = top_k_share(&w, 8, 2);
        let s3 = top_k_share(&w, 8, 3);
        assert!((s1 - 0.5).abs() < 1e-12);
        assert!(s1 < s2 && s2 < s3);
        assert!((s3 - 1.0).abs() < 1e-12);
        assert_eq!(top_k_share(&w, 8, 100), s3);
    }

    #[test]
    fn empty_window_has_empty_aggregation() {
        let w = window(vec![]);
        assert!(aggregate_by_prefix(&w, 16).is_empty());
        assert_eq!(top_k_share(&w, 16, 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn bad_prefix_len_panics() {
        let _ = aggregate_by_prefix(&window(vec![]), 0);
    }
}
