//! Integration: forecasting on real scenario data.

use obscor::anonymize::sharing::Holder;
use obscor::core::forecast::{forecast_all, forecast_curve};
use obscor::core::temporal::temporal_curves;
use obscor::core::{AnalysisConfig, WindowDegrees};
use obscor::honeyfarm::observe_all_months;
use obscor::netmodel::Scenario;

#[test]
fn scenario_forecasts_are_produced_and_bounded() {
    let scenario = Scenario::paper_scaled(1 << 15, 404);
    let config = AnalysisConfig::fast();
    let holder = Holder::new("t", &[6u8; 32]);
    let months = observe_all_months(&scenario);
    let monthly: Vec<_> = months.iter().map(|m| m.source_keys().clone()).collect();
    let wd = WindowDegrees::capture(&scenario, 0, &holder);
    let curves = temporal_curves(&wd, &monthly, 30);
    assert!(!curves.is_empty());

    let evals = forecast_all(&curves, 10, &config);
    assert!(!evals.is_empty(), "first window leaves a held-out tail");
    for e in &evals {
        assert_eq!(e.held_out, vec![10, 11, 12, 13, 14]);
        assert_eq!(e.predicted.len(), 5);
        // Predictions are probabilities.
        assert!(e.predicted.iter().all(|p| (0.0..=1.0).contains(p)));
        // Errors are bounded by the trivial worst case.
        assert!(e.model_mae() <= 1.0);
        assert!(e.baseline_mae() <= 1.0);
    }
}

#[test]
fn model_is_competitive_with_persistence_overall() {
    let scenario = Scenario::paper_scaled(1 << 15, 405);
    let config = AnalysisConfig::fast();
    let holder = Holder::new("t", &[6u8; 32]);
    let months = observe_all_months(&scenario);
    let monthly: Vec<_> = months.iter().map(|m| m.source_keys().clone()).collect();
    let mut curves = Vec::new();
    for w in 0..2 {
        let wd = WindowDegrees::capture(&scenario, w, &holder);
        curves.extend(temporal_curves(&wd, &monthly, 30));
    }
    let evals = forecast_all(&curves, 10, &config);
    assert!(evals.len() >= 5, "need several curves, got {}", evals.len());
    let model: f64 = evals.iter().map(|e| e.model_mae()).sum::<f64>() / evals.len() as f64;
    let baseline: f64 =
        evals.iter().map(|e| e.baseline_mae()).sum::<f64>() / evals.len() as f64;
    // The model need not win every curve (persistence is strong on flat
    // dim curves), but it must not be grossly worse in aggregate.
    assert!(
        model <= baseline * 1.5,
        "model MAE {model:.4} vs persistence {baseline:.4}"
    );
}

#[test]
fn forecast_respects_cutoff_boundaries() {
    let scenario = Scenario::paper_scaled(1 << 14, 406);
    let config = AnalysisConfig::fast();
    let holder = Holder::new("t", &[6u8; 32]);
    let months = observe_all_months(&scenario);
    let monthly: Vec<_> = months.iter().map(|m| m.source_keys().clone()).collect();
    let wd = WindowDegrees::capture(&scenario, 0, &holder);
    let curves = temporal_curves(&wd, &monthly, 20);
    if let Some(curve) = curves.first() {
        for cutoff in [6usize, 10, 13] {
            if let Some(e) = forecast_curve(curve, cutoff, &config) {
                assert_eq!(e.cutoff, cutoff);
                assert_eq!(e.held_out.len(), 15 - cutoff);
                assert_eq!(e.held_out[0], cutoff);
            }
        }
    }
}
