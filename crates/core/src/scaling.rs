//! Scaling relations within a window.
//!
//! The paper (and its refs 13/36) observes that "the number of unique
//! sources seen at the CAIDA Telescope and other locations is
//! approximately proportional to `N_V^{1/2}`" — and speculates this is
//! why the Fig 4 knee sits at `sqrt(N_V)`. This module measures the
//! sources-vs-packets scaling exponent directly: take nested prefixes of
//! a captured window (2^10, 2^11, ..., N_V packets) and regress
//! `log(unique sources)` on `log(packets)`.

use obscor_pcap::Packet;
use obscor_stats::regress::power_law_exponent;
use std::collections::HashSet;

/// The measured sources-vs-packets scaling of one window.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalingLaw {
    /// `(packets, unique sources)` at each nested prefix size.
    pub points: Vec<(u64, u64)>,
    /// Log-log slope (the paper's ~1/2).
    pub exponent: f64,
    /// Goodness of the log-log line.
    pub r_squared: f64,
}

/// Measure unique sources at nested prefix sizes `2^min_log2 ..= len`,
/// then fit the scaling exponent.
///
/// Returns `None` if the window is shorter than `2^min_log2` packets or
/// the regression is degenerate.
pub fn source_scaling(packets: &[Packet], min_log2: u32) -> Option<ScalingLaw> {
    let n = packets.len() as u64;
    if n < (1 << min_log2) {
        return None;
    }
    let mut points = Vec::new();
    let mut seen: HashSet<u32> = HashSet::new();
    let mut next_mark = 1u64 << min_log2;
    for (i, p) in packets.iter().enumerate() {
        seen.insert(p.src.0);
        let consumed = (i + 1) as u64;
        if consumed == next_mark {
            points.push((consumed, seen.len() as u64));
            next_mark *= 2;
        }
    }
    if points.last().map(|&(c, _)| c) != Some(n) && n > (1 << min_log2) {
        points.push((n, seen.len() as u64));
    }
    let xs: Vec<f64> = points.iter().map(|&(c, _)| c as f64).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, s)| s as f64).collect();
    let (exponent, r_squared) = power_law_exponent(&xs, &ys)?;
    Some(ScalingLaw { points, exponent, r_squared })
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_netmodel::Scenario;
    use obscor_telescope::capture_window;
    use std::sync::OnceLock;

    fn law() -> &'static ScalingLaw {
        static L: OnceLock<ScalingLaw> = OnceLock::new();
        L.get_or_init(|| {
            let s = Scenario::paper_scaled(1 << 16, 29);
            let w = capture_window(&s, &s.caida_windows[0]);
            source_scaling(&w.window.packets, 8).unwrap()
        })
    }

    #[test]
    fn sources_grow_sublinearly_with_packets() {
        let l = law();
        assert!(
            (0.2..0.95).contains(&l.exponent),
            "scaling exponent {} not sublinear",
            l.exponent
        );
        assert!(l.r_squared > 0.9, "scaling law is not a line: R2 {}", l.r_squared);
    }

    #[test]
    fn points_are_monotone() {
        let l = law();
        for pair in l.points.windows(2) {
            assert!(pair[1].0 > pair[0].0);
            assert!(pair[1].1 >= pair[0].1);
        }
        // Unique sources never exceed packets.
        assert!(l.points.iter().all(|&(c, s)| s <= c));
    }

    #[test]
    fn short_windows_are_rejected() {
        let s = Scenario::paper_scaled(1 << 14, 30);
        let w = capture_window(&s, &s.caida_windows[0]);
        assert!(source_scaling(&w.window.packets[..512], 8).is_some());
        assert!(source_scaling(&w.window.packets[..512], 10).is_none());
        assert!(source_scaling(&[], 4).is_none());
    }

    #[test]
    fn single_source_stream_has_flat_scaling() {
        let s = Scenario::paper_scaled(1 << 14, 31);
        let w = capture_window(&s, &s.caida_windows[0]);
        // Rewrite every packet to one source: unique sources stay 1.
        let mono: Vec<Packet> = w
            .window
            .packets
            .iter()
            .map(|p| Packet { src: obscor_pcap::Ip4(42), ..*p })
            .collect();
        let l = source_scaling(&mono, 8).unwrap();
        assert!(l.exponent.abs() < 1e-9, "exponent {}", l.exponent);
        assert!(l.points.iter().all(|&(_, s)| s == 1));
    }
}
