//! Integration: the `telescope::stream` ingest service is bit-identical
//! to the batch build path for every (workers, queue depth, window size,
//! interleaving) combination, drains exactly, and blocks — never drops —
//! under backpressure (DESIGN.md §15).

use obscor::hypersparse::hier::accumulate_flat;
use obscor::hypersparse::reduce::NetworkQuantities;
use obscor::hypersparse::Csr;
use obscor::netmodel::Scenario;
use obscor::telescope::matrix::{build_anonymized_matrix_memo, build_matrix};
use obscor::telescope::{capture_window, IngestConfig, IngestService};
use obscor_anonymize::MemoCryptoPan;
use proptest::prelude::*;
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::time::Duration;

/// A deterministic synthetic `(src, dst)` stream, heavy-tailed enough to
/// exercise dedup inside leaves.
fn pairs(n: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let src: u32 = rng.random_range(0u32..512) * 7 + 1;
            let dst: u32 = rng.random_range(0u32..64) + (10 << 24);
            (src, dst)
        })
        .collect()
}

/// The batch oracle for one window: a flat accumulation of its pairs.
fn oracle(window: &[(u32, u32)]) -> Csr<u64> {
    accumulate_flat(window.iter().map(|&(s, d)| (s, d, 1u64)))
}

/// Stream `all` through a service built from `cfg` and return the window
/// snapshots (in index order) plus the drain report.
fn stream_all(
    cfg: IngestConfig,
    all: &[(u32, u32)],
) -> (Vec<obscor::telescope::WindowSnapshot>, obscor::telescope::DrainReport) {
    let mut svc = IngestService::new(cfg);
    let mut snaps = Vec::new();
    for &(s, d) in all {
        svc.push(s, d);
        // Exercise the non-blocking receive path opportunistically.
        while let Some(snap) = svc.try_snapshot() {
            snaps.push(snap);
        }
    }
    let (rest, drain) = svc.finish();
    snaps.extend(rest);
    snaps.sort_by_key(|s| s.index);
    (snaps, drain)
}

#[test]
fn streamed_equals_batch_across_worker_queue_window_grid() {
    let all = pairs(5000, 11);
    // Window sizes deliberately include non-multiples of the shard batch
    // (and of the packet count, forcing a partial final window).
    for &workers in &[1usize, 2, 4, 8] {
        for &queue_depth in &[1usize, 4] {
            for &window_packets in &[700usize, 1024, 2500] {
                let mut cfg = IngestConfig::new(workers, window_packets);
                cfg.queue_depth = queue_depth;
                cfg.shard_batch = 256;
                cfg.leaf_capacity = 128;
                let (snaps, drain) = stream_all(cfg, &all);
                let label = format!("workers={workers} depth={queue_depth} win={window_packets}");
                assert!(drain.is_exact(), "{label}: inexact drain {drain:?}");
                assert_eq!(drain.received, all.len() as u64, "{label}");
                let expected_windows = all.len().div_ceil(window_packets);
                assert_eq!(snaps.len(), expected_windows, "{label}");
                for (i, (snap, chunk)) in snaps.iter().zip(all.chunks(window_packets)).enumerate() {
                    assert_eq!(snap.index, i as u64, "{label}");
                    assert_eq!(snap.packets, chunk.len() as u64, "{label}");
                    assert_eq!(snap.partial, chunk.len() < window_packets, "{label} window {i}");
                    assert_eq!(snap.matrix, oracle(chunk), "{label}: window {i} diverged");
                }
            }
        }
    }
}

#[test]
fn single_worker_queue_depth_one_still_bit_identical() {
    // The degenerate topology: one worker, no pipelining slack at all.
    let all = pairs(900, 3);
    let mut cfg = IngestConfig::new(1, 400);
    cfg.queue_depth = 1;
    cfg.shard_batch = 7; // non-divisor of everything above
    cfg.leaf_capacity = 13;
    let (snaps, drain) = stream_all(cfg, &all);
    assert!(drain.is_exact());
    assert_eq!(snaps.len(), 3);
    assert!(snaps[2].partial, "100-packet tail must be a partial window");
    for (snap, chunk) in snaps.iter().zip(all.chunks(400)) {
        assert_eq!(snap.matrix, oracle(chunk));
    }
}

#[test]
fn streamed_matches_telescope_batch_capture() {
    // End-to-end against the real batch path: the same captured window,
    // streamed, must reproduce build_matrix byte for byte.
    let scenario = Scenario::paper_scaled(1 << 14, 42);
    let window = capture_window(&scenario, &scenario.caida_windows[0]);
    let batch = build_matrix(&window);
    let coords: Vec<(u32, u32)> =
        window.window.packets.iter().map(|p| (p.src.0, p.dst.0)).collect();
    let (snaps, drain) = stream_all(IngestConfig::new(4, coords.len()), &coords);
    assert!(drain.is_exact());
    assert_eq!(snaps.len(), 1);
    assert!(!snaps[0].partial);
    assert_eq!(snaps[0].matrix, batch, "streamed capture diverged from build_matrix");
}

#[test]
fn streamed_anonymized_matches_memoized_batch_build() {
    let scenario = Scenario::paper_scaled(1 << 14, 43);
    let window = capture_window(&scenario, &scenario.caida_windows[1]);
    let key = [0x5Au8; 32];
    let batch = build_anonymized_matrix_memo(&window, &MemoCryptoPan::new(&key));
    let coords: Vec<(u32, u32)> =
        window.window.packets.iter().map(|p| (p.src.0, p.dst.0)).collect();
    let mut svc = IngestService::with_anonymizer(
        IngestConfig::new(4, coords.len()),
        MemoCryptoPan::new(&key),
    );
    svc.push_pairs(&coords);
    let (snaps, drain) = svc.finish();
    assert!(drain.is_exact());
    assert_eq!(snaps.len(), 1);
    assert_eq!(snaps[0].matrix, batch, "anonymized stream diverged from memoized batch");
}

proptest! {
    /// Randomized per-worker batch boundaries: any (workers, queue depth,
    /// shard batch, window size) keeps the matrices — and the analysis
    /// goldens computed from them — identical to the batch build.
    #[test]
    fn random_shard_geometry_preserves_analysis_goldens(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(200..3000);
        let all = pairs(n, seed ^ 0x9E37_79B9);
        let window_packets = rng.random_range(64..=n.max(65));
        let mut cfg = IngestConfig::new(
            rng.random_range(1..=8),
            window_packets,
        );
        cfg.queue_depth = rng.random_range(1..=8);
        cfg.shard_batch = rng.random_range(1..=300);
        cfg.leaf_capacity = rng.random_range(8..=600);
        let (snaps, drain) = stream_all(cfg, &all);
        prop_assert!(drain.is_exact());
        prop_assert_eq!(snaps.len(), n.div_ceil(window_packets));
        for (snap, chunk) in snaps.iter().zip(all.chunks(window_packets)) {
            let batch = oracle(chunk);
            prop_assert_eq!(&snap.matrix, &batch);
            // Analysis goldens, not just raw bytes: the Table II network
            // quantities reduced from both matrices must agree exactly.
            let a = NetworkQuantities::compute(&snap.matrix);
            let b = NetworkQuantities::compute(&batch);
            prop_assert_eq!(a, b);
        }
    }
}

#[test]
fn mid_window_drain_flushes_partial_with_exact_accounting() {
    let all = pairs(1000, 21);
    let mut cfg = IngestConfig::new(4, 384); // 2 full windows + 232-packet tail
    cfg.shard_batch = 100;
    cfg.leaf_capacity = 64;
    let (snaps, drain) = stream_all(cfg, &all);
    assert_eq!(drain.received, 1000);
    assert_eq!(drain.compacted, 1000, "every received packet must be compacted");
    assert_eq!(drain.in_flight, 0, "nothing may remain in flight after a drain");
    assert_eq!(drain.windows_closed, 3);
    assert!(drain.partial_flushed);
    assert_eq!(snaps.len(), 3);
    assert!(!snaps[0].partial && !snaps[1].partial && snaps[2].partial);
    assert_eq!(snaps[2].packets, 232);
    assert_eq!(snaps[2].matrix, oracle(&all[768..]));
}

#[test]
fn drain_with_no_partial_window_flushes_nothing_extra() {
    let all = pairs(800, 22);
    let (snaps, drain) = stream_all(IngestConfig::new(2, 400), &all);
    assert!(drain.is_exact());
    assert!(!drain.partial_flushed, "exact boundary drain must not flag a partial");
    assert_eq!(snaps.len(), 2);
    assert!(snaps.iter().all(|s| !s.partial));
}

/// Run `f` under a 10-second deadlock watchdog: the drain must complete
/// and report back well before the timeout or the test fails (rather than
/// hanging the whole suite).
fn with_watchdog<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(10)) {
        Ok(v) => {
            worker.join().expect("watchdogged closure panicked");
            v
        }
        Err(_) => panic!("streaming drain deadlocked (10s watchdog expired)"),
    }
}

#[test]
fn drain_joins_cleanly_under_watchdog() {
    // The full shutdown protocol — flush, close broadcast, channel drop,
    // worker join, collector join — must terminate even with minimal
    // queue slack and a mid-window stop.
    let (snaps, drain) = with_watchdog(|| {
        let all = pairs(1500, 23);
        let mut cfg = IngestConfig::new(8, 999);
        cfg.queue_depth = 1;
        cfg.shard_batch = 17;
        cfg.leaf_capacity = 29;
        stream_all(cfg, &all)
    });
    assert!(drain.is_exact());
    assert!(drain.partial_flushed);
    assert_eq!(snaps.len(), 2);
}

#[test]
fn empty_stream_drains_clean_under_watchdog() {
    let drain = with_watchdog(|| {
        let svc = IngestService::new(IngestConfig::new(4, 1024));
        let (snaps, drain) = svc.finish();
        assert!(snaps.is_empty(), "no packets → no snapshots");
        drain
    });
    assert!(drain.is_exact());
    assert_eq!(drain.received, 0);
    assert_eq!(drain.windows_closed, 0);
    assert!(!drain.partial_flushed);
}

#[test]
fn slow_consumer_blocks_but_never_drops() {
    // Queue depth 1, shard batch 1, and an artificially slow worker: the
    // producer MUST hit backpressure, and every packet must still arrive.
    let (snaps, drain) = with_watchdog(|| {
        let all = pairs(50, 24);
        let mut cfg = IngestConfig::new(1, 20);
        cfg.queue_depth = 1;
        cfg.shard_batch = 1;
        cfg.leaf_capacity = 4;
        cfg.worker_delay_micros = 2000;
        stream_all(cfg, &all)
    });
    assert!(drain.blocked > 0, "depth-1 queue with a slow worker must block the producer");
    assert_eq!(drain.received, 50);
    assert_eq!(drain.compacted, 50, "backpressure must block, never drop");
    assert_eq!(drain.in_flight, 0);
    let streamed: u64 = snaps.iter().map(|s| s.packets).sum();
    assert_eq!(streamed, 50, "snapshots must account for the exact final packet count");
}

#[test]
fn worker_skew_does_not_change_snapshots() {
    // Determinism under scheduling skew: a deliberately slow pool and a
    // fast pool must produce identical matrices AND identical leaf/merge
    // stats, because leaves merge in (worker, seq) order — not completion
    // order.
    let all = pairs(1200, 25);
    let mut fast = IngestConfig::new(4, 500);
    fast.shard_batch = 32;
    fast.leaf_capacity = 48;
    let mut slow = fast.clone();
    slow.worker_delay_micros = 3000;
    let (a, da) = stream_all(fast, &all);
    let (b, db) = with_watchdog(move || stream_all(slow, &all));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.matrix, y.matrix, "window {} matrix changed under skew", x.index);
        assert_eq!(x.leaves, y.leaves, "window {} leaf count changed under skew", x.index);
        assert_eq!(x.merges, y.merges, "window {} merge count changed under skew", x.index);
    }
    assert_eq!(da.received, db.received);
    assert_eq!(da.windows_closed, db.windows_closed);
}
