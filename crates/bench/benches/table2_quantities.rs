//! Table II (and Fig 2): every network quantity of a window's traffic
//! matrix, with the matrix build included as its own benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use obscor_bench::{bench_nv, fixture};
use obscor_hypersparse::reduce::{self, NetworkQuantities};
use obscor_telescope::matrix;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(bench_nv(), 42);
    let w = &f.windows[0];
    let m = matrix::build_matrix(w);

    eprintln!("\n=== TABLE II (regenerated, window {}) ===", w.label);
    eprintln!("{}", NetworkQuantities::compute(&m).render());

    let mut g = c.benchmark_group("table2");
    g.sample_size(20);
    g.bench_function("build_matrix_hierarchical", |b| {
        b.iter(|| black_box(matrix::build_matrix(w)))
    });
    g.bench_function("all_quantities", |b| {
        b.iter(|| black_box(NetworkQuantities::compute(&m)))
    });
    g.bench_function("source_packets_reduce", |b| {
        b.iter(|| black_box(reduce::source_packets(&m)))
    });
    g.bench_function("source_packets_reduce_parallel", |b| {
        b.iter(|| black_box(reduce::source_packets_par(&m)))
    });
    g.bench_function("destination_fan_in", |b| {
        b.iter(|| black_box(reduce::destination_fan_in(&m)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
