//! Whole-pipeline per-stage timing: run the paper pipeline once with full
//! instrumentation, dump the per-stage span report as `BENCH_pipeline.json`
//! (the perf trajectory future PRs diff against), then benchmark the
//! end-to-end run.

use criterion::{criterion_group, criterion_main, Criterion};
use obscor_bench::bench_nv;
use obscor_core::{pipeline, AnalysisConfig};
use obscor_netmodel::Scenario;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = Scenario::paper_scaled(bench_nv(), 42);
    let config = AnalysisConfig::fast();

    // One observed run: its metrics snapshot (obscor.metrics.v1) carries a
    // span histogram per stage plus the work counters.
    let analysis = pipeline::run(&scenario, &config);
    let json = analysis.metrics.to_json();
    let out = std::env::var("OBSCOR_BENCH_PIPELINE_OUT")
        .unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    std::fs::write(&out, &json).expect("write pipeline stage report");

    eprintln!("\n=== PIPELINE STAGES (N_V = {}) -> {out} ===", scenario.n_v);
    for (name, h) in &analysis.metrics.histograms {
        if let Some(stage) = name.strip_prefix("span.").and_then(|n| n.strip_suffix(".ns")) {
            eprintln!(
                "{stage:<44} calls {:>7}  total {:>13} ns  max {:>12} ns",
                h.count,
                h.sum,
                h.max.unwrap_or(0)
            );
        }
    }

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("run_full", |b| {
        b.iter(|| black_box(pipeline::run(&scenario, &config)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
