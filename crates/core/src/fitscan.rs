//! Figs 5-8: temporal model fits and their parameter trends.
//!
//! Every temporal curve is fit to the modified Cauchy
//! `β/(β + |t−t0|^α)` by the paper's grid procedure (peak-normalized,
//! `| |^{1/2}`-norm objective), and — for the Fig 5 comparison — to the
//! Gaussian and standard Cauchy. The best-fit `α` per degree bin is Fig 7;
//! the one-month drop `1/(β+1)` per bin is Fig 8.

use crate::config::AnalysisConfig;
use crate::temporal::TemporalCurve;
use obscor_stats::fit::{
    fit_cauchy, fit_gaussian, fit_modified_cauchy_grid, one_month_drop, ModCauchyFit,
    SingleParamFit,
};
use rayon::prelude::*;

/// The fits of one temporal curve.
#[derive(Clone, Debug, PartialEq)]
pub struct BinFit {
    /// Window label (`t0`).
    pub window_label: String,
    /// Degree bin index.
    pub bin: u32,
    /// Representative degree `2^bin`.
    pub d: u64,
    /// Sources in the bin.
    pub n_sources: usize,
    /// The modified-Cauchy fit.
    pub modified_cauchy: ModCauchyFit,
    /// Gaussian comparison fit (Fig 5).
    pub gaussian: Option<SingleParamFit>,
    /// Standard-Cauchy comparison fit (Fig 5).
    pub cauchy: Option<SingleParamFit>,
}

impl BinFit {
    /// Fig 8's quantity: the relative one-month drop `1/(β+1)`.
    pub fn one_month_drop(&self) -> f64 {
        one_month_drop(self.modified_cauchy.beta)
    }
}

/// Fit one curve with all three models.
pub fn fit_curve(curve: &TemporalCurve, config: &AnalysisConfig) -> Option<BinFit> {
    let mc = fit_modified_cauchy_grid(
        &curve.lags,
        &curve.fractions,
        &config.mc_alphas,
        &config.mc_betas,
    )?;
    Some(BinFit {
        window_label: curve.window_label.clone(),
        bin: curve.bin,
        d: curve.d,
        n_sources: curve.n_sources,
        modified_cauchy: mc,
        gaussian: fit_gaussian(&curve.lags, &curve.fractions),
        cauchy: fit_cauchy(&curve.lags, &curve.fractions),
    })
}

/// Fit every curve in parallel, dropping unfittable ones (all-zero data).
pub fn fit_curves(curves: &[TemporalCurve], config: &AnalysisConfig) -> Vec<BinFit> {
    let _span = obscor_obs::span("core.fit_curves");
    let fits: Vec<BinFit> = curves.par_iter().filter_map(|c| fit_curve(c, config)).collect();
    obscor_obs::counter("core.fit_curves.fitted_total").add(fits.len() as u64);
    obscor_obs::counter("core.fit_curves.dropped_total").add((curves.len() - fits.len()) as u64);
    fits
}

/// Fig 7 series: `(d, mean best-fit α over windows)` per bin.
pub fn alpha_by_degree(fits: &[BinFit]) -> Vec<(u64, f64)> {
    aggregate_by_bin(fits, |f| f.modified_cauchy.alpha)
}

/// Fig 8 series: `(d, mean one-month drop)` per bin.
pub fn drop_by_degree(fits: &[BinFit]) -> Vec<(u64, f64)> {
    aggregate_by_bin(fits, |f| f.one_month_drop())
}

/// Fig 7 with error bars: `(d, mean α, std-dev over windows)` per bin.
pub fn alpha_by_degree_with_spread(fits: &[BinFit]) -> Vec<(u64, f64, f64)> {
    aggregate_by_bin_with_spread(fits, |f| f.modified_cauchy.alpha)
}

/// Fig 8 with error bars: `(d, mean drop, std-dev over windows)` per bin.
pub fn drop_by_degree_with_spread(fits: &[BinFit]) -> Vec<(u64, f64, f64)> {
    aggregate_by_bin_with_spread(fits, |f| f.one_month_drop())
}

fn aggregate_by_bin(fits: &[BinFit], value: impl Fn(&BinFit) -> f64) -> Vec<(u64, f64)> {
    aggregate_by_bin_with_spread(fits, value)
        .into_iter()
        .map(|(d, mean, _)| (d, mean))
        .collect()
}

fn aggregate_by_bin_with_spread(
    fits: &[BinFit],
    value: impl Fn(&BinFit) -> f64,
) -> Vec<(u64, f64, f64)> {
    let mut by_bin: std::collections::BTreeMap<u64, Vec<f64>> = Default::default();
    for f in fits {
        by_bin.entry(f.d).or_default().push(value(f));
    }
    by_bin
        .into_iter()
        .map(|(d, vs)| {
            let mean = vs.iter().sum::<f64>() / vs.len() as f64;
            let spread = obscor_stats::summary::std_dev(&vs);
            (d, mean, spread)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_stats::TemporalModel;

    fn curve_from_model(alpha: f64, beta: f64, bin: u32, label: &str) -> TemporalCurve {
        let model = TemporalModel::ModifiedCauchy { alpha, beta };
        let coord = 4.5;
        let months: Vec<usize> = (0..15).collect();
        let lags: Vec<f64> = months.iter().map(|&m| (m as f64 + 0.5) - coord).collect();
        let fractions: Vec<f64> = lags.iter().map(|&t| 0.8 * model.eval(t)).collect();
        TemporalCurve {
            window_label: label.into(),
            coord,
            bin,
            d: 1 << bin,
            n_sources: 100,
            months,
            lags,
            fractions,
        }
    }

    #[test]
    fn fit_recovers_planted_curve() {
        let c = curve_from_model(1.0, 2.0, 8, "w");
        let f = fit_curve(&c, &AnalysisConfig::default()).unwrap();
        assert!((f.modified_cauchy.alpha - 1.0).abs() < 0.1, "alpha {}", f.modified_cauchy.alpha);
        assert!((f.modified_cauchy.beta - 2.0).abs() < 0.5, "beta {}", f.modified_cauchy.beta);
        // Drop = 1/(beta+1) ≈ 1/3.
        assert!((f.one_month_drop() - 1.0 / 3.0).abs() < 0.08);
    }

    #[test]
    fn modified_cauchy_beats_gaussian() {
        let c = curve_from_model(1.0, 1.0, 8, "w");
        let f = fit_curve(&c, &AnalysisConfig::default()).unwrap();
        assert!(f.modified_cauchy.residual < f.gaussian.unwrap().residual);
    }

    #[test]
    fn all_zero_curve_is_dropped() {
        let mut c = curve_from_model(1.0, 1.0, 5, "w");
        c.fractions.iter_mut().for_each(|v| *v = 0.0);
        assert!(fit_curve(&c, &AnalysisConfig::default()).is_none());
        assert!(fit_curves(&[c], &AnalysisConfig::default()).is_empty());
    }

    #[test]
    fn aggregation_averages_across_windows() {
        let curves = vec![
            curve_from_model(0.8, 1.0, 8, "w0"),
            curve_from_model(1.2, 1.0, 8, "w1"),
            curve_from_model(1.0, 4.0, 10, "w0"),
        ];
        let fits = fit_curves(&curves, &AnalysisConfig::default());
        assert_eq!(fits.len(), 3);
        let alphas = alpha_by_degree(&fits);
        assert_eq!(alphas.len(), 2);
        let (d8, mean8) = alphas[0];
        assert_eq!(d8, 256);
        assert!((mean8 - 1.0).abs() < 0.15, "mean alpha {mean8}");
        let drops = drop_by_degree(&fits);
        let (d10, drop10) = drops[1];
        assert_eq!(d10, 1024);
        assert!((drop10 - 0.2).abs() < 0.05, "drop {drop10}");
    }

    #[test]
    fn spread_reflects_window_disagreement() {
        let curves = vec![
            curve_from_model(0.6, 1.0, 8, "w0"),
            curve_from_model(1.4, 1.0, 8, "w1"),
            curve_from_model(1.0, 1.0, 10, "w0"),
            curve_from_model(1.0, 1.0, 10, "w1"),
        ];
        let fits = fit_curves(&curves, &AnalysisConfig::default());
        let with_spread = alpha_by_degree_with_spread(&fits);
        let disagreeing = with_spread.iter().find(|(d, _, _)| *d == 256).unwrap();
        let agreeing = with_spread.iter().find(|(d, _, _)| *d == 1024).unwrap();
        assert!(
            disagreeing.2 > agreeing.2,
            "spread {} should exceed {}",
            disagreeing.2,
            agreeing.2
        );
        // Means are consistent with the two-point aggregation.
        let plain = alpha_by_degree(&fits);
        for ((d1, m1), (d2, m2, _)) in plain.iter().zip(&with_spread) {
            assert_eq!(d1, d2);
            assert!((m1 - m2).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_fitting_matches_serial() {
        let curves: Vec<TemporalCurve> =
            (4..9).map(|b| curve_from_model(1.0, 2.0, b, "w")).collect();
        let cfg = AnalysisConfig::fast();
        let par = fit_curves(&curves, &cfg);
        let ser: Vec<BinFit> = curves.iter().filter_map(|c| fit_curve(c, &cfg)).collect();
        assert_eq!(par, ser);
    }
}
