//! Leaf-matrix archival and fault-tolerant restoration.
//!
//! "The CAIDA Telescope archives its trillions of collected packets at
//! the supercomputing center at Lawrence Berkeley National Laboratory
//! where the packets are aggregated into CryptoPAN anonymized GraphBLAS
//! traffic matrices of `N_V = 2^17` valid contiguous packets. The
//! `N_V = 2^30` traffic matrices used in this study are constructed by
//! hierarchically summing `2^13` of these smaller matrices."
//!
//! [`WindowArchive`] is that storage layer: a captured window is split
//! into contiguous leaf matrices (optionally CryptoPAN-anonymized), each
//! serialized with the CRC-protected binary codec; restoration decodes
//! the leaves and re-sums them with a parallel merge tree, reproducing
//! the full window matrix bit for bit.
//!
//! Restoration comes in two shapes:
//!
//! * [`restore_matrix`] — fail-stop: the first bad leaf aborts the whole
//!   window (the original behavior; right for interactive debugging).
//! * [`RecoveringRestore`] — production shape: reads leaves through the
//!   [`LeafSource`] abstraction, retries *transient* faults with bounded
//!   backoff, quarantines *permanently* corrupt leaves, and returns the
//!   best matrix the surviving leaves support plus a [`RestoreReport`]
//!   accounting for every leaf and packet (the coverage fraction the
//!   pipeline propagates into `PaperAnalysis`).

use crate::capture::TelescopeWindow;
use obscor_anonymize::CryptoPan;
use obscor_hypersparse::serialize::{decode, encode, CodecError};
use obscor_hypersparse::{ops, reduce, Coo, Csr};
use obscor_obs::FaultClass;
use std::borrow::Cow;

/// A window stored as encoded leaf matrices.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowArchive {
    /// Table I window label.
    pub label: String,
    /// Packets per leaf.
    pub leaf_nv: usize,
    /// Valid packets the archived window held — the denominator of the
    /// restore coverage fraction (recorded at archive time because a
    /// corrupt leaf can no longer say how many packets it carried).
    pub total_packets: u64,
    /// Serialized leaf matrices, in capture order.
    pub leaves: Vec<Vec<u8>>,
}

impl WindowArchive {
    /// Total serialized size in bytes.
    pub fn byte_size(&self) -> usize {
        self.leaves.iter().map(|l| l.len()).sum()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.leaves.len()
    }
}

/// A leaf store the restore path can read from: the clean
/// [`WindowArchive`] itself, or a fault-injecting wrapper
/// ([`crate::faults::FaultyArchive`]).
pub trait LeafSource: Sync {
    /// Table I window label of the archived window.
    fn label(&self) -> &str;
    /// Number of leaves the store holds (including unreadable ones).
    fn n_leaves(&self) -> usize;
    /// Valid packets the intact window held (coverage denominator).
    fn expected_packets(&self) -> u64;
    /// Read the encoded bytes of leaf `index`. May fail transiently
    /// (retry can succeed) or permanently (see [`LeafFault::class`]).
    fn read_leaf(&self, index: usize) -> Result<Cow<'_, [u8]>, LeafFault>;
}

impl LeafSource for WindowArchive {
    fn label(&self) -> &str {
        &self.label
    }

    fn n_leaves(&self) -> usize {
        self.leaves.len()
    }

    fn expected_packets(&self) -> u64 {
        self.total_packets
    }

    fn read_leaf(&self, index: usize) -> Result<Cow<'_, [u8]>, LeafFault> {
        self.leaves
            .get(index)
            .map(|b| Cow::Borrowed(b.as_slice()))
            .ok_or(LeafFault::Missing)
    }
}

/// A failed leaf *read* (the decode layer has its own [`CodecError`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeafFault {
    /// The read was interrupted; repeating it may succeed.
    TransientRead,
    /// The leaf is not in the store.
    Missing,
}

impl LeafFault {
    /// Classify for the retry/quarantine policy.
    pub fn class(&self) -> FaultClass {
        match self {
            LeafFault::TransientRead => FaultClass::Transient,
            LeafFault::Missing => FaultClass::Permanent,
        }
    }
}

impl std::fmt::Display for LeafFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeafFault::TransientRead => write!(f, "transient read failure"),
            LeafFault::Missing => write!(f, "leaf missing from store"),
        }
    }
}

impl std::error::Error for LeafFault {}

/// Bounded retry with exponential backoff for transient leaf faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per leaf (first try + retries), at least 1.
    pub max_attempts: u32,
    /// Backoff before retry `k` is `base << k`, in nanoseconds; 0 (the
    /// default) records the schedule without sleeping — deterministic
    /// tests, no wall-clock dependence.
    pub backoff_base_ns: u64,
    /// Ceiling on any single backoff, in nanoseconds.
    pub backoff_cap_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, backoff_base_ns: 0, backoff_cap_ns: 100_000_000 }
    }
}

impl RetryPolicy {
    /// Backoff scheduled before 0-based retry `retry`, in nanoseconds.
    pub fn backoff_ns(&self, retry: u32) -> u64 {
        if self.backoff_base_ns == 0 {
            return 0;
        }
        self.backoff_base_ns
            .checked_shl(retry.min(32))
            .unwrap_or(self.backoff_cap_ns)
            .min(self.backoff_cap_ns)
    }
}

/// Why one leaf was quarantined during a recovering restore.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedLeaf {
    /// Leaf index in capture order.
    pub index: usize,
    /// Fault class of the *final* failure: [`FaultClass::Permanent`] for
    /// corrupt bytes, [`FaultClass::Transient`] for a transient fault
    /// that persisted past the retry budget.
    pub class: FaultClass,
    /// Human-readable rendering of the final error.
    pub reason: String,
}

/// Full accounting of one recovering restore.
#[derive(Clone, Debug, PartialEq)]
pub struct RestoreReport {
    /// Window label.
    pub label: String,
    /// Leaves the store declared.
    pub n_leaves: usize,
    /// Leaves decoded only after at least one retry.
    pub recovered: usize,
    /// Total retry attempts spent across all leaves.
    pub retries: u64,
    /// Leaves given up on, in leaf order.
    pub quarantined: Vec<QuarantinedLeaf>,
    /// Packets the intact window held.
    pub packets_expected: u64,
    /// Packets actually present in the restored matrix.
    pub packets_restored: u64,
}

impl RestoreReport {
    /// Leaves that made it into the restored matrix.
    pub fn n_restored(&self) -> usize {
        self.n_leaves - self.quarantined.len()
    }

    /// Fraction of the window's packets the restore recovered, in
    /// `[0, 1]`; an empty window counts as fully covered.
    pub fn coverage(&self) -> f64 {
        if self.packets_expected == 0 {
            1.0
        } else {
            self.packets_restored as f64 / self.packets_expected as f64
        }
    }

    /// True when nothing was lost (no quarantine, every packet back).
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty() && self.packets_restored == self.packets_expected
    }

    /// Internal consistency of the accounting itself.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.quarantined.len() > self.n_leaves {
            return Err(format!(
                "{} leaves quarantined out of {}",
                self.quarantined.len(),
                self.n_leaves
            ));
        }
        if self.packets_restored > self.packets_expected {
            return Err(format!(
                "restored {} packets from a window of {}",
                self.packets_restored, self.packets_expected
            ));
        }
        if self.recovered > self.n_restored() {
            return Err(format!(
                "{} recovered leaves exceed {} restored",
                self.recovered,
                self.n_restored()
            ));
        }
        let mut last: Option<usize> = None;
        for q in &self.quarantined {
            if q.index >= self.n_leaves {
                return Err(format!("quarantined index {} out of {}", q.index, self.n_leaves));
            }
            if last.is_some_and(|p| p >= q.index) {
                return Err("quarantined leaves not in increasing leaf order".into());
            }
            last = Some(q.index);
        }
        if self.quarantined.is_empty() && self.packets_restored != self.packets_expected {
            return Err("no quarantine but packets missing".into());
        }
        Ok(())
    }
}

/// A complete window could not be restored under a strict policy.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradedRestore {
    /// The accounting of the degraded restore (what survived, what did
    /// not, and why).
    pub report: RestoreReport,
}

impl std::fmt::Display for DegradedRestore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "window `{}` restored degraded: {}/{} leaves, coverage {:.6}",
            self.report.label,
            self.report.n_restored(),
            self.report.n_leaves,
            self.report.coverage()
        )
    }
}

impl std::error::Error for DegradedRestore {}

/// How one leaf fared inside the restore loop.
enum LeafOutcome {
    Decoded { matrix: Csr<u64>, retries: u32 },
    Quarantined { retries: u32, class: FaultClass, reason: String },
}

/// Fault-tolerant window restoration: bounded retry for transient
/// faults, quarantine for permanent ones, full accounting either way.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveringRestore {
    /// Retry/backoff policy applied per leaf.
    pub policy: RetryPolicy,
}

impl RecoveringRestore {
    /// A restore under the given retry policy.
    pub fn new(policy: RetryPolicy) -> RecoveringRestore {
        RecoveringRestore { policy }
    }

    /// Restore whatever the source supports: decode every readable leaf
    /// (retrying transient faults), merge the survivors, and account for
    /// the rest. Never fails — a fully corrupt archive restores to the
    /// empty matrix with coverage 0.
    pub fn restore<S: LeafSource>(&self, source: &S) -> (Csr<u64>, RestoreReport) {
        use rayon::prelude::*;
        let _span = obscor_obs::span("telescope.restore_recovering");
        let n = source.n_leaves();
        obscor_obs::counter("telescope.restore.leaves_total").add(n as u64);
        let outcomes: Vec<LeafOutcome> =
            (0..n).into_par_iter().map(|i| self.restore_leaf(source, i)).collect();

        let mut matrices = Vec::with_capacity(n);
        let mut report = RestoreReport {
            label: source.label().to_string(),
            n_leaves: n,
            recovered: 0,
            retries: 0,
            quarantined: Vec::new(),
            packets_expected: source.expected_packets(),
            packets_restored: 0,
        };
        // Fault/backoff metrics are reconstructed here, after the barrier,
        // rather than recorded inside `restore_leaf`: the registry name
        // lookup takes a lock, and the leaf workers must stay lock-free
        // (blocking-in-par). The reconstruction is exact — every retried
        // fault is transient by construction, and the backoff schedule is
        // a pure function of the retry ordinal.
        let backoff_hist = obscor_obs::histogram("telescope.restore.backoff_ns");
        let transient_faults = obscor_obs::counter("telescope.restore.transient_faults_total");
        for (index, outcome) in outcomes.into_iter().enumerate() {
            let (retries, terminal) = match &outcome {
                LeafOutcome::Decoded { retries, .. } => (*retries, None),
                LeafOutcome::Quarantined { retries, class, .. } => (*retries, Some(*class)),
            };
            transient_faults.add(u64::from(retries));
            for r in 0..retries {
                backoff_hist.observe(self.policy.backoff_ns(r));
            }
            if let Some(class) = terminal {
                count_fault(class);
            }
            match outcome {
                LeafOutcome::Decoded { matrix, retries } => {
                    report.retries += u64::from(retries);
                    report.recovered += usize::from(retries > 0);
                    report.packets_restored += reduce::valid_packets(&matrix);
                    matrices.push(matrix);
                }
                LeafOutcome::Quarantined { retries, class, reason } => {
                    report.retries += u64::from(retries);
                    report.quarantined.push(QuarantinedLeaf { index, class, reason });
                }
            }
        }
        obscor_obs::counter("telescope.restore.retries_total").add(report.retries);
        obscor_obs::counter("telescope.restore.recovered_total").add(report.recovered as u64);
        obscor_obs::counter("telescope.restore.quarantined_total")
            .add(report.quarantined.len() as u64);
        (ops::merge_all(matrices), report)
    }

    /// Like [`RecoveringRestore::restore`], but refuse a degraded result:
    /// any quarantined leaf (or missing packet) is an error carrying the
    /// full report.
    pub fn restore_strict<S: LeafSource>(
        &self,
        source: &S,
    ) -> Result<(Csr<u64>, RestoreReport), DegradedRestore> {
        let (matrix, report) = self.restore(source);
        if report.is_complete() {
            Ok((matrix, report))
        } else {
            Err(DegradedRestore { report })
        }
    }

    /// Drive one leaf to a decoded matrix or a quarantine decision.
    ///
    /// Runs on rayon workers, so it deliberately records no metrics (the
    /// registry name lookup takes a lock); [`RecoveringRestore::restore`]
    /// reconstructs the fault and backoff metrics sequentially afterwards.
    fn restore_leaf<S: LeafSource>(&self, source: &S, index: usize) -> LeafOutcome {
        let mut retries = 0u32;
        loop {
            let fault: (FaultClass, String) = match source.read_leaf(index) {
                Err(e) => (e.class(), e.to_string()),
                Ok(bytes) => match decode::<u64>(&bytes) {
                    Ok(matrix) => return LeafOutcome::Decoded { matrix, retries },
                    Err(e) => (e.class(), e.to_string()),
                },
            };
            let attempts_left = fault.0.is_transient()
                && retries + 1 < self.policy.max_attempts.max(1);
            if !attempts_left {
                return LeafOutcome::Quarantined { retries, class: fault.0, reason: fault.1 };
            }
            let backoff = self.policy.backoff_ns(retries);
            if backoff > 0 {
                std::thread::sleep(std::time::Duration::from_nanos(backoff));
            }
            retries += 1;
        }
    }
}

/// Count one observed fault under its class label
/// (`telescope.restore.transient_faults_total` / `…permanent…`).
fn count_fault(class: FaultClass) {
    obscor_obs::counter(&format!("telescope.restore.{}_faults_total", class.as_str())).inc();
}

/// Archive a window into `n_leaves` contiguous leaf matrices with an
/// optional index map (CryptoPAN anonymization).
///
/// # Panics
/// Panics if `n_leaves == 0`.
pub fn archive_window_with(
    w: &TelescopeWindow,
    n_leaves: usize,
    map: impl Fn(u32) -> u32,
) -> WindowArchive {
    assert!(n_leaves > 0, "need at least one leaf");
    let total = w.window.packets.len();
    let leaf_nv = total.div_ceil(n_leaves);
    let leaves = w
        .window
        .packets
        .chunks(leaf_nv.max(1))
        .map(|chunk| {
            let mut coo = Coo::with_capacity(chunk.len());
            for p in chunk {
                coo.push(map(p.src.0), map(p.dst.0), 1u64);
            }
            encode(&coo.into_csr())
        })
        .collect();
    WindowArchive { label: w.label.clone(), leaf_nv, total_packets: total as u64, leaves }
}

/// Archive with raw indices.
pub fn archive_window(w: &TelescopeWindow, n_leaves: usize) -> WindowArchive {
    archive_window_with(w, n_leaves, |ip| ip)
}

/// Archive under a CryptoPAN key (what the paper's archive stores).
pub fn archive_window_anonymized(
    w: &TelescopeWindow,
    n_leaves: usize,
    cp: &CryptoPan,
) -> WindowArchive {
    // Memoize: windows touch each unique address many times and CryptoPAN
    // costs 32 AES calls per fresh address.
    let mut memo = std::collections::HashMap::new();
    let mut map = move |ip: u32, cp: &CryptoPan| *memo.entry(ip).or_insert_with(|| cp.anonymize(ip));
    let total = w.window.packets.len();
    let leaf_nv = total.div_ceil(n_leaves.max(1));
    let leaves = w
        .window
        .packets
        .chunks(leaf_nv.max(1))
        .map(|chunk| {
            let mut coo = Coo::with_capacity(chunk.len());
            for p in chunk {
                coo.push(map(p.src.0, cp), map(p.dst.0, cp), 1u64);
            }
            encode(&coo.into_csr())
        })
        .collect();
    WindowArchive { label: w.label.clone(), leaf_nv, total_packets: total as u64, leaves }
}

/// Restore the full window matrix fail-stop: decode every leaf and re-sum
/// with the parallel merge tree; the first bad leaf aborts the window.
pub fn restore_matrix(archive: &WindowArchive) -> Result<Csr<u64>, CodecError> {
    let _span = obscor_obs::span("telescope.restore_matrix");
    obscor_obs::counter("telescope.restore.leaves_total").add(archive.n_leaves() as u64);
    let leaves: Result<Vec<Csr<u64>>, CodecError> =
        archive.leaves.iter().map(|bytes| decode(bytes)).collect();
    Ok(ops::merge_all(leaves?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::capture_window;
    use crate::faults::{FaultKind, FaultPlan};
    use crate::matrix;
    use obscor_netmodel::Scenario;
    use std::sync::OnceLock;

    fn window() -> &'static TelescopeWindow {
        static W: OnceLock<TelescopeWindow> = OnceLock::new();
        W.get_or_init(|| {
            let s = Scenario::paper_scaled(1 << 14, 61);
            capture_window(&s, &s.caida_windows[0])
        })
    }

    #[test]
    fn restore_reproduces_the_window_matrix() {
        let w = window();
        let direct = matrix::build_matrix(w);
        for n_leaves in [1usize, 2, 8, 64] {
            let archive = archive_window(w, n_leaves);
            assert_eq!(archive.n_leaves(), n_leaves.min(w.packets()));
            assert_eq!(archive.total_packets, w.packets() as u64);
            let restored = restore_matrix(&archive).unwrap();
            assert_eq!(restored, direct, "n_leaves = {n_leaves}");
        }
    }

    #[test]
    fn leaves_partition_the_packets() {
        let w = window();
        let archive = archive_window(w, 16);
        let total: u64 = archive
            .leaves
            .iter()
            .map(|b| reduce::valid_packets(&decode::<u64>(b).unwrap()))
            .sum();
        assert_eq!(total, w.packets() as u64);
    }

    #[test]
    fn anonymized_archive_preserves_quantities() {
        let w = window();
        let cp = CryptoPan::new(&[0x44u8; 32]);
        let anon = restore_matrix(&archive_window_anonymized(w, 8, &cp)).unwrap();
        let raw = matrix::build_matrix(w);
        assert_eq!(
            reduce::NetworkQuantities::compute(&anon),
            reduce::NetworkQuantities::compute(&raw)
        );
        assert_ne!(anon.row_keys(), raw.row_keys());
    }

    #[test]
    fn tampered_leaf_is_detected() {
        let w = window();
        let mut archive = archive_window(w, 4);
        archive.leaves[2][0] ^= 0xFF; // smash the magic
        assert!(restore_matrix(&archive).is_err());
    }

    #[test]
    fn archive_size_is_bounded_by_entries() {
        let w = window();
        let archive = archive_window(w, 8);
        // 16 bytes/entry + 28/leaf header; entries <= packets.
        let cap = 16 * w.packets() + archive.n_leaves() * 28;
        assert!(archive.byte_size() <= cap);
    }

    #[test]
    fn recovering_restore_on_clean_archive_is_exact_and_complete() {
        let w = window();
        let archive = archive_window(w, 16);
        let (m, report) =
            RecoveringRestore::default().restore(&archive);
        assert_eq!(m, matrix::build_matrix(w));
        assert!(report.is_complete());
        assert_eq!(report.coverage(), 1.0);
        assert_eq!(report.retries, 0);
        assert_eq!(report.recovered, 0);
        report.check_invariants().unwrap();
        let strict = RecoveringRestore::default().restore_strict(&archive).unwrap();
        assert_eq!(strict.0, m);
    }

    #[test]
    fn transient_faults_recover_within_the_retry_budget() {
        let w = window();
        let archive = archive_window(w, 16);
        let plan = FaultPlan::with_kinds(9, 1.0, &[FaultKind::TransientRead]).unwrap();
        let faulty = plan.apply(&archive);
        let (m, report) = RecoveringRestore::default().restore(&faulty);
        assert_eq!(m, matrix::build_matrix(w), "transient-only plan must restore fully");
        assert!(report.is_complete());
        assert_eq!(report.recovered, 16, "every leaf needed retries");
        assert!(report.retries >= 16);
        report.check_invariants().unwrap();
    }

    #[test]
    fn permanent_faults_are_quarantined_not_fatal() {
        let w = window();
        let archive = archive_window(w, 16);
        let plan = FaultPlan::with_kinds(5, 0.5, &[FaultKind::BitFlip, FaultKind::Drop]).unwrap();
        let faulty = plan.apply(&archive);
        let n_faulted = faulty.n_faulted();
        assert!(n_faulted > 0, "seed must fault at least one leaf");
        let (m, report) = RecoveringRestore::default().restore(&faulty);
        assert_eq!(report.quarantined.len(), n_faulted, "exactly the faulted leaves");
        assert!(report.quarantined.iter().all(|q| q.class == FaultClass::Permanent));
        assert!(report.coverage() < 1.0);
        assert!(reduce::valid_packets(&m) == report.packets_restored);
        report.check_invariants().unwrap();
        assert!(RecoveringRestore::default().restore_strict(&faulty).is_err());
    }

    #[test]
    fn truncation_exhausts_retries_then_quarantines_as_transient_class() {
        let w = window();
        let archive = archive_window(w, 8);
        let plan = FaultPlan::with_kinds(2, 1.0, &[FaultKind::Truncate]).unwrap();
        let faulty = plan.apply(&archive);
        let policy = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        let (m, report) = RecoveringRestore::new(policy).restore(&faulty);
        assert_eq!(report.quarantined.len(), 8);
        assert!(report.quarantined.iter().all(|q| q.class == FaultClass::Transient));
        // Each truncated leaf burned the full budget: 2 retries after the
        // first attempt.
        assert_eq!(report.retries, 8 * 2);
        assert_eq!(report.packets_restored, 0);
        assert_eq!(m, Csr::empty());
        report.check_invariants().unwrap();
    }

    #[test]
    fn degraded_restore_error_renders_coverage() {
        let w = window();
        let archive = archive_window(w, 4);
        let plan = FaultPlan::with_kinds(3, 1.0, &[FaultKind::Drop]).unwrap();
        let err = RecoveringRestore::default().restore_strict(&plan.apply(&archive)).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("coverage 0.0"), "got: {text}");
        assert!(text.contains("0/4 leaves"), "got: {text}");
    }

    #[test]
    fn backoff_is_bounded_and_monotone() {
        let p = RetryPolicy { max_attempts: 8, backoff_base_ns: 100, backoff_cap_ns: 1_000 };
        assert_eq!(p.backoff_ns(0), 100);
        assert_eq!(p.backoff_ns(1), 200);
        assert_eq!(p.backoff_ns(5), 1_000, "capped");
        assert_eq!(p.backoff_ns(63), 1_000, "shift overflow capped");
        let zero = RetryPolicy::default();
        assert_eq!(zero.backoff_ns(7), 0, "default policy never sleeps");
    }
}
