//! Lightweight item parser for the audit engine.
//!
//! Walks the token stream from [`crate::lex`] and produces a brace-tree of
//! items — `mod`, `fn`, `impl`, `trait`, `struct`/`enum`, `static`, `const`
//! — each with its attribute run, body span, parent link, and an inherited
//! `is_test` flag (`#[cfg(test)]` / `#[test]` items and everything nested
//! inside them). This replaces the old `mark_test_lines` string heuristics:
//! test exemption now follows the real item structure, and rules that need
//! function bodies (taint tracking, reduction scanning) get exact spans.
//!
//! The parser is tolerant by construction: it never fails, it skips token
//! ranges it does not model (macro bodies, signatures after the fields it
//! needs), and an unparseable construct simply yields no item.

use crate::lex::{Tok, TokKind};

/// What kind of item a node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// A `mod name { ... }` (or `mod name;`).
    Mod,
    /// A `fn` definition (free, impl method, or trait default).
    Fn,
    /// An `impl` block; `type_name` is the self type's last path segment.
    Impl {
        /// Last path segment of the implemented type (`Csr` in
        /// `impl<V> Csr<V>`).
        type_name: String,
        /// True for `impl Trait for Type`.
        trait_impl: bool,
        /// Last path segment of the implemented trait (`Drop` in
        /// `impl Drop for Guard`); empty for inherent impls.
        trait_name: String,
    },
    /// A `trait` definition.
    Trait,
    /// A `struct`, `enum`, or `union` definition.
    TypeDef,
    /// A `static` item; `type_range` spans the declared type's tokens
    /// (half-open token-index range) and `mutable` marks `static mut`.
    Static {
        /// Token range `[start, end)` of the declared type.
        type_range: (usize, usize),
        /// `static mut` declarations.
        mutable: bool,
    },
    /// A `const` item.
    Const,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind plus kind-specific payload.
    pub kind: ItemKind,
    /// Item name (`""` for impl blocks).
    pub name: String,
    /// Token index where the item's attribute/modifier run starts (the
    /// item keyword itself when there is none) — line spans for test
    /// marking start here.
    pub first_tok: usize,
    /// Token index of the item keyword (`fn`, `impl`, ...).
    pub kw_tok: usize,
    /// Token indices of the body `{` and its matching `}`, if any.
    pub body: Option<(usize, usize)>,
    /// Token index of the last token (the `}` or `;`).
    pub end_tok: usize,
    /// Index of the enclosing item in the returned vector.
    pub parent: Option<usize>,
    /// Declared `pub` (plain, not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// Inside `#[cfg(test)]` / `#[test]` (own attribute or inherited).
    pub is_test: bool,
}

/// Parse the token stream into a flat item list (parents precede children).
pub fn parse_items(code: &str, toks: &[Tok], delims: &[usize]) -> Vec<Item> {
    Parser { code, toks, delims, items: Vec::new() }.run()
}

struct Parser<'a> {
    code: &'a str,
    toks: &'a [Tok],
    delims: &'a [usize],
    items: Vec<Item>,
}

/// Pending attribute/modifier state collected before an item keyword.
#[derive(Default, Clone, Copy)]
struct Pending {
    first_tok: Option<usize>,
    is_test: bool,
    is_pub: bool,
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &'a str {
        let t = &self.toks[i];
        &self.code[t.start..t.end]
    }

    fn kind(&self, i: usize) -> TokKind {
        self.toks[i].kind
    }

    /// Skip a delimited group starting at an `Open` token; returns the
    /// index just past the matching `Close`.
    fn past_group(&self, open: usize) -> usize {
        let close = self.delims[open];
        if close > open {
            close + 1
        } else {
            open + 1
        }
    }

    /// Find the next token with text `what` at the current delimiter depth,
    /// starting at `from`, jumping over nested groups. Returns its index.
    fn find_at_depth(&self, from: usize, what: &[&str]) -> Option<usize> {
        let mut i = from;
        while i < self.toks.len() {
            match self.kind(i) {
                TokKind::Open => i = self.past_group(i),
                TokKind::Close => return None, // left the enclosing scope
                _ => {
                    if what.contains(&self.text(i)) {
                        return Some(i);
                    }
                    i += 1;
                }
            }
        }
        None
    }

    fn run(mut self) -> Vec<Item> {
        // Stack of (item index, body-close token index) for open containers.
        let mut stack: Vec<(usize, usize)> = Vec::new();
        let mut pending = Pending::default();
        let mut i = 0;
        while i < self.toks.len() {
            while let Some(&(_, close)) = stack.last() {
                if i > close {
                    stack.pop();
                } else {
                    break;
                }
            }
            let parent = stack.last().map(|&(idx, _)| idx);
            let inherited_test = parent.is_some_and(|p| self.items[p].is_test);

            // Attributes: `#[...]` accumulates into the pending run,
            // `#![...]` (inner) is skipped outright.
            if self.kind(i) == TokKind::Punct && self.text(i) == "#" {
                if i + 1 < self.toks.len()
                    && self.kind(i + 1) == TokKind::Open
                    && self.text(i + 1) == "["
                {
                    pending.first_tok.get_or_insert(i);
                    pending.is_test |= self.attr_is_test(i + 1);
                    i = self.past_group(i + 1);
                    continue;
                }
                if i + 2 < self.toks.len() && self.text(i + 1) == "!" && self.text(i + 2) == "[" {
                    i = self.past_group(i + 2);
                    continue;
                }
                i += 1;
                continue;
            }

            if self.kind(i) != TokKind::Ident {
                // Expression punctuation/literals break the pending run.
                pending = Pending::default();
                i += 1;
                continue;
            }

            match self.text(i) {
                // Visibility / item modifiers keep the pending run alive.
                "pub" => {
                    pending.first_tok.get_or_insert(i);
                    if i + 1 < self.toks.len()
                        && self.kind(i + 1) == TokKind::Open
                        && self.text(i + 1) == "("
                    {
                        i = self.past_group(i + 1); // pub(crate) & co: scoped
                    } else {
                        pending.is_pub = true;
                        i += 1;
                    }
                }
                "unsafe" | "async" | "default" => {
                    pending.first_tok.get_or_insert(i);
                    i += 1;
                }
                "extern" => {
                    pending.first_tok.get_or_insert(i);
                    i += 1;
                    if i < self.toks.len() && self.kind(i) == TokKind::Str {
                        i += 1; // extern "C" — fn modifier or foreign block
                    }
                    if i < self.toks.len() && self.kind(i) == TokKind::Open && self.text(i) == "{" {
                        i = self.past_group(i); // foreign block: no items inside
                        pending = Pending::default();
                    }
                }
                "const" => {
                    // `const fn` is a modifier; `const NAME: T = ...;` an item.
                    if i + 1 < self.toks.len()
                        && matches!(self.text(i + 1), "fn" | "unsafe" | "extern" | "async")
                    {
                        pending.first_tok.get_or_insert(i);
                        i += 1;
                    } else {
                        i = self.const_or_static(i, parent, inherited_test, pending, false);
                        pending = Pending::default();
                    }
                }
                "static" => {
                    i = self.const_or_static(i, parent, inherited_test, pending, true);
                    pending = Pending::default();
                }
                "mod" => {
                    i = self.named_block(i, ItemKind::Mod, parent, inherited_test, pending, &mut stack);
                    pending = Pending::default();
                }
                "trait" => {
                    i = self.named_block(i, ItemKind::Trait, parent, inherited_test, pending, &mut stack);
                    pending = Pending::default();
                }
                "fn" if i + 1 < self.toks.len() && self.kind(i + 1) == TokKind::Ident => {
                    i = self.fn_item(i, parent, inherited_test, pending, &mut stack);
                    pending = Pending::default();
                }
                "impl" if self.at_item_position(i) => {
                    i = self.impl_item(i, parent, inherited_test, pending, &mut stack);
                    pending = Pending::default();
                }
                "struct" | "enum" | "union" => {
                    i = self.type_def(i, parent, inherited_test, pending);
                    pending = Pending::default();
                }
                "use" | "type" => {
                    i = self.find_at_depth(i + 1, &[";"]).map_or(self.toks.len(), |p| p + 1);
                    pending = Pending::default();
                }
                _ => {
                    // Macro invocation at any position: skip its body so
                    // macro contents never masquerade as items.
                    if i + 2 < self.toks.len()
                        && self.text(i + 1) == "!"
                        && self.kind(i + 2) == TokKind::Open
                    {
                        i = self.past_group(i + 2);
                    } else {
                        i += 1;
                    }
                    pending = Pending::default();
                }
            }
        }
        self.items
    }

    /// Is the attribute group opening at `open` (`[`) a test marker —
    /// `#[test]`, `#[cfg(test)]`, or any `cfg(...)` mentioning `test`?
    fn attr_is_test(&self, open: usize) -> bool {
        let close = self.delims[open];
        if close <= open + 1 {
            return false;
        }
        let head = self.text(open + 1);
        if head == "test" && close == open + 2 {
            return true;
        }
        head == "cfg"
            && (open + 2..close)
                .any(|j| self.kind(j) == TokKind::Ident && self.text(j) == "test")
    }

    /// `impl` introduces a block only at item position; elsewhere it is an
    /// `impl Trait` type. Item positions follow `;`, braces, an attribute's
    /// `]`, `unsafe`, or the start of the stream.
    fn at_item_position(&self, i: usize) -> bool {
        if i == 0 {
            return true;
        }
        let prev = i - 1;
        matches!(self.text(prev), ";" | "{" | "}" | "]" | "unsafe")
    }

    fn push_item(
        &mut self,
        item: Item,
        body: Option<(usize, usize)>,
        stack: &mut Vec<(usize, usize)>,
    ) {
        let idx = self.items.len();
        self.items.push(item);
        if let Some((_, close)) = body {
            stack.push((idx, close));
        }
    }

    /// Parse `mod`/`trait` — keyword, name, then `;` or a brace body that
    /// is descended into. Returns the resume index.
    fn named_block(
        &mut self,
        kw: usize,
        kind: ItemKind,
        parent: Option<usize>,
        inherited_test: bool,
        pending: Pending,
        stack: &mut Vec<(usize, usize)>,
    ) -> usize {
        let name = if kw + 1 < self.toks.len() && self.kind(kw + 1) == TokKind::Ident {
            self.text(kw + 1).to_string()
        } else {
            return kw + 1;
        };
        let Some(stop) = self.find_body_or_semi(kw + 2) else { return kw + 2 };
        let (body, end_tok, resume) = match stop {
            BodyOrSemi::Body(open) => {
                let close = self.delims[open];
                (Some((open, close)), close, open + 1)
            }
            BodyOrSemi::Semi(p) => (None, p, p + 1),
        };
        self.push_item(
            Item {
                kind,
                name,
                first_tok: pending.first_tok.unwrap_or(kw),
                kw_tok: kw,
                body,
                end_tok,
                parent,
                is_pub: pending.is_pub,
                is_test: pending.is_test || inherited_test,
            },
            body,
            stack,
        );
        resume
    }

    /// Parse a `fn` definition: record it, then resume *inside* its body
    /// (so nested items are found) or past its `;`. The signature tokens
    /// between name and body are never scanned for items — that is what
    /// keeps `-> impl Iterator` and `fn(u32)` pointer types harmless.
    fn fn_item(
        &mut self,
        kw: usize,
        parent: Option<usize>,
        inherited_test: bool,
        pending: Pending,
        stack: &mut Vec<(usize, usize)>,
    ) -> usize {
        let name = self.text(kw + 1).to_string();
        let Some(stop) = self.find_body_or_semi(kw + 2) else { return kw + 2 };
        let (body, end_tok, resume) = match stop {
            BodyOrSemi::Body(open) => {
                let close = self.delims[open];
                (Some((open, close)), close, open + 1)
            }
            BodyOrSemi::Semi(p) => (None, p, p + 1),
        };
        self.push_item(
            Item {
                kind: ItemKind::Fn,
                name,
                first_tok: pending.first_tok.unwrap_or(kw),
                kw_tok: kw,
                body,
                end_tok,
                parent,
                is_pub: pending.is_pub,
                is_test: pending.is_test || inherited_test,
            },
            body,
            stack,
        );
        resume
    }

    /// Parse an `impl` block: extract the self-type name and whether it is
    /// a trait impl, then descend into the body.
    fn impl_item(
        &mut self,
        kw: usize,
        parent: Option<usize>,
        inherited_test: bool,
        pending: Pending,
        stack: &mut Vec<(usize, usize)>,
    ) -> usize {
        // Skip the generic parameter list directly after `impl`.
        let mut j = kw + 1;
        if j < self.toks.len() && self.text(j) == "<" {
            j = self.past_angles(j);
        }
        let ty_start = j;
        // Scan the header for `for` / the body `{` at angle depth 0.
        let mut angle = 0i32;
        let mut for_pos: Option<usize> = None;
        let mut body_open: Option<usize> = None;
        while j < self.toks.len() {
            match self.kind(j) {
                TokKind::Open if self.text(j) == "{" && angle <= 0 => {
                    body_open = Some(j);
                    break;
                }
                TokKind::Open => j = self.past_group(j),
                TokKind::Close => break,
                _ => {
                    match self.text(j) {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        ">>" => angle -= 2,
                        ";" if angle <= 0 => break,
                        "for" if angle <= 0 => for_pos = Some(j),
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        let Some(open) = body_open else {
            return self.find_at_depth(kw + 1, &[";"]).map_or(j.max(kw + 1), |p| p + 1);
        };
        let ty_from = for_pos.map_or(ty_start, |p| p + 1);
        let type_name = self.path_tail(ty_from, open).unwrap_or_default();
        let trait_name = for_pos
            .and_then(|p| self.path_tail(ty_start, p))
            .unwrap_or_default();
        let close = self.delims[open];
        self.push_item(
            Item {
                kind: ItemKind::Impl { type_name, trait_impl: for_pos.is_some(), trait_name },
                name: String::new(),
                first_tok: pending.first_tok.unwrap_or(kw),
                kw_tok: kw,
                body: Some((open, close)),
                end_tok: close,
                parent,
                is_pub: false,
                is_test: pending.is_test || inherited_test,
            },
            Some((open, close)),
            stack,
        );
        open + 1
    }

    /// Parse `struct`/`enum`/`union` and skip the field body entirely.
    fn type_def(
        &mut self,
        kw: usize,
        parent: Option<usize>,
        inherited_test: bool,
        pending: Pending,
    ) -> usize {
        let name = if kw + 1 < self.toks.len() && self.kind(kw + 1) == TokKind::Ident {
            self.text(kw + 1).to_string()
        } else {
            return kw + 1;
        };
        let Some(stop) = self.find_body_or_semi(kw + 2) else { return kw + 2 };
        let (end_tok, resume) = match stop {
            BodyOrSemi::Body(open) => (self.delims[open], self.past_group(open)),
            BodyOrSemi::Semi(p) => (p, p + 1),
        };
        self.items.push(Item {
            kind: ItemKind::TypeDef,
            name,
            first_tok: pending.first_tok.unwrap_or(kw),
            kw_tok: kw,
            body: None,
            end_tok,
            parent,
            is_pub: pending.is_pub,
            is_test: pending.is_test || inherited_test,
        });
        resume
    }

    /// Parse `static [mut] NAME: Type = init;` or `const NAME: Type = ...;`.
    fn const_or_static(
        &mut self,
        kw: usize,
        parent: Option<usize>,
        inherited_test: bool,
        pending: Pending,
        is_static: bool,
    ) -> usize {
        let mut j = kw + 1;
        let mut mutable = false;
        if is_static && j < self.toks.len() && self.text(j) == "mut" {
            mutable = true;
            j += 1;
        }
        if j >= self.toks.len() || self.kind(j) != TokKind::Ident {
            return j;
        }
        let name = self.text(j).to_string();
        // Type tokens run from past the `:` to the `=` (or terminal `;`).
        let colon = self.find_at_depth(j + 1, &[":"]);
        let eq_or_semi = self.find_at_depth(j + 1, &["=", ";"]);
        let semi = self.find_at_depth(j + 1, &[";"]);
        let end_tok = semi.unwrap_or(self.toks.len() - 1);
        let type_range = match (colon, eq_or_semi) {
            (Some(c), Some(e)) if e > c => (c + 1, e),
            _ => (j, j),
        };
        self.items.push(Item {
            kind: if is_static {
                ItemKind::Static { type_range, mutable }
            } else {
                ItemKind::Const
            },
            name,
            first_tok: pending.first_tok.unwrap_or(kw),
            kw_tok: kw,
            body: None,
            end_tok,
            parent,
            is_pub: pending.is_pub,
            is_test: pending.is_test || inherited_test,
        });
        end_tok + 1
    }

    /// From `from`, find the item's body `{` or terminating `;`, skipping
    /// `(`/`[` groups and generic parameter lists (angle-aware so `->` in
    /// `Fn(V) -> V` bounds cannot confuse it — `->` is one token).
    fn find_body_or_semi(&self, from: usize) -> Option<BodyOrSemi> {
        let mut angle = 0i32;
        let mut j = from;
        while j < self.toks.len() {
            match self.kind(j) {
                TokKind::Open if self.text(j) == "{" && angle <= 0 => {
                    return Some(BodyOrSemi::Body(j));
                }
                TokKind::Open => j = self.past_group(j),
                TokKind::Close => return None,
                _ => {
                    match self.text(j) {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        ">>" => angle -= 2,
                        ";" if angle <= 0 => return Some(BodyOrSemi::Semi(j)),
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        None
    }

    /// Index just past a balanced `<...>` run starting at `open` (a `<`).
    fn past_angles(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < self.toks.len() {
            match self.kind(j) {
                TokKind::Open => {
                    j = self.past_group(j);
                    continue;
                }
                TokKind::Close => return j,
                _ => match self.text(j) {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    ";" => return j,
                    _ => {}
                },
            }
            j += 1;
            if depth <= 0 {
                return j;
            }
        }
        j
    }

    /// Last identifier of the leading path in `[from, to)`, skipping `&`,
    /// `dyn`, `mut`, and lifetimes: `foo::bar::Baz<T>` → `Baz`.
    fn path_tail(&self, from: usize, to: usize) -> Option<String> {
        let mut j = from;
        while j < to
            && (self.kind(j) == TokKind::Lifetime
                || matches!(self.text(j), "&" | "dyn" | "mut" | "*" | "const"))
        {
            j += 1;
        }
        let mut last: Option<&str> = None;
        while j < to {
            if self.kind(j) == TokKind::Ident {
                last = Some(self.text(j));
                j += 1;
                if j < to && self.text(j) == "::" {
                    j += 1;
                    continue;
                }
            }
            break;
        }
        let name = last?;
        if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            Some(name.to_string())
        } else {
            None
        }
    }
}

enum BodyOrSemi {
    Body(usize),
    Semi(usize),
}

/// Token ranges of a function signature.
#[derive(Debug, Clone, Copy)]
pub struct FnSig {
    /// Token indices of the parameter list's `(` and `)`.
    pub params: (usize, usize),
    /// Half-open token range of the return type (after `->`, trimmed at
    /// `where` and the body `{`); empty when the fn returns `()`.
    pub ret: (usize, usize),
}

/// Locate the parameter list and return type of a parsed `fn` item.
pub fn fn_signature(item: &Item, code: &str, toks: &[Tok], delims: &[usize]) -> Option<FnSig> {
    if item.kind != ItemKind::Fn {
        return None;
    }
    let text = |i: usize| &code[toks[i].start..toks[i].end];
    // Token after the name; skip a generic parameter list if present.
    let mut j = item.kw_tok + 2;
    if j < toks.len() && text(j) == "<" {
        let mut depth = 0i32;
        while j < toks.len() {
            match text(j) {
                "<" => depth += 1,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            j += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    if j >= toks.len() || toks[j].kind != TokKind::Open || text(j) != "(" {
        return None;
    }
    let close = delims[j];
    if close <= j {
        return None;
    }
    let sig_end = item.body.map_or(item.end_tok, |(open, _)| open);
    let mut ret = (close + 1, close + 1);
    if close + 1 < sig_end && text(close + 1) == "->" {
        let mut end = close + 2;
        while end < sig_end && text(end) != "where" {
            end += 1;
        }
        ret = (close + 2, end);
    }
    Some(FnSig { params: (j, close), ret })
}

/// Per-line test mask: `mask[line]` (1-based) is true when the line belongs
/// to a `#[cfg(test)]` / `#[test]` item, counted from the item's first
/// attribute line through its closing token.
pub fn test_line_mask(items: &[Item], toks: &[Tok], n_lines: usize) -> Vec<bool> {
    let mut mask = vec![false; n_lines + 1];
    for item in items {
        if !item.is_test {
            continue;
        }
        let start = toks[item.first_tok].line;
        let end = toks[item.end_tok.min(toks.len() - 1)].line;
        for m in mask.iter_mut().take(end.min(n_lines) + 1).skip(start) {
            *m = true;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::{lex, match_delims};

    fn parse(code: &str) -> (Vec<Item>, Vec<Tok>) {
        let toks = lex(code);
        let delims = match_delims(&toks, code);
        (parse_items(code, &toks, &delims), toks)
    }

    #[test]
    fn finds_fns_mods_impls() {
        let src = "pub fn free() {}\nmod inner { fn nested() {} }\nimpl<V> Csr<V> { pub fn new() -> Self { x } }\n";
        let (items, _) = parse(src);
        let names: Vec<(&str, &str)> = items
            .iter()
            .map(|i| {
                (
                    match &i.kind {
                        ItemKind::Fn => "fn",
                        ItemKind::Mod => "mod",
                        ItemKind::Impl { .. } => "impl",
                        _ => "?",
                    },
                    i.name.as_str(),
                )
            })
            .collect();
        assert_eq!(
            names,
            vec![("fn", "free"), ("mod", "inner"), ("fn", "nested"), ("impl", ""), ("fn", "new")]
        );
        assert!(items[0].is_pub);
        assert!(!items[2].is_pub);
        assert_eq!(items[2].parent, Some(1));
        assert_eq!(items[4].parent, Some(3));
        match &items[3].kind {
            ItemKind::Impl { type_name, trait_impl, trait_name } => {
                assert_eq!(type_name, "Csr");
                assert!(!trait_impl);
                assert!(trait_name.is_empty());
            }
            k => panic!("expected impl, got {k:?}"),
        }
    }

    #[test]
    fn trait_impls_are_tagged() {
        let (items, _) = parse("impl std::fmt::Display for Foo { fn fmt(&self) {} }\n");
        match &items[0].kind {
            ItemKind::Impl { type_name, trait_impl, trait_name } => {
                assert_eq!(type_name, "Foo");
                assert!(*trait_impl);
                assert_eq!(trait_name, "Display");
            }
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn drop_impls_carry_the_trait_name() {
        let (items, _) = parse("impl Drop for Guard { fn drop(&mut self) {} }\n");
        match &items[0].kind {
            ItemKind::Impl { type_name, trait_name, .. } => {
                assert_eq!(type_name, "Guard");
                assert_eq!(trait_name, "Drop");
            }
            k => panic!("{k:?}"),
        }
        // Generic trait impls still resolve the last path segment.
        let (items, _) = parse("impl<V: Value> core::ops::Drop for Holder<V> { fn drop(&mut self) {} }\n");
        match &items[0].kind {
            ItemKind::Impl { trait_name, .. } => assert_eq!(trait_name, "Drop"),
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn cfg_test_marks_whole_subtree() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n    fn helper() {}\n}\n";
        let (items, toks) = parse(src);
        assert!(!items[0].is_test);
        assert!(items[1].is_test, "mod tests");
        assert!(items.iter().filter(|i| i.kind == ItemKind::Fn).skip(1).all(|i| i.is_test));
        let mask = test_line_mask(&items, &toks, 7);
        assert!(!mask[1]);
        assert!((2..=7).all(|l| mask[l]), "{mask:?}");
    }

    #[test]
    fn bare_test_attr_marks_fn() {
        let src = "#[test]\nfn alone() { body(); }\nfn other() {}\n";
        let (items, toks) = parse(src);
        assert!(items[0].is_test);
        assert!(!items[1].is_test);
        let mask = test_line_mask(&items, &toks, 3);
        assert_eq!(&mask[1..], &[true, true, false]);
    }

    #[test]
    fn impl_trait_in_return_position_is_not_an_impl_block() {
        let src = "fn gen() -> impl Iterator<Item = u32> { (0..3) }\n";
        let (items, _) = parse(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].kind, ItemKind::Fn);
    }

    #[test]
    fn fn_pointer_types_are_not_defs() {
        let src = "fn hof() { let f: fn(u32) -> u32 = other; f(1); }\nfn other(x: u32) -> u32 { x }\n";
        let (items, _) = parse(src);
        let fns: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(fns, vec!["hof", "other"]);
    }

    #[test]
    fn statics_capture_type_and_mutability() {
        let src = "static GLOBAL: AtomicBool = AtomicBool::new(false);\nfn f() { static LOCAL: OnceLock<usize> = OnceLock::new(); }\nstatic mut RAW: u32 = 0;\n";
        let (items, toks) = parse(src);
        let statics: Vec<&Item> = items
            .iter()
            .filter(|i| matches!(i.kind, ItemKind::Static { .. }))
            .collect();
        assert_eq!(statics.len(), 3);
        assert_eq!(statics[0].name, "GLOBAL");
        let ItemKind::Static { type_range, mutable } = &statics[0].kind else { unreachable!() };
        assert!(!mutable);
        let ty: Vec<&str> = (type_range.0..type_range.1)
            .map(|i| &src[toks[i].start..toks[i].end])
            .collect();
        assert_eq!(ty, vec!["AtomicBool"]);
        assert_eq!(statics[1].name, "LOCAL");
        assert!(statics[1].parent.is_some(), "fn-local static has a parent");
        let ItemKind::Static { mutable: m2, .. } = &statics[2].kind else { unreachable!() };
        assert!(m2);
    }

    #[test]
    fn macro_bodies_are_opaque() {
        let src = "fn f() { assert!(matches!(x, Some(_))); my_macro! { fn not_an_item() {} } }\n";
        let (items, _) = parse(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "f");
    }

    #[test]
    fn where_clauses_do_not_hide_bodies() {
        let src = "fn g<F>(f: F) -> u32 where F: Fn(u32) -> u32 { f(1) }\n";
        let (items, _) = parse(src);
        assert_eq!(items.len(), 1);
        assert!(items[0].body.is_some());
    }

    #[test]
    fn generic_bounds_with_fn_arrows_parse() {
        let src = "impl<V: Value, F: Fn(V, V) -> V> Merger<V, F> { fn run(&self) {} }\n";
        let (items, _) = parse(src);
        match &items[0].kind {
            ItemKind::Impl { type_name, .. } => assert_eq!(type_name, "Merger"),
            k => panic!("{k:?}"),
        }
    }
}
