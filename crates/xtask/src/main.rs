//! CLI entry point: `cargo xtask audit [--json] [--root <dir>]`.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask audit [--json] [--root <dir>]

Runs the workspace static-analysis gate. Rules:
  index-cast           truncating `as u32`/`as usize`/`as Index` casts
  panic-path           unwrap/expect/panic! in panic-free crates
  float-eq             floating-point ==/!= in stats and core::fitscan
  invariant-coverage   public constructors without check_invariants tests
  instant-timing       ad-hoc Instant/SystemTime timing outside the obs crate
  key-pack             ad-hoc `as u64` key packing outside hypersparse::keypack

Suppress a single site with `// audit:allow(<rule>) — justification`.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut command: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root requires a directory argument\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if command.is_none() && !arg.starts_with('-') => command = Some(arg),
            _ => {
                eprintln!("error: unrecognized argument `{arg}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if command.as_deref() != Some("audit") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    // Default root: the workspace directory `cargo xtask` runs from (cargo
    // sets the cwd to the invocation directory; the alias lives in the
    // workspace `.cargo/config.toml`, so this is the workspace root), or
    // CARGO_MANIFEST_DIR's grandparent when run via `cargo run -p xtask`.
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    match xtask::audit(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
            } else {
                for d in &report.diagnostics {
                    println!("{}", d.render());
                }
                if report.is_clean() {
                    println!("audit: clean ({} files scanned)", report.files_scanned);
                } else {
                    println!(
                        "audit: {} violation(s) ({} files scanned)",
                        report.diagnostics.len(),
                        report.files_scanned
                    );
                }
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("error: audit failed: {e}");
            ExitCode::from(2)
        }
    }
}
