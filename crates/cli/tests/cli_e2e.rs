//! End-to-end tests of the `obscor` binary.

use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

fn obscor() -> Command {
    Command::new(env!("CARGO_BIN_EXE_obscor"))
}

/// A per-test scratch directory, removed on drop.
///
/// Each test gets its own directory (process id + a process-wide sequence
/// number), so tests that run concurrently — in this process or in a
/// stale parallel invocation of the whole suite — can never collide on a
/// shared fixed path, and nothing survives the test to pollute the next
/// run.
struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    fn new(test: &str) -> ScratchDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "obscor_cli_e2e_{}_{}_{}",
            test,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let path = std::env::temp_dir().join(unique);
        std::fs::create_dir_all(&path).expect("create scratch dir");
        ScratchDir { path }
    }

    fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        // Best effort: a leaked dir on panic is acceptable, a panic in
        // drop is not.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[test]
fn info_prints_calibration() {
    let out = obscor().args(["info", "--nv", "2^13", "--seed", "9"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("scenario calibration"));
    assert!(stdout.contains("sqrt(N_V) knee"));
    assert!(stdout.contains("2020-06-17-12:00:00"));
}

#[test]
fn reproduce_single_artifact() {
    let out = obscor()
        .args(["reproduce", "--nv", "2^13", "--seed", "9", "--fast", "--only", "table1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("TABLE I"));
    assert!(stdout.contains("2021-04"));
    assert!(!stdout.contains("FIG 4"), "--only must print one artifact");
}

#[test]
fn reproduce_tsv_is_machine_readable() {
    let out = obscor()
        .args(["reproduce", "--nv", "2^13", "--seed", "9", "--fast", "--tsv"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.lines().any(|l| l.starts_with("fig4\t")));
    assert!(stdout.lines().any(|l| l.starts_with("fit\t")));
}

#[test]
fn reproduce_check_passes_non_strict() {
    // --fast implies non-strict validation; must pass at tiny N_V.
    let out = obscor()
        .args(["reproduce", "--nv", "2^13", "--seed", "9", "--fast", "--check", "--only", "fig1"])
        .output()
        .unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(out.status.success(), "stderr:\n{stderr}");
    assert!(stderr.contains("SELF-VALIDATION"));
    assert!(stderr.contains("PASS"));
}

#[test]
fn generate_writes_a_readable_pcap() {
    let dir = ScratchDir::new("generate");
    let path = dir.file("w0.pcap");
    let out = obscor()
        .args([
            "generate",
            "--nv",
            "2^12",
            "--seed",
            "9",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let bytes = std::fs::read(&path).unwrap();
    // Global header magic, LE.
    assert_eq!(&bytes[..4], &0xA1B2_C3D4u32.to_le_bytes());
    let packets = obscor_pcap::PcapReader::new(&bytes).unwrap().read_all().unwrap();
    assert_eq!(packets.len(), 1 << 12);
}

#[test]
fn generate_with_filter_keeps_matching_packets_only() {
    let dir = ScratchDir::new("filter");
    let path = dir.file("filtered.pcap");
    let out = obscor()
        .args([
            "generate",
            "--nv",
            "2^12",
            "--seed",
            "9",
            "--filter",
            "proto tcp and not port 6667",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(out.status.success(), "stderr:\n{stderr}");
    assert!(stderr.contains("filter kept"));
    let bytes = std::fs::read(&path).unwrap();
    let packets = obscor_pcap::PcapReader::new(&bytes).unwrap().read_all().unwrap();
    assert!(!packets.is_empty());
    assert!(packets
        .iter()
        .all(|p| p.proto == obscor_pcap::Protocol::Tcp && p.dst_port != 6667));
}

#[test]
fn metrics_flag_writes_schema_valid_json_with_all_stage_spans() {
    let dir = ScratchDir::new("metrics");
    let path = dir.file("metrics.json");
    // No subcommand: bare flags run the default `reproduce`.
    let out = obscor()
        .args([
            "--nv",
            "2^13",
            "--seed",
            "9",
            "--fast",
            "--only",
            "table1",
            "--metrics",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(out.status.success(), "stderr:\n{stderr}");
    assert!(stderr.contains("wrote") && stderr.contains("metrics"), "stderr:\n{stderr}");
    let text = std::fs::read_to_string(&path).unwrap();
    let snap = obscor_obs::MetricsSnapshot::from_json(&text).expect("schema-valid JSON");
    // Every pipeline stage must surface both a span timing and a call
    // counter (the ISSUE's acceptance criterion).
    for stage in [
        "pipeline.run",
        "stage.capture",
        "stage.matrices",
        "stage.quantities",
        "stage.degrees",
        "stage.honeyfarm",
        "stage.quadrants",
        "stage.distributions",
        "stage.peaks",
        "stage.curves",
        "stage.fits",
        "telescope.capture_window",
        "telescope.build_matrix",
        "hypersparse.leaf_compact",
        "hypersparse.accumulator.finalize",
        "hypersparse.merge_all",
        "core.degrees",
        "core.binning",
        "core.zm_fit",
        "core.peak_correlation",
        "core.temporal_curves",
        "core.fit_curves",
    ] {
        let h = format!("span.{stage}.ns");
        let c = format!("span.{stage}.calls_total");
        assert!(snap.histograms.contains_key(&h), "missing histogram {h}");
        assert!(snap.counters.get(&c).copied().unwrap_or(0) > 0, "missing counter {c}");
    }
    // Work counters reflect the run: 5 windows of 2^13 valid packets each.
    assert_eq!(snap.counters["telescope.capture.valid_packets_total"], 5 * (1 << 13));
    assert_eq!(snap.counters["stage.capture.windows_total"], 5);
    assert_eq!(snap.gauges["config.n_v"], 1 << 13);
}

#[test]
fn fault_plan_reports_degraded_coverage() {
    let out = obscor()
        .args([
            "reproduce",
            "--nv",
            "2^12",
            "--seed",
            "9",
            "--fast",
            "--only",
            "table2",
            "--fault-plan",
            "7:0.3",
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    // Without --strict-archive, a degraded restore is a reported result,
    // not a failure.
    assert!(out.status.success(), "stderr:\n{stderr}");
    let coverages: Vec<f64> = stderr
        .lines()
        .filter(|l| l.starts_with("restore "))
        .map(|l| {
            let tail = l.split("coverage ").nth(1).expect("coverage field");
            tail.split_whitespace().next().unwrap().parse().expect("coverage value")
        })
        .collect();
    assert_eq!(coverages.len(), 5, "one restore line per window:\n{stderr}");
    assert!(
        coverages.iter().any(|c| *c < 1.0),
        "seed 7 at rate 0.3 must degrade some window:\n{stderr}"
    );
    assert!(coverages.iter().all(|c| (0.0..=1.0).contains(c)));
    assert!(stderr.contains("quarantined leaf"), "stderr:\n{stderr}");
}

#[test]
fn strict_archive_fails_on_degraded_restore_and_passes_clean() {
    let out = obscor()
        .args([
            "reproduce",
            "--nv",
            "2^12",
            "--seed",
            "9",
            "--fast",
            "--only",
            "table2",
            "--fault-plan",
            "7:0.3",
            "--strict-archive",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "strict mode must fail under faults");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--strict-archive"), "stderr:\n{stderr}");
    assert!(stderr.contains("restored degraded"), "stderr:\n{stderr}");

    // A zero-rate plan (and the clean archive path) restores fully, so
    // strict mode passes — the flag gates on outcome, not on mode.
    let clean = obscor()
        .args([
            "reproduce",
            "--nv",
            "2^12",
            "--seed",
            "9",
            "--fast",
            "--only",
            "table2",
            "--fault-plan",
            "7:0.0",
            "--strict-archive",
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8(clean.stderr).unwrap();
    assert!(clean.status.success(), "stderr:\n{stderr}");
    assert!(stderr.contains("coverage 1.000000"), "stderr:\n{stderr}");
}

#[test]
fn bad_invocations_fail_with_usage() {
    for args in [
        vec!["reproduce", "--only", "fig99"],
        vec!["generate"], // missing --out
        vec!["nonsense"],
        vec!["reproduce", "--nv", "banana"],
        vec!["generate", "--filter", "proto banana", "--out", "/tmp/x.pcap"],
        vec!["reproduce", "--fault-plan", "7"],
        vec!["reproduce", "--fault-plan", "7:1.5"],
    ] {
        let out = obscor().args(&args).output().unwrap();
        assert!(!out.status.success(), "should fail: {args:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("usage:"), "no usage in stderr for {args:?}");
    }
}
