//! Class-conditional correlation: what the outpost's enrichment adds.
//!
//! The telescope sees anonymous packet counts; the honeyfarm *engages*
//! and labels sources. Joining the two gives the class structure of the
//! coeval overlap — which behaviour classes dominate the bright beam the
//! paper observes, and how class-specific overlap decays in time. This
//! analysis is only possible because the honeyfarm data is a D4M
//! associative array with metadata columns, exercised here through the
//! value-conditional row selection (`rows_where`).

use crate::degree::WindowDegrees;
use obscor_honeyfarm::MonthlyObservation;
use obscor_netmodel::SourceClass;

/// Coeval overlap of one window split by honeyfarm class label.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassCorrelation {
    /// Window label.
    pub window_label: String,
    /// Month the split is taken against.
    pub month: usize,
    /// Per-class rows: `(label, telescope∩class count, class set size,
    /// share of the telescope's detected sources)`.
    pub rows: Vec<ClassRow>,
}

/// One class's share of the coeval overlap.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassRow {
    /// Class label ("scanner", "botnet", ..., "unknown").
    pub label: String,
    /// Telescope sources the honeyfarm put in this class.
    pub shared: usize,
    /// Total honeyfarm sources in this class this month.
    pub class_size: usize,
    /// `shared / (all telescope sources seen by the honeyfarm)`.
    pub share_of_detected: f64,
}

/// Split a window's coeval overlap by honeyfarm class.
pub fn class_correlation(
    window: &WindowDegrees,
    coeval: &MonthlyObservation,
) -> ClassCorrelation {
    let telescope_keys = window.key_set();
    let detected_total = telescope_keys.intersect(coeval.source_keys()).len().max(1);
    let mut labels: Vec<String> =
        SourceClass::ALL.iter().map(|c| c.label().to_string()).collect();
    labels.push("unknown".to_string());
    let rows = labels
        .into_iter()
        .map(|label| {
            let class_set = coeval.assoc.rows_where("class", |v| *v == label);
            let shared = telescope_keys.intersect(&class_set).len();
            ClassRow {
                label,
                shared,
                class_size: class_set.len(),
                share_of_detected: shared as f64 / detected_total as f64,
            }
        })
        .collect();
    ClassCorrelation { window_label: window.label.clone(), month: coeval.month, rows }
}

/// Render as an aligned table.
pub fn render(c: &ClassCorrelation) -> String {
    let mut s = format!(
        "CLASS STRUCTURE OF THE COEVAL OVERLAP (window {}, month {})\n",
        c.window_label, c.month
    );
    s.push_str("class        shared  class-size  share-of-detected\n");
    for r in &c.rows {
        s.push_str(&format!(
            "{:<12} {:>6} {:>11} {:>18.3}\n",
            r.label, r.shared, r.class_size, r.share_of_detected
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_anonymize::sharing::Holder;
    use obscor_honeyfarm::observe_month;
    use obscor_netmodel::Scenario;
    use std::sync::OnceLock;

    fn fixture() -> &'static (WindowDegrees, MonthlyObservation, ClassCorrelation) {
        static F: OnceLock<(WindowDegrees, MonthlyObservation, ClassCorrelation)> =
            OnceLock::new();
        F.get_or_init(|| {
            let s = Scenario::paper_scaled(1 << 15, 91);
            let holder = Holder::new("t", &[8u8; 32]);
            let wd = WindowDegrees::capture(&s, 0, &holder);
            let obs = observe_month(&s, wd.month);
            let cc = class_correlation(&wd, &obs);
            (wd, obs, cc)
        })
    }

    #[test]
    fn rows_cover_all_labels() {
        let (_, _, cc) = fixture();
        let labels: Vec<&str> = cc.rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, vec!["scanner", "botnet", "backscatter", "misconfig", "unknown"]);
    }

    #[test]
    fn shares_sum_to_about_one() {
        // Every detected telescope source carries exactly one class label,
        // so the shares partition the detected set (up to the honeyfarm's
        // classification noise re-labeling, which preserves the total).
        let (_, _, cc) = fixture();
        let total: f64 = cc.rows.iter().map(|r| r.share_of_detected).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn background_class_never_overlaps_telescope() {
        // "unknown" rows are honeyfarm background — never telescope
        // sources by construction.
        let (_, _, cc) = fixture();
        let unknown = cc.rows.iter().find(|r| r.label == "unknown").unwrap();
        assert_eq!(unknown.shared, 0);
        assert!(unknown.class_size > 0, "background exists");
    }

    #[test]
    fn scanners_dominate_the_overlap() {
        // The bright beam is scanner-heavy (class assignment by
        // brightness), and bright sources are detected preferentially, so
        // scanners should hold the largest share of the coeval overlap.
        let (_, _, cc) = fixture();
        let scanner = cc.rows.iter().find(|r| r.label == "scanner").unwrap();
        for r in &cc.rows {
            if r.label != "scanner" {
                assert!(
                    scanner.shared >= r.shared,
                    "{} ({}) out-shares scanner ({})",
                    r.label,
                    r.shared,
                    scanner.shared
                );
            }
        }
        assert!(scanner.share_of_detected > 0.3);
    }

    #[test]
    fn render_is_tabular() {
        let (_, _, cc) = fixture();
        let out = render(cc);
        assert_eq!(out.lines().count(), 2 + cc.rows.len());
        assert!(out.contains("scanner"));
    }
}
