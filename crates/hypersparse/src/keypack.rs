//! Shared `(row, col)` ⇄ packed-`u64` sort-key helper.
//!
//! Every compaction kernel in this crate orders triples by the packed
//! row-major key `(row << 32) | col`; the radix kernel additionally relies
//! on the exact byte layout of that key to pick its digit passes. The
//! packing lives here — and *only* here — so the bit layout cannot silently
//! diverge between kernels: the `key-pack` rule in `cargo xtask audit`
//! rejects ad-hoc `as u64` key packing anywhere else in the crate.

use crate::Index;

/// Pack a `(row, col)` coordinate into the row-major `u64` sort key
/// `(row << 32) | col`. Ordering packed keys as plain integers orders the
/// coordinates row-major, which is exactly the CSR storage order.
#[inline]
pub fn pack_key(row: Index, col: Index) -> u64 {
    (u64::from(row) << 32) | u64::from(col)
}

/// Invert [`pack_key`], recovering `(row, col)`.
#[inline]
pub fn unpack_key(key: u64) -> (Index, Index) {
    // audit:allow(index-cast) — each half is exactly 32 bits by construction
    ((key >> 32) as Index, (key & 0xFFFF_FFFF) as Index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_is_row_major() {
        // Rows dominate the ordering even when cols are maximal.
        assert!(pack_key(1, u32::MAX) < pack_key(2, 0));
        assert!(pack_key(0, 1) < pack_key(0, 2));
    }

    #[test]
    fn unpack_inverts_pack() {
        for (r, c) in [(0, 0), (1, u32::MAX), (u32::MAX, 0), (0xDEAD_BEEF, 0x2C00_0001)] {
            assert_eq!(unpack_key(pack_key(r, c)), (r, c));
        }
    }
}
