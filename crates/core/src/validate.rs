//! Self-validation of an analysis against the paper's headline claims.
//!
//! `obscor reproduce --check` runs these invariants after the pipeline;
//! they are the machine-checkable form of the abstract: bright sources
//! are (nearly) always coevally detected, the faint side follows the log
//! law, temporal curves decay from their coeval peak, the modified Cauchy
//! explains them better than a Gaussian, and the bookkeeping (packet
//! conservation, inventory shapes) is exact.

use crate::pipeline::PaperAnalysis;

/// One validated claim.
#[derive(Clone, Debug, PartialEq)]
pub struct Check {
    /// Short machine-readable name.
    pub name: &'static str,
    /// Human-readable statement with measured numbers.
    pub detail: String,
    /// Whether the claim held.
    pub passed: bool,
}

/// The full validation report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Validation {
    /// Every check, in evaluation order.
    pub checks: Vec<Check>,
}

impl Validation {
    /// Whether every check passed.
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Render as a pass/fail table.
    pub fn render(&self) -> String {
        let mut s = String::from("SELF-VALIDATION\n");
        for c in &self.checks {
            s.push_str(&format!(
                "[{}] {:<28} {}\n",
                if c.passed { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            ));
        }
        s
    }
}

fn check(checks: &mut Vec<Check>, name: &'static str, passed: bool, detail: String) {
    checks.push(Check { name, detail, passed });
}

/// Validate an analysis. `strict` additionally requires the statistical
/// claims that need large bins (skip at tiny `N_V`).
pub fn validate(a: &PaperAnalysis, strict: bool) -> Validation {
    let mut checks = Vec::new();

    // Inventory shapes.
    check(
        &mut checks,
        "inventory_shape",
        a.caida_inventory.len() == 5 && a.greynoise_inventory.len() == 15,
        format!(
            "{} windows, {} months",
            a.caida_inventory.len(),
            a.greynoise_inventory.len()
        ),
    );

    // Packet conservation: every window's matrix holds exactly N_V.
    let conserved = a.quantities.iter().all(|(_, q)| q.valid_packets == a.n_v as u64);
    check(
        &mut checks,
        "packet_conservation",
        conserved,
        format!("all windows sum to N_V = {}", a.n_v),
    );

    // Quadrants (Fig 1).
    check(
        &mut checks,
        "darkspace_quadrant",
        a.quadrants.telescope_int_to_ext == 0 && a.quadrants.telescope_ext_to_int > 0,
        format!(
            "telescope ext->int {} / int->ext {}",
            a.quadrants.telescope_ext_to_int, a.quadrants.telescope_int_to_ext
        ),
    );

    // Distributions normalized (Fig 3).
    let mass_ok = a
        .distributions
        .iter()
        .all(|d| (d.binned.total() - 1.0).abs() < 1e-6 || d.binned.is_empty());
    check(&mut checks, "distribution_mass", mass_ok, "D(d_i) sums to 1 per window".into());

    // Bright coeval plateau (Fig 4).
    let bright: Vec<f64> = a
        .peaks
        .iter()
        .flat_map(|p| p.points.iter())
        .filter(|p| (p.d as f64).log2() >= a.bright_log2 && p.n_sources >= 5)
        .map(|p| p.fraction)
        .collect();
    let bright_mean = if bright.is_empty() {
        f64::NAN
    } else {
        bright.iter().sum::<f64>() / bright.len() as f64
    };
    check(
        &mut checks,
        "bright_coeval_plateau",
        !strict || bright_mean > 0.7,
        format!("mean bright coeval fraction {bright_mean:.3} over {} bins", bright.len()),
    );

    // Faint log law (Fig 4).
    let faint: Vec<f64> = a
        .peaks
        .iter()
        .flat_map(|p| p.points.iter())
        .filter(|p| (p.d as f64).log2() < a.bright_log2 && p.n_sources >= 30)
        .map(|p| (p.fraction - p.empirical_law).abs())
        .collect();
    let faint_err = if faint.is_empty() {
        f64::NAN
    } else {
        faint.iter().sum::<f64>() / faint.len() as f64
    };
    check(
        &mut checks,
        "faint_log_law",
        !strict || (faint_err.is_finite() && faint_err < 0.15),
        format!("mean |measured - law| = {faint_err:.3} over {} bins", faint.len()),
    );

    // Temporal decay (Figs 5/6).
    let decaying = a
        .curves
        .iter()
        .filter(|c| c.n_sources >= 30)
        .filter(|c| {
            let far = c
                .lags
                .iter()
                .zip(&c.fractions)
                .filter(|(l, _)| l.abs() >= 5.0)
                .map(|(_, f)| *f)
                .fold(0.0f64, f64::max);
            c.peak_fraction() > far
        })
        .count();
    let eligible = a.curves.iter().filter(|c| c.n_sources >= 30).count();
    check(
        &mut checks,
        "temporal_decay",
        !strict || (eligible > 0 && decaying * 2 >= eligible),
        format!("{decaying}/{eligible} well-populated curves decay from their peak"),
    );

    // Fits exist and alpha is order one (Fig 7).
    let alphas: Vec<f64> = a
        .fits
        .iter()
        .filter(|f| f.n_sources >= 30)
        .map(|f| f.modified_cauchy.alpha)
        .collect();
    let alpha_mean = if alphas.is_empty() {
        f64::NAN
    } else {
        alphas.iter().sum::<f64>() / alphas.len() as f64
    };
    check(
        &mut checks,
        "alpha_order_one",
        !strict || (alpha_mean.is_finite() && (0.3..=2.5).contains(&alpha_mean)),
        format!("mean modified-Cauchy alpha {alpha_mean:.2} over {} fits", alphas.len()),
    );

    Validation { checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::pipeline::run;
    use obscor_netmodel::Scenario;

    #[test]
    fn healthy_analysis_passes_strict() {
        let s = Scenario::paper_scaled(1 << 15, 17);
        let a = run(&s, &AnalysisConfig::fast());
        let v = validate(&a, true);
        assert!(v.all_passed(), "{}", v.render());
        assert_eq!(v.checks.len(), 8);
    }

    #[test]
    fn sabotaged_analysis_fails() {
        let s = Scenario::paper_scaled(1 << 14, 18);
        let mut a = run(&s, &AnalysisConfig::fast());
        a.quantities[0].1.valid_packets -= 1; // break conservation
        let v = validate(&a, false);
        assert!(!v.all_passed());
        assert!(v.checks.iter().any(|c| c.name == "packet_conservation" && !c.passed));
    }

    #[test]
    fn render_lists_every_check() {
        let s = Scenario::paper_scaled(1 << 14, 19);
        let a = run(&s, &AnalysisConfig::fast());
        let v = validate(&a, false);
        let out = v.render();
        assert_eq!(out.lines().count(), v.checks.len() + 1);
        assert!(out.contains("PASS"));
    }

    #[test]
    fn non_strict_tolerates_thin_statistics() {
        // At tiny N_V the statistical claims may be unmeasurable; non-strict
        // validation must still pass the structural checks.
        let s = Scenario::paper_scaled(1 << 13, 20);
        let a = run(&s, &AnalysisConfig::fast());
        let v = validate(&a, false);
        for c in &v.checks {
            assert!(c.passed, "structural check failed: {} ({})", c.name, c.detail);
        }
    }
}
