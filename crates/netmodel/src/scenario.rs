//! The paper-scaled experiment scenario.
//!
//! Assembles the Table I layout — the 15-month GreyNoise grid
//! (2020-02 .. 2021-04) and the five CAIDA window instants — around a
//! generated population whose load is calibrated so that the *realized*
//! per-window source degrees follow the planted Zipf–Mandelbrot law in
//! absolute units (expected window packets of the whole active beam
//! ≈ `N_V`).
//!
//! # Scaling
//!
//! Everything is parameterized by `N_V`. The paper's `N_V = 2^30` implies
//! a Fig 4 knee at `sqrt(N_V) = 2^15`; at the default bench scale
//! `N_V = 2^22` the knee sits at `2^11` and the brightest sources reach
//! `8·sqrt(N_V) = 2^14`. The Zipf–Mandelbrot exponent default of 1.3 is
//! chosen for Table I self-consistency: with the paper's own numbers
//! (`N_V = 2^30` spread over ~0.7 M sources) the mean source degree is
//! ~1500, which requires a tail exponent well below 2; α ≈ 1.3 with
//! `d_max ≈ 8·sqrt(N_V)` reproduces both the source counts and the Fig 3
//! shape.

use crate::population::{PopulationConfig, SourcePopulation};
use crate::time::MonthGrid;
use crate::traffic::TrafficConfig;

/// One CAIDA telescope sampling instant (a Table I row).
#[derive(Clone, Debug, PartialEq)]
pub struct CaidaWindowSpec {
    /// Table I-style timestamp label, e.g. `2020-06-17-12:00:00`.
    pub label: String,
    /// Model-time coordinate in months since grid start.
    pub coord: f64,
}

/// A complete, reproducible experiment configuration.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The GreyNoise month grid.
    pub grid: MonthGrid,
    /// The synthetic world.
    pub population: SourcePopulation,
    /// The five telescope sampling instants.
    pub caida_windows: Vec<CaidaWindowSpec>,
    /// Packets per telescope window.
    pub n_v: usize,
    /// Traffic shaping (arrival rate, legitimate fraction).
    pub traffic: TrafficConfig,
    /// Conversion from planted brightness to expected realized window
    /// degree (`d_expected = brightness * brightness_to_degree`).
    pub brightness_to_degree: f64,
    /// Per-month honeyfarm coverage multipliers (the 2020-03 and 2021-04
    /// configuration changes of Table I are boosts here).
    pub coverage_boost: Vec<f64>,
    /// Honeyfarm background population: sources the outpost sees that
    /// never target the telescope's /8 (GreyNoise integrates the whole
    /// Internet, which is why Table I's monthly source counts dwarf a
    /// single darkspace window). Expressed as a multiple of the
    /// telescope-visible population, per month.
    pub honeyfarm_background_factor: f64,
    /// Base RNG seed for observers.
    pub seed: u64,
}

impl Scenario {
    /// Build the paper's experiment at window size `n_v`, deterministically
    /// from `seed`.
    ///
    /// Population size is calibrated with a pilot draw so that the total
    /// active brightness at mid-span approximates `n_v` — i.e. the beam
    /// that the telescope samples carries about one window's worth of
    /// expected packets, making planted brightness ≈ realized degree.
    ///
    /// # Panics
    /// Panics if `n_v < 2^12` (too small for the degree analysis to have
    /// any bins).
    pub fn paper_scaled(n_v: usize, seed: u64) -> Self {
        assert!(n_v >= 1 << 12, "n_v below 2^12 leaves no degree bins");
        let grid = MonthGrid::paper_span();
        let sqrt_nv = (n_v as f64).sqrt();
        let bright_log2 = sqrt_nv.log2();
        let base = PopulationConfig {
            n_sources: 10_000, // pilot size; replaced below
            zm_alpha: 1.3,
            zm_delta: 2.0,
            brightness_max: (8.0 * sqrt_nv) as u64,
            pareto_shape: 1.4,
            span_months: grid.span(),
            knee_log2d: bright_log2 - 5.0,
            bright_log2d: bright_log2,
            revisit_prob: 0.03,
            darkspace_octet: 44,
            botnet_subnets: 32,
            seed,
        };
        // Pilot: measure expected active brightness per source.
        let pilot = SourcePopulation::generate(base.clone());
        let mid = grid.span() / 2.0;
        let per_source = pilot.active_brightness(mid) / pilot.len() as f64;
        // audit:allow(index-cast) — float-to-usize `as` saturates, and clamp bounds the result
        let n_sources = ((n_v as f64 / per_source.max(1e-9)) as usize).clamp(4_000, 2_000_000);
        let population = SourcePopulation::generate(PopulationConfig { n_sources, ..base });
        let brightness_to_degree = n_v as f64 / population.active_brightness(mid).max(1.0);

        // Table I's five CAIDA sampling instants.
        let caida_windows = vec![
            ("2020-06-17-12:00:00", grid.coord(2020, 6, 17, 12)),
            ("2020-07-29-00:00:00", grid.coord(2020, 7, 29, 0)),
            ("2020-09-16-12:00:00", grid.coord(2020, 9, 16, 12)),
            ("2020-10-28-00:00:00", grid.coord(2020, 10, 28, 0)),
            ("2020-12-16-12:00:00", grid.coord(2020, 12, 16, 12)),
        ]
        .into_iter()
        .map(|(label, coord)| CaidaWindowSpec { label: label.to_string(), coord })
        .collect();

        // GreyNoise configuration changes: 2020-03 (index 1) and 2021-04
        // (index 14) show sharp source-count increases in Table I.
        let mut coverage_boost = vec![1.0; grid.len()];
        coverage_boost[1] = 5.0;
        coverage_boost[14] = 5.0;

        Self {
            grid,
            population,
            caida_windows,
            n_v,
            traffic: TrafficConfig::default(),
            brightness_to_degree,
            coverage_boost,
            honeyfarm_background_factor: 1.0,
            seed,
        }
    }

    /// `sqrt(N_V)`: the Fig 4 brightness knee in realized-degree units.
    pub fn sqrt_nv(&self) -> f64 {
        (self.n_v as f64).sqrt()
    }

    /// `log2 sqrt(N_V)`: the denominator of the paper's empirical
    /// faint-source law `log2(d)/log2(sqrt(N_V))`.
    pub fn bright_log2(&self) -> f64 {
        self.sqrt_nv().log2()
    }

    /// The expected realized window degree of a source (its planted
    /// brightness expressed in measured units).
    pub fn expected_degree(&self, brightness: f64) -> f64 {
        brightness * self.brightness_to_degree
    }

    /// The month index containing a CAIDA window, if on the grid.
    pub fn window_month(&self, w: &CaidaWindowSpec) -> Option<usize> {
        let m = w.coord.floor();
        if m >= 0.0 && (m as usize) < self.grid.len() {
            Some(m as usize)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario::paper_scaled(1 << 18, 123)
    }

    #[test]
    fn window_layout_matches_table1() {
        let s = tiny();
        assert_eq!(s.caida_windows.len(), 5);
        assert_eq!(s.grid.len(), 15);
        // Windows fall in months 2020-06, 07, 09, 10, 12 = indices 4,5,7,8,10.
        let months: Vec<usize> =
            s.caida_windows.iter().map(|w| s.window_month(w).unwrap()).collect();
        assert_eq!(months, vec![4, 5, 7, 8, 10]);
        assert_eq!(s.caida_windows[0].label, "2020-06-17-12:00:00");
    }

    #[test]
    fn windows_are_roughly_six_weeks_apart() {
        let s = tiny();
        for pair in s.caida_windows.windows(2) {
            let gap = pair[1].coord - pair[0].coord;
            assert!((1.0..=2.0).contains(&gap), "gap {gap} months");
        }
    }

    #[test]
    fn calibration_puts_active_brightness_near_nv() {
        let s = tiny();
        let mid = s.grid.span() / 2.0;
        let active = s.population.active_brightness(mid);
        let implied = active * s.brightness_to_degree;
        assert!(
            (implied - s.n_v as f64).abs() / (s.n_v as f64) < 1e-9,
            "normalization is exact at the calibration instant"
        );
        // And the factor itself should be O(1): the pilot sizing worked.
        assert!(
            s.brightness_to_degree > 0.3 && s.brightness_to_degree < 3.0,
            "brightness_to_degree = {}",
            s.brightness_to_degree
        );
    }

    #[test]
    fn scaling_knobs_follow_nv() {
        let s = tiny();
        assert_eq!(s.sqrt_nv(), 512.0);
        assert_eq!(s.bright_log2(), 9.0);
        assert_eq!(s.population.config.brightness_max, 4096);
        assert_eq!(s.population.config.knee_log2d, 4.0);
    }

    #[test]
    fn coverage_boosts_hit_table1_spike_months() {
        let s = tiny();
        assert_eq!(s.coverage_boost.len(), 15);
        assert!(s.coverage_boost[1] > 1.0, "2020-03 config change");
        assert!(s.coverage_boost[14] > 1.0, "2021-04 config change");
        assert_eq!(s.coverage_boost[0], 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = Scenario::paper_scaled(1 << 14, 9);
        let b = Scenario::paper_scaled(1 << 14, 9);
        assert_eq!(a.population.sources, b.population.sources);
        assert_eq!(a.brightness_to_degree, b.brightness_to_degree);
    }

    #[test]
    #[should_panic(expected = "2^12")]
    fn tiny_nv_rejected() {
        let _ = Scenario::paper_scaled(1 << 10, 1);
    }
}
