//! The single rule-documentation registry.
//!
//! Every audit rule has exactly one [`RuleDoc`] here; `cargo xtask audit
//! --explain <rule>` prints the long form, the CLI usage text lists the
//! names, SARIF rule metadata embeds the short form, and a doc-sync test
//! asserts the README rule table carries the same `short` text verbatim.
//! Add a rule to the engine and the registry (or the tests fail) — there
//! is no second place to document it.

/// Documentation for one audit rule.
pub struct RuleDoc {
    /// Rule identifier as it appears in findings (`nondet-reach`).
    pub name: &'static str,
    /// One-line "rejects ..." summary; the README table's second column
    /// must match this string exactly.
    pub short: &'static str,
    /// Long-form explanation for `--explain`: what the rule flags, why
    /// the project cares, and how to fix or suppress a finding.
    pub long: &'static str,
}

/// All audit rules, in the order the engine's module docs list them.
pub const RULE_DOCS: &[RuleDoc] = &[
    RuleDoc {
        name: "index-cast",
        short: "truncating `as u32`/`as usize` casts with 64-bit sources in scope",
        long: "Flags `as u32` / `as usize` / `as Index` casts in functions whose \
               scope carries 64-bit values (u64/i64/usize arithmetic). At the \
               paper's N_V = 2^30 scale a silently truncating cast corrupts packed \
               (row << 32) | col keys. Fix: use `try_into()` with an explicit \
               error, or `Index::try_from`. Suppress a deliberate narrow with \
               `// audit:allow(index-cast) — reason`.",
    },
    RuleDoc {
        name: "panic-path",
        short: "`unwrap`/`expect`/`panic!` in panic-free library crates",
        long: "The core pipeline crates (core, hypersparse, assoc, anonymize, \
               telescope, pcap) must stay panic-free: a panic in a rayon worker \
               aborts the whole reduction. Flags `unwrap()`, `expect(...)`, \
               `panic!`, `unreachable!`, `todo!`, `unimplemented!` in their \
               library code. Fix: return `Result`/`Option`. Suppress with \
               `// audit:allow(panic-path) — reason` (e.g. a checked invariant).",
    },
    RuleDoc {
        name: "float-eq",
        short: "float `==`/`!=` in the statistics / fit-scan code",
        long: "Exact floating-point comparison in `stats` or `core::fitscan` is \
               almost always a bug: the paper's slope/R² fits accumulate rounding \
               error. Fix: compare against an epsilon or use `total_cmp`. \
               Suppress with `// audit:allow(float-eq) — reason` for exact \
               sentinel comparisons (e.g. `== 0.0` guards).",
    },
    RuleDoc {
        name: "invariant-coverage",
        short: "public constructors not covered by a `check_invariants` test",
        long: "Every public constructor of a hypersparse/assoc type must be \
               exercised by at least one test that calls `check_invariants`, so \
               structural invariants (sorted keys, consistent dimensions) are \
               actually enforced where values are born. Fix: add a test calling \
               the constructor then `check_invariants()`.",
    },
    RuleDoc {
        name: "instant-timing",
        short: "ad-hoc `Instant::now()` timing outside the `obs` crate",
        long: "Wall-clock reads scattered through library code bypass the metrics \
               registry and make runs nondeterministic to diff. All timing flows \
               through `obscor_obs::span` (SpanTimer), which owns the clock. Fix: \
               wrap the region in a span. Suppress with \
               `// audit:allow(instant-timing) — reason`.",
    },
    RuleDoc {
        name: "key-pack",
        short: "ad-hoc `as u64` key packing outside `hypersparse::keypack`",
        long: "The packed (row << 32) | col key layout is owned by \
               `hypersparse::keypack`. Hand-rolled `as u64` + `<< 32` packing \
               elsewhere will drift from the canonical layout (sign extension, \
               endianness of unpack). Fix: call `keypack::pack_key` / \
               `unpack_key`. Suppress with `// audit:allow(key-pack) — reason`.",
    },
    RuleDoc {
        name: "map-iter-order",
        short: "`HashMap`/`HashSet` iteration feeding an ordered sink (incl. one call hop from the JSON codec)",
        long: "HashMap/HashSet iteration order is randomized per process; letting \
               it flow into ordered output (Vec pushes, string building, or — via \
               the symbol index, one call hop — the `obscor_obs::json` codec) \
               breaks the paper's bit-identical reproducibility claim. Fix: \
               iterate a BTreeMap or a sorted snapshot. Deeper call chains are \
               `nondet-reach`'s job. Suppress with \
               `// audit:allow(map-iter-order) — reason`.",
    },
    RuleDoc {
        name: "nonassoc-reduce",
        short: "float `sum`/`reduce`/`fold` directly over rayon parallel iterators",
        long: "Float addition is not associative, so a rayon `sum()` / `reduce()` \
               / `fold()` over float accumulators yields run-to-run different \
               results depending on work splitting. The paper's hierarchical sums \
               must be bit-identical. Fix: use the blessed fixed-shape \
               tree-reduction helpers. Suppress with \
               `// audit:allow(nonassoc-reduce) — reason`.",
    },
    RuleDoc {
        name: "atomic-ordering",
        short: "`Ordering::*` sites without an `// ordering:` justification",
        long: "Every atomic `Ordering::*` argument must carry an `// ordering:` \
               comment on the same or previous line; stricter-than-Relaxed notes \
               must name the happens-before edge they establish. Fix: write the \
               justification (it doubles as review documentation).",
    },
    RuleDoc {
        name: "shared-static-mut",
        short: "undeclared process-global mutable statics",
        long: "Process-global mutable state outside the `obs` metrics registry \
               makes runs order-dependent and tests flaky. Flags `static` items \
               with interior-mutable types (Mutex/RwLock/atomics/OnceLock) \
               outside the declared allow-list. Fix: route state through the \
               registry or pass it explicitly. Suppress with \
               `// audit:allow(shared-static-mut) — reason`.",
    },
    RuleDoc {
        name: "allow-justification",
        short: "`audit:allow(...)` markers with no trailing reason",
        long: "An `audit:allow(<rule>)` marker with no ` — reason` text is an \
               unexplained suppression; the gate requires every escape hatch to \
               say why. Fix: append ` — <reason>` to the marker.",
    },
    RuleDoc {
        name: "nondet-reach",
        short: "nondeterminism sources that transitively reach the JSON or archive codec",
        long: "Interprocedural determinism taint. Sources are hash-ordered \
               iteration (HashMap/HashSet), wall-clock reads (Instant::now / \
               SystemTime::now, outside `obs`), and thread identity \
               (current_thread_index / thread::current). A source inside any \
               function that — at any call depth, over the workspace call graph \
               — reaches the `obscor_obs::json` codec or the hypersparse archive \
               codec is flagged, and the finding message prints the full call \
               chain. Resolution is name-based and over-approximate: a false \
               positive is suppressed per-site, never by weakening the graph. \
               Fix: make the source deterministic (sorted view, registry span) \
               or break the chain. Suppress with \
               `// audit:allow(nondet-reach) — reason`.",
    },
    RuleDoc {
        name: "blocking-in-par",
        short: "blocking calls (lock/recv/join) reachable from inside rayon parallel closures",
        long: "Blocking a rayon work-stealing worker (`.lock()`, `.read()`, \
               `.write()`, `.recv()`, `.recv_timeout(...)`, `.join()`) risks \
               starvation or deadlock: the blocked worker may hold the very task \
               its unblocker needs. Flags blocking operations written directly \
               inside a parallel-closure extent (par_iter adapters, rayon::scope \
               / rayon::join) and calls whose callee transitively blocks, with \
               the full chain in the message. Fix: hoist the blocking operation \
               out of the parallel region (prefetch handles, collect then lock). \
               Suppress with `// audit:allow(blocking-in-par) — reason`.",
    },
    RuleDoc {
        name: "lock-order",
        short: "cycles in the workspace lock-acquisition-order graph",
        long: "Folds every function's ordered lock acquisitions over named \
               static/field locks into one workspace lock graph: an edge A → B \
               means some function holds A while acquiring B (directly, or by \
               calling into a function that acquires B). A cycle is a deadlock \
               candidate — two threads taking the locks in opposite orders can \
               each hold what the other wants. The diagnostic prints the cycle \
               and the file:line witness for each edge. Fix: acquire the locks \
               in one global order everywhere, or narrow a guard's scope so it \
               drops before the next acquisition. Suppress with \
               `// audit:allow(lock-order) — reason` at the witness site.",
    },
    RuleDoc {
        name: "panic-in-drop",
        short: "panic-path sites reachable from `Drop::drop` bodies",
        long: "A panic that starts while another panic is unwinding aborts the \
               process, so `Drop::drop` must be infallible. Flags panic-path \
               sites (`unwrap`, `expect`, `panic!`, ...) written directly in a \
               `Drop::drop` body and calls whose callee can transitively panic, \
               with the full chain in the message. Fix: swallow or log the error \
               in drop; offer an explicit fallible `close()` for callers who \
               care. Suppress with `// audit:allow(panic-in-drop) — reason`.",
    },
    RuleDoc {
        name: "word-bit-manip",
        short: "ad-hoc u64 word/bit set logic outside `assoc::bitset`",
        long: "The compressed bitmap substrate owns the word-parallel membership \
               layout: word = key >> 6, bit = key & 63, masked popcounts. Flags \
               lane splits (`>> 6` with `& 63`/`& 0x3f` on one line) and masked \
               popcounts (`count_ones` beside a binary `&`) anywhere outside \
               `assoc/src/bitset/` — a hand-rolled copy drifts from the \
               containers' promotion/demotion semantics and overlap counts. Fix: \
               build a `BitSet` (or `Container`) and use its set operations. \
               Suppress with `// audit:allow(word-bit-manip) — reason`.",
    },
];

/// Look up one rule's documentation by name.
pub fn rule_doc(name: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.name == name)
}

/// Render the `--explain <rule>` text: header, short line, wrapped body.
pub fn explain(name: &str) -> Option<String> {
    let d = rule_doc(name)?;
    let mut s = format!("{}\n{}\n\nrejects: {}\n\n", d.name, "=".repeat(d.name.len()), d.short);
    // Re-wrap the long text to ~78 columns for terminal output.
    let mut col = 0usize;
    for word in d.long.split_whitespace() {
        if col > 0 && col + 1 + word.len() > 78 {
            s.push('\n');
            col = 0;
        } else if col > 0 {
            s.push(' ');
            col += 1;
        }
        s.push_str(word);
        col += word.len();
    }
    s.push('\n');
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let mut names: Vec<&str> = RULE_DOCS.iter().map(|d| d.name).collect();
        assert_eq!(names.len(), 16);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16, "duplicate rule names in registry");
        for d in RULE_DOCS {
            assert!(!d.short.is_empty() && !d.long.is_empty(), "{} has empty docs", d.name);
        }
    }

    #[test]
    fn explain_renders_known_rules_only() {
        let text = explain("lock-order").expect("known rule");
        assert!(text.starts_with("lock-order\n==========\n"));
        assert!(text.contains("rejects: cycles in the workspace"));
        assert!(text.lines().all(|l| l.len() <= 80), "wrapped to terminal width");
        assert!(explain("no-such-rule").is_none());
    }
}
