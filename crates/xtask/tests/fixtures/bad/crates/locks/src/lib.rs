// Seeds `lock-order`: `transfer` takes `accounts` then `journal` while
// `audit_log` takes them in the opposite order — a two-lock cycle in the
// workspace lock graph. `settle` repeats the consistent order, the
// scoped acquisitions in `report` never overlap, and the allow-marked
// `alpha`/`beta` cycle is silenced at both witness sites.

use std::sync::Mutex;

pub struct Bank {
    pub accounts: Mutex<Vec<u64>>,
    pub journal: Mutex<Vec<String>>,
}

pub fn transfer(b: &Bank) {
    let _a = b.accounts.lock();
    let _j = b.journal.lock();
}

pub fn audit_log(b: &Bank) {
    let _j = b.journal.lock();
    let _a = b.accounts.lock();
}

pub fn settle(b: &Bank) {
    let _a = b.accounts.lock();
    let _j = b.journal.lock();
}

pub fn report(b: &Bank) {
    {
        let _a = b.accounts.lock();
    }
    {
        let _j = b.journal.lock();
    }
}

pub struct Pair {
    pub alpha: Mutex<u64>,
    pub beta: Mutex<u64>,
}

pub fn forward(p: &Pair) {
    let _a = p.alpha.lock();
    // audit:allow(lock-order) — fixture: the marker must silence this cycle
    let _b = p.beta.lock();
}

pub fn backward(p: &Pair) {
    let _b = p.beta.lock();
    // audit:allow(lock-order) — fixture: the marker must silence this cycle
    let _a = p.alpha.lock();
}
