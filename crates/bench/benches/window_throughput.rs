//! Substrate bench: synthetic packet generation, windowing, the libpcap
//! codec at capture rates — and the window-ingest fast-path report.
//!
//! Before the criterion benches run, this binary times each ingest
//! fast path against the differential oracle it replaced (serial sort
//! compaction vs the radix kernel, uncached CryptoPAN vs the memoized
//! prefix table, string key sets vs numeric key sets) and writes the
//! comparison — plus sustained `telescope::stream` throughput rows at
//! several worker counts and the out-of-core fold's cost with its
//! per-level merge timings — as `BENCH_ingest.json` (schema
//! `obscor.bench.ingest.v3`, path override `OBSCOR_BENCH_INGEST_OUT`) —
//! the before/after record DESIGN.md §12/§16 and CI's bench-smoke step
//! point at.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use obscor_anonymize::{CryptoPan, MemoCryptoPan};
use obscor_assoc::NumKeySet;
use obscor_bench::fixture;
use obscor_hypersparse::{Coo, Index};
use obscor_netmodel::{PacketStream, TrafficConfig};
use obscor_pcap::{AcceptAll, ConstantPacketWindower, PcapReader, PcapWriter};
use obscor_telescope::{capture_window, matrix, IngestConfig, IngestService};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const INGEST_KEY: [u8; 32] = [0x5Au8; 32];
const INGEST_REPS: usize = 3;

/// One before/after row of the ingest report.
struct Comparison {
    name: &'static str,
    baseline_ns: u64,
    fast_ns: u64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.baseline_ns as f64 / (self.fast_ns.max(1)) as f64
    }
}

/// One sustained-throughput row of the streaming section.
struct StreamingRow {
    workers: usize,
    queue_depth: usize,
    window_packets: usize,
    median_ns: u64,
    packets_per_sec: f64,
}

/// Accumulated merge timing of one carry level of the out-of-core fold.
struct SpillLevelRow {
    level: usize,
    calls: u64,
    total_ns: u64,
}

/// Median of `reps` timed runs of `f` (wall-clock, via the obs stopwatch).
fn median_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> u64 {
    let mut times: Vec<u64> = (0..reps)
        .map(|_| {
            let (out, ns) = obscor_obs::time_fn(&mut f);
            black_box(out);
            ns
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Time the ingest fast paths against their oracles and write the report.
fn ingest_report(n_v: usize, seed: u64) {
    let f = fixture(n_v, seed);
    let w = capture_window(&f.scenario, &f.scenario.caida_windows[0]);

    // 1. Triple compaction: serial sort-and-dedup vs the radix kernel.
    let triples: Vec<(Index, Index, u64)> =
        w.window.packets.iter().map(|p| (p.src.0, p.dst.0, 1u64)).collect();
    let proto = Coo::from_triples(triples);
    let compaction = Comparison {
        name: "compaction_serial_vs_radix",
        baseline_ns: median_ns(INGEST_REPS, || proto.clone().into_csr_serial()),
        fast_ns: median_ns(INGEST_REPS, || proto.clone().into_csr_radix()),
    };

    // 2. CryptoPAN: 32-AES scalar vs the 16-AES prefix-table path,
    //    scalar and batched, on the window's source addresses (with the
    //    natural duplicate structure of real ingest).
    let addrs: Vec<u32> = w.window.packets.iter().map(|p| p.src.0).collect();
    let uncached = CryptoPan::new(&INGEST_KEY);
    let (memo, table_build_ns) = obscor_obs::time_fn(|| MemoCryptoPan::new(&INGEST_KEY));
    let scalar_baseline_ns = median_ns(INGEST_REPS, || {
        addrs.iter().map(|&a| u64::from(uncached.anonymize(a))).sum::<u64>()
    });
    let cryptopan_scalar = Comparison {
        name: "cryptopan_uncached_vs_memo_scalar",
        baseline_ns: scalar_baseline_ns,
        fast_ns: median_ns(INGEST_REPS, || {
            addrs.iter().map(|&a| u64::from(memo.anonymize(a))).sum::<u64>()
        }),
    };
    let cryptopan_batched = Comparison {
        name: "cryptopan_uncached_vs_memo_batched",
        baseline_ns: scalar_baseline_ns,
        fast_ns: median_ns(INGEST_REPS, || {
            let mut out = addrs.clone();
            memo.anonymize_slice(&mut out);
            out
        }),
    };

    // 3. End-to-end anonymized matrix build, uncached vs memoized.
    let matrix_build = Comparison {
        name: "anonymized_matrix_uncached_vs_memo",
        baseline_ns: median_ns(INGEST_REPS, || matrix::build_anonymized_matrix(&w, &uncached)),
        fast_ns: median_ns(INGEST_REPS, || matrix::build_anonymized_matrix_memo(&w, &memo)),
    };

    // 4. Correlation set ops: string key sets vs numeric key sets on the
    //    first window's sources against its coeval honeyfarm month.
    let wd = &f.degrees[0];
    let month = &f.monthly_sources[wd.month];
    let str_keys = wd.key_set();
    let num_keys = wd.ip_set();
    let num_month = NumKeySet::from_key_set(month).expect("monthly keys are dotted quads");
    let overlap = Comparison {
        name: "overlap_fraction_string_vs_numeric",
        baseline_ns: median_ns(INGEST_REPS, || str_keys.overlap_fraction(month)),
        fast_ns: median_ns(INGEST_REPS, || num_keys.overlap_fraction(&num_month)),
    };

    let comparisons =
        [compaction, cryptopan_scalar, cryptopan_batched, matrix_build, overlap];

    // 5. Sustained streaming throughput: the same captured window pushed
    //    through the `telescope::stream` service at several worker
    //    counts, as packets/sec over the median wall-clock of a full
    //    window (push → shard → compact → fold → snapshot → drain).
    let coords: Vec<(u32, u32)> =
        w.window.packets.iter().map(|p| (p.src.0, p.dst.0)).collect();
    let streaming: Vec<StreamingRow> = [1usize, 2, 4, 8]
        .iter()
        .map(|&workers| {
            let cfg = IngestConfig::new(workers, coords.len());
            let median = median_ns(INGEST_REPS, || {
                let mut svc = IngestService::new(cfg.clone());
                svc.push_pairs(&coords);
                let (snaps, drain) = svc.finish();
                assert!(drain.is_exact(), "bench drain must be exact");
                snaps
            });
            StreamingRow {
                workers,
                queue_depth: cfg.queue_depth,
                window_packets: coords.len(),
                median_ns: median,
                packets_per_sec: coords.len() as f64 * 1e9 / median.max(1) as f64,
            }
        })
        .collect();

    // 6. Out-of-core fold (DESIGN.md §16): the same window built through
    //    the spill scheduler under a zero budget (every carry evicted to
    //    a real temp directory — the fully out-of-core worst case)
    //    against the plain in-memory build, with the per-level merge
    //    timings the spill spans record while enabled.
    obscor_hypersparse::spill::enable_spill_metrics();
    let ooc_baseline_ns = median_ns(INGEST_REPS, || matrix::build_matrix(&w));
    let mut spill_stats = obscor_hypersparse::SpillStats::default();
    let before = obscor_obs::snapshot();
    let ooc_spilled_ns = median_ns(INGEST_REPS, || {
        let (m, report) =
            matrix::build_matrix_spilled(&w, Some(0), None).expect("temp spill dir");
        assert!(report.is_exact(), "bench spill fold must be exact");
        spill_stats = report.stats;
        m
    });
    let spill_delta = obscor_obs::snapshot().delta_since(&before);
    let mut spill_levels: Vec<SpillLevelRow> = spill_delta
        .counters
        .iter()
        .filter_map(|(name, &calls)| {
            let level = name
                .strip_prefix("span.hypersparse.spill.merge.level")?
                .strip_suffix(".calls_total")?;
            let ns = spill_delta
                .histograms
                .get(&format!("span.hypersparse.spill.merge.level{level}.ns"))?;
            Some(SpillLevelRow { level: level.parse().ok()?, calls, total_ns: ns.sum })
        })
        .collect();
    spill_levels.sort_by_key(|r| r.level);
    let out_of_core = Comparison {
        name: "window_fold_in_memory_vs_spilled",
        baseline_ns: ooc_baseline_ns,
        fast_ns: ooc_spilled_ns,
    };

    eprintln!("\n=== WINDOW INGEST FAST PATH (N_V = {n_v}) ===");
    eprintln!("memo_table_build {table_build_ns} ns");
    for c in &comparisons {
        eprintln!(
            "{:<38} baseline {:>12} ns  fast {:>12} ns  speedup {:>7.2}x",
            c.name,
            c.baseline_ns,
            c.fast_ns,
            c.speedup()
        );
    }
    for r in &streaming {
        eprintln!(
            "streaming workers={} depth={}            median {:>12} ns  {:>12.0} packets/sec",
            r.workers, r.queue_depth, r.median_ns, r.packets_per_sec
        );
    }
    eprintln!(
        "{:<38} baseline {:>12} ns  fast {:>12} ns  speedup {:>7.2}x",
        out_of_core.name,
        out_of_core.baseline_ns,
        out_of_core.fast_ns,
        out_of_core.speedup()
    );
    for r in &spill_levels {
        eprintln!(
            "spill merge level{}                      calls {:>12}      {:>12} ns total",
            r.level, r.calls, r.total_ns
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"obscor.bench.ingest.v3\",\n");
    json.push_str(&format!("  \"n_v\": {n_v},\n"));
    json.push_str(&format!("  \"reps\": {INGEST_REPS},\n"));
    json.push_str(&format!("  \"memo_table_build_ns\": {table_build_ns},\n"));
    json.push_str("  \"comparisons\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_ns\": {}, \"fast_ns\": {}, \"speedup\": {:.3}}}{}\n",
            c.name,
            c.baseline_ns,
            c.fast_ns,
            c.speedup(),
            if i + 1 < comparisons.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"streaming\": [\n");
    for (i, r) in streaming.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"queue_depth\": {}, \"window_packets\": {}, \"median_ns\": {}, \"packets_per_sec\": {:.0}}}{}\n",
            r.workers,
            r.queue_depth,
            r.window_packets,
            r.median_ns,
            r.packets_per_sec,
            if i + 1 < streaming.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"out_of_core\": {\n");
    json.push_str("    \"budget\": 0,\n");
    json.push_str(&format!(
        "    \"in_memory_ns\": {}, \"spilled_ns\": {}, \"relative_cost\": {:.3},\n",
        out_of_core.baseline_ns,
        out_of_core.fast_ns,
        out_of_core.fast_ns as f64 / out_of_core.baseline_ns.max(1) as f64
    ));
    json.push_str(&format!(
        "    \"evictions\": {}, \"reloads\": {}, \"peak_live_bytes\": {},\n",
        spill_stats.evictions, spill_stats.reloads, spill_stats.peak_live_bytes
    ));
    json.push_str("    \"merge_levels\": [\n");
    for (i, r) in spill_levels.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"level\": {}, \"calls\": {}, \"total_ns\": {}}}{}\n",
            r.level,
            r.calls,
            r.total_ns,
            if i + 1 < spill_levels.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    let out = std::env::var("OBSCOR_BENCH_INGEST_OUT")
        .unwrap_or_else(|_| "BENCH_ingest.json".to_string());
    std::fs::write(&out, &json).expect("write ingest fast-path report");
    eprintln!("ingest report -> {out}");
}

fn bench(c: &mut Criterion) {
    let f = fixture(1 << 16, 42);
    let scenario = &f.scenario;

    ingest_report(1 << 16, 42);

    let mut g = c.benchmark_group("window_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(scenario.n_v as u64));

    g.bench_function("packet_generation_raw", |b| {
        b.iter(|| {
            let rng = StdRng::seed_from_u64(1);
            let stream = PacketStream::at_instant(
                &scenario.population,
                7.0,
                TrafficConfig::default(),
                0,
                rng,
            );
            let count = stream.take(scenario.n_v).count();
            black_box(count)
        })
    });

    g.bench_function("windower", |b| {
        b.iter(|| {
            let rng = StdRng::seed_from_u64(1);
            let stream = PacketStream::at_instant(
                &scenario.population,
                7.0,
                TrafficConfig::default(),
                0,
                rng,
            );
            let mut w = ConstantPacketWindower::new(stream, AcceptAll, scenario.n_v);
            black_box(w.next())
        })
    });

    g.bench_function("capture_window_end_to_end", |b| {
        b.iter(|| black_box(capture_window(scenario, &scenario.caida_windows[0])))
    });

    let w = capture_window(scenario, &scenario.caida_windows[0]);
    g.bench_function("pcap_write", |b| {
        b.iter(|| {
            let mut writer = PcapWriter::new();
            for p in &w.window.packets {
                writer.write_packet(p);
            }
            black_box(writer.into_bytes())
        })
    });
    let bytes = {
        let mut writer = PcapWriter::new();
        for p in &w.window.packets {
            writer.write_packet(p);
        }
        writer.into_bytes()
    };
    g.bench_function("pcap_parse_and_verify_checksums", |b| {
        b.iter(|| black_box(PcapReader::new(&bytes).unwrap().read_all().unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
