//! Bootstrap confidence intervals for fitted parameters.
//!
//! Figs 7 and 8 plot point estimates of α and β per degree bin; a
//! measurement paper needs to know how tight those estimates are. The
//! nonparametric bootstrap resamples the months of a temporal curve with
//! replacement, refits, and reads percentile intervals off the resampled
//! parameter distribution.

use crate::fit::{fit_modified_cauchy_grid, ModCauchyFit};
use crate::interval::Interval;
use crate::summary::quantile;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Bootstrap percentile intervals for a modified-Cauchy fit.
#[derive(Clone, Debug, PartialEq)]
pub struct BootstrapFit {
    /// The full-data fit.
    pub fit: ModCauchyFit,
    /// Percentile interval on α.
    pub alpha_ci: Interval,
    /// Percentile interval on β.
    pub beta_ci: Interval,
    /// Number of successful resample fits.
    pub n_resamples: usize,
}

/// Resample `(lag, value)` pairs with replacement and refit `n_resamples`
/// times; return the full-data fit plus `level` (e.g. 0.95) percentile
/// intervals. Deterministic in `seed`.
///
/// Returns `None` if the full-data fit fails or fewer than 10 resamples
/// produce a fit.
///
/// # Panics
/// Panics unless `0 < level < 1` and the slices pair up.
pub fn bootstrap_modified_cauchy(
    lags: &[f64],
    values: &[f64],
    alphas: &[f64],
    betas: &[f64],
    n_resamples: usize,
    level: f64,
    seed: u64,
) -> Option<BootstrapFit> {
    assert_eq!(lags.len(), values.len());
    assert!(level > 0.0 && level < 1.0, "level must be in (0, 1)");
    let fit = fit_modified_cauchy_grid(lags, values, alphas, betas)?;
    let n = lags.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut alpha_samples = Vec::with_capacity(n_resamples);
    let mut beta_samples = Vec::with_capacity(n_resamples);
    for _ in 0..n_resamples {
        let mut rl = Vec::with_capacity(n);
        let mut rv = Vec::with_capacity(n);
        for _ in 0..n {
            let k = rng.random_range(0..n);
            rl.push(lags[k]);
            rv.push(values[k]);
        }
        if let Some(f) = fit_modified_cauchy_grid(&rl, &rv, alphas, betas) {
            alpha_samples.push(f.alpha);
            beta_samples.push(f.beta);
        }
    }
    if alpha_samples.len() < 10 {
        return None;
    }
    let tail = (1.0 - level) / 2.0;
    let ci = |samples: &[f64]| Interval {
        lo: quantile(samples, tail).unwrap(),
        hi: quantile(samples, 1.0 - tail).unwrap(),
    };
    Some(BootstrapFit {
        fit,
        alpha_ci: ci(&alpha_samples),
        beta_ci: ci(&beta_samples),
        n_resamples: alpha_samples.len(),
    })
}

/// Sample `Rng`-driven bootstrap means of a plain statistic (used for
/// fraction error bars when the Wilson interval's independence assumption
/// is in doubt).
pub fn bootstrap_mean_ci(
    values: &[f64],
    n_resamples: usize,
    level: f64,
    seed: u64,
) -> Option<Interval> {
    assert!(level > 0.0 && level < 1.0, "level must be in (0, 1)");
    if values.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n = values.len();
    let means: Vec<f64> = (0..n_resamples)
        .map(|_| {
            (0..n).map(|_| values[rng.random_range(0..n)]).sum::<f64>() / n as f64
        })
        .collect();
    let tail = (1.0 - level) / 2.0;
    Some(Interval { lo: quantile(&means, tail)?, hi: quantile(&means, 1.0 - tail)? })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::{default_mc_alpha_grid, default_mc_beta_grid, TemporalModel};

    fn curve(alpha: f64, beta: f64, noise: f64) -> (Vec<f64>, Vec<f64>) {
        let model = TemporalModel::ModifiedCauchy { alpha, beta };
        let lags: Vec<f64> = (-7..=7).map(|m| m as f64).collect();
        let values: Vec<f64> = lags
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let wiggle = noise * (((i * 37) % 11) as f64 / 11.0 - 0.5);
                (0.8 * model.eval(t) + wiggle).max(0.0)
            })
            .collect();
        (lags, values)
    }

    fn grids() -> (Vec<f64>, Vec<f64>) {
        (default_mc_alpha_grid(), default_mc_beta_grid())
    }

    #[test]
    fn interval_covers_the_planted_parameter() {
        let (lags, values) = curve(1.0, 2.0, 0.02);
        let (a, b) = grids();
        let boot =
            bootstrap_modified_cauchy(&lags, &values, &a, &b, 100, 0.95, 7).unwrap();
        assert!(
            boot.alpha_ci.contains(1.0),
            "alpha CI [{:.2}, {:.2}] misses 1.0",
            boot.alpha_ci.lo,
            boot.alpha_ci.hi
        );
        assert!(boot.beta_ci.contains(2.0) || boot.beta_ci.hi > 1.5);
        assert!(boot.n_resamples >= 90);
    }

    #[test]
    fn noisier_data_gives_wider_intervals() {
        let (a, b) = grids();
        let (l1, v1) = curve(1.0, 2.0, 0.005);
        let (l2, v2) = curve(1.0, 2.0, 0.15);
        let tight = bootstrap_modified_cauchy(&l1, &v1, &a, &b, 80, 0.95, 1).unwrap();
        let loose = bootstrap_modified_cauchy(&l2, &v2, &a, &b, 80, 0.95, 1).unwrap();
        assert!(
            loose.alpha_ci.half_width() >= tight.alpha_ci.half_width(),
            "noisy {:.3} vs clean {:.3}",
            loose.alpha_ci.half_width(),
            tight.alpha_ci.half_width()
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let (lags, values) = curve(1.5, 1.0, 0.05);
        let (a, b) = grids();
        let x = bootstrap_modified_cauchy(&lags, &values, &a, &b, 50, 0.9, 3).unwrap();
        let y = bootstrap_modified_cauchy(&lags, &values, &a, &b, 50, 0.9, 3).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn unfittable_data_gives_none() {
        let lags = vec![0.0, 1.0, 2.0];
        let values = vec![0.0, 0.0, 0.0];
        let (a, b) = grids();
        assert!(bootstrap_modified_cauchy(&lags, &values, &a, &b, 50, 0.95, 1).is_none());
    }

    #[test]
    fn mean_ci_brackets_the_mean() {
        let values: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let ci = bootstrap_mean_ci(&values, 200, 0.95, 5).unwrap();
        let mean = 4.5;
        assert!(ci.contains(mean), "CI [{:.2}, {:.2}]", ci.lo, ci.hi);
        assert!(ci.half_width() < 1.0);
        assert!(bootstrap_mean_ci(&[], 10, 0.95, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "level")]
    fn bad_level_panics() {
        let _ = bootstrap_mean_ci(&[1.0], 10, 1.5, 1);
    }
}
