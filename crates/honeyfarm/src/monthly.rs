//! Monthly honeyfarm observations as D4M associative arrays.
//!
//! For each month of the grid, the honeyfarm produces an associative
//! array whose rows are the detected source IPs (dotted-quad keys) and
//! whose columns carry the enrichment metadata ("class", "intent",
//! "handshake", "month"). The row key set of a month *is* the GreyNoise
//! source set the paper correlates against.

use crate::detect::DetectionModel;
use crate::engage::engage;
use obscor_assoc::convert::ip_key;
use obscor_assoc::{Assoc, KeySet, StrAssoc};
use obscor_netmodel::Scenario;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;

/// One month of honeyfarm output.
#[derive(Clone, Debug, PartialEq)]
pub struct MonthlyObservation {
    /// Month index on the scenario grid.
    pub month: usize,
    /// `YYYY-MM` label.
    pub label: String,
    /// Enrichment array: rows are detected sources, columns metadata.
    pub assoc: StrAssoc,
}

impl MonthlyObservation {
    /// The set of detected source keys (the GreyNoise source set).
    pub fn source_keys(&self) -> &KeySet {
        self.assoc.row_keys()
    }

    /// Number of detected sources (Table I's GreyNoise "Sources" column).
    pub fn n_sources(&self) -> usize {
        self.assoc.n_rows()
    }
}

/// The detection model implied by a scenario's calibration.
pub fn scenario_detection(scenario: &Scenario) -> DetectionModel {
    DetectionModel::new(scenario.bright_log2(), scenario.brightness_to_degree)
}

/// Observe one month. Deterministic in `(scenario.seed, month)`.
///
/// # Panics
/// Panics if `month` is off the grid.
pub fn observe_month(scenario: &Scenario, month: usize) -> MonthlyObservation {
    assert!(month < scenario.grid.len(), "month off the grid");
    let (lo, hi) = scenario.grid.month_interval(month);
    let label = scenario.grid.label(month);
    let coverage = scenario.coverage_boost[month];
    let detection = scenario_detection(scenario);
    let mut rng = StdRng::seed_from_u64(scenario.seed ^ (0x9E37 + month as u64) << 16);
    let mut triples: Vec<(String, String, String)> = Vec::new();
    for source in &scenario.population.sources {
        let p = detection.monthly_probability(source, lo, hi, coverage);
        if p <= 0.0 || rng.random::<f64>() >= p {
            continue;
        }
        let e = engage(source.class, &mut rng);
        let key = ip_key(source.ip.0);
        triples.push((key.clone(), "class".into(), e.observed_class.label().into()));
        triples.push((key.clone(), "intent".into(), e.intent.into()));
        triples.push((key.clone(), "handshake".into(), e.handshake.to_string()));
        triples.push((key, "month".into(), label.clone()));
    }
    // Background: the wider Internet the honeyfarm sees but the telescope's
    // /8 never does. These rows give the GreyNoise inventory its Table I
    // scale; they cannot collide with telescope sources (checked against
    // the world population), so they leave every correlation untouched.
    let world: std::collections::HashSet<u32> =
        scenario.population.sources.iter().map(|s| s.ip.0).collect();
    let n_background = ((scenario.population.len() as f64
        * scenario.honeyfarm_background_factor
        * coverage) as usize)
        .min(20_000_000);
    let mut added = 0usize;
    while added < n_background {
        let ip: u32 = rng.random();
        if (ip >> 24) as u8 == scenario.population.config.darkspace_octet
            || world.contains(&ip)
        {
            continue;
        }
        let key = ip_key(ip);
        triples.push((key.clone(), "class".into(), "unknown".into()));
        triples.push((key, "month".into(), label.clone()));
        added += 1;
    }
    MonthlyObservation { month, label, assoc: Assoc::from_triples_last(triples) }
}

/// Observe every month of the grid, in parallel.
pub fn observe_all_months(scenario: &Scenario) -> Vec<MonthlyObservation> {
    (0..scenario.grid.len())
        .into_par_iter()
        .map(|m| observe_month(scenario, m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_netmodel::Scenario;
    use std::sync::OnceLock;

    fn scenario() -> &'static Scenario {
        static S: OnceLock<Scenario> = OnceLock::new();
        S.get_or_init(|| Scenario::paper_scaled(1 << 14, 21))
    }

    #[test]
    fn observation_is_deterministic() {
        let s = scenario();
        let a = observe_month(s, 4);
        let b = observe_month(s, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn months_have_labels_and_sources() {
        let s = scenario();
        let obs = observe_month(s, 0);
        assert_eq!(obs.label, "2020-02");
        assert!(obs.n_sources() > 0);
        assert_eq!(obs.source_keys().len(), obs.n_sources());
    }

    #[test]
    fn metadata_columns_are_complete() {
        let s = scenario();
        let obs = observe_month(s, 4);
        let mut engaged = 0;
        let mut background = 0;
        for key in obs.source_keys().iter() {
            let class = obs.assoc.get(key, "class").expect("class present");
            assert_eq!(obs.assoc.get(key, "month"), Some(&"2020-06".to_string()));
            if class == "unknown" {
                // Background rows carry no engagement metadata.
                background += 1;
                assert_eq!(obs.assoc.get(key, "intent"), None);
                continue;
            }
            engaged += 1;
            assert!(obscor_netmodel::SourceClass::from_label(class).is_some());
            let intent = obs.assoc.get(key, "intent").expect("intent present");
            assert!(intent == "malicious" || intent == "benign");
            let hs = obs.assoc.get(key, "handshake").expect("handshake present");
            assert!(hs == "true" || hs == "false");
        }
        assert!(engaged > 0, "no engaged sources");
        assert!(background > 0, "no background sources");
    }

    #[test]
    fn background_never_collides_with_world_sources() {
        let s = scenario();
        let obs = observe_month(s, 4);
        let world: std::collections::HashSet<String> =
            s.population.sources.iter().map(|x| ip_key(x.ip.0)).collect();
        for key in obs.source_keys().iter() {
            let class = obs.assoc.get(key, "class").unwrap();
            if class == "unknown" {
                assert!(!world.contains(key), "background row {key} is a world source");
            }
        }
    }

    #[test]
    fn coverage_boost_months_see_more_sources() {
        let s = scenario();
        let normal = observe_month(s, 0).n_sources() as f64;
        let boosted = observe_month(s, 1).n_sources() as f64; // 2020-03 config change
        assert!(
            boosted > normal * 1.5,
            "boosted month {boosted} vs normal {normal}"
        );
    }

    #[test]
    fn bright_sources_are_always_seen_when_active() {
        let s = scenario();
        let (lo, hi) = s.grid.month_interval(7);
        let obs = observe_month(s, 7);
        let sqrt_nv = s.sqrt_nv();
        for src in &s.population.sources {
            if src.interval.overlaps(lo, hi)
                && s.expected_degree(src.brightness) >= sqrt_nv * 2.0
            {
                assert!(
                    obs.source_keys().contains(&ip_key(src.ip.0)),
                    "bright active source {} missing from month 7",
                    src.ip
                );
            }
        }
    }

    #[test]
    fn all_months_parallel_matches_serial() {
        let s = scenario();
        let all = observe_all_months(s);
        assert_eq!(all.len(), 15);
        assert_eq!(all[3], observe_month(s, 3));
    }

    #[test]
    #[should_panic(expected = "off the grid")]
    fn out_of_range_month_panics() {
        let _ = observe_month(scenario(), 15);
    }
}
