//! Integration: a captured window survives a full archive round trip —
//! telescope → libpcap bytes → parse (checksums verified) → rebuilt
//! traffic matrix — with every analysis quantity intact.

use obscor::hypersparse::reduce::NetworkQuantities;
use obscor::hypersparse::HierarchicalAccumulator;
use obscor::netmodel::Scenario;
use obscor::pcap::{PcapReader, PcapWriter};
use obscor::telescope::{capture_window, matrix};

#[test]
fn window_to_pcap_and_back_preserves_the_matrix() {
    let s = Scenario::paper_scaled(1 << 14, 55);
    let w = capture_window(&s, &s.caida_windows[0]);
    let original = matrix::build_matrix(&w);

    // Archive as real libpcap.
    let mut writer = PcapWriter::new();
    for p in &w.window.packets {
        writer.write_packet(p);
    }
    let bytes = writer.into_bytes();

    // Restore: parse (verifying IPv4 + transport checksums) and rebuild.
    let packets = PcapReader::new(&bytes).unwrap().read_all().unwrap();
    assert_eq!(packets.len(), s.n_v);
    let mut acc = HierarchicalAccumulator::with_leaf_capacity(2048);
    for p in &packets {
        acc.push_edge(p.src.0, p.dst.0);
    }
    let restored = acc.finalize();

    assert_eq!(original, restored, "matrices must be bit-identical");
    assert_eq!(
        NetworkQuantities::compute(&original),
        NetworkQuantities::compute(&restored)
    );
}

#[test]
fn pcap_timestamps_preserve_window_duration() {
    let s = Scenario::paper_scaled(1 << 14, 56);
    let w = capture_window(&s, &s.caida_windows[2]);
    let mut writer = PcapWriter::new();
    for p in &w.window.packets {
        writer.write_packet(p);
    }
    let packets = PcapReader::new(&writer.into_bytes()).unwrap().read_all().unwrap();
    let duration = (packets.last().unwrap().ts_micros - packets[0].ts_micros) as f64 / 1e6;
    assert!(
        (duration - w.duration_secs()).abs() < 1e-3,
        "duration drifted: {duration} vs {}",
        w.duration_secs()
    );
}

#[test]
fn class_behaviour_is_visible_in_the_archive() {
    // The synthetic world's class structure must survive into the pcap:
    // scanners hit the scan-port list, botnet nodes the C2 port.
    let s = Scenario::paper_scaled(1 << 14, 57);
    let w = capture_window(&s, &s.caida_windows[0]);
    let mut writer = PcapWriter::new();
    for p in &w.window.packets {
        writer.write_packet(p);
    }
    let packets = PcapReader::new(&writer.into_bytes()).unwrap().read_all().unwrap();
    let c2 = packets.iter().filter(|p| p.dst_port == 6667).count();
    let scanned = packets
        .iter()
        .filter(|p| [22, 23, 80, 443, 445, 3389].contains(&p.dst_port))
        .count();
    assert!(c2 > 0, "no botnet C2 traffic in archive");
    assert!(scanned > 0, "no scan traffic in archive");
}
