//! Seeded `instant-timing` violations for the audit gate tests.

use std::time::{Instant, SystemTime};

pub fn timed() -> u64 {
    let start = Instant::now(); // seeded: instant-timing
    let wall = SystemTime::now(); // seeded: instant-timing
    // audit:allow(instant-timing) — sanctioned fixture example
    let ok = Instant::now();
    let _ = (start, wall, ok);
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let _ = std::time::Instant::now();
    }
}
