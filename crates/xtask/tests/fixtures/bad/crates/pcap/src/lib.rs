//! Seeded violations: unwrapping codec results in panic-free pcap code.

/// Decode an archived leaf, panicking on any fault — the exact pattern
/// the fault-recovery layer forbids outside tests.
pub fn decode_leaf_or_die(bytes: &[u8]) -> Csr {
    serialize::decode(bytes).unwrap()
}

/// Same violation through `expect` on a leaf read result.
pub fn read_leaf_or_die(src: &Source, i: usize) -> Vec<u8> {
    src.read_leaf(i).expect("leaf must read")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_exempt() {
        serialize::decode(&[]).unwrap_err();
    }
}
