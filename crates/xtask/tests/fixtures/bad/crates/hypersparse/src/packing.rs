// Audit fixture: seeds a `key-pack` violation (ad-hoc u64 key packing
// outside the keypack helper).

pub fn pack_inline(row: u32, col: u32) -> u64 {
    // Seeded violation: packs the key without keypack::pack_key.
    (row as u64) << 32 | col as u64
}

pub fn pack_allowed(row: u32, col: u32) -> u64 {
    // audit:allow(key-pack) — fixture: the suppression marker must silence this site
    (row as u64) << 32 | col as u64
}

#[cfg(test)]
mod tests {
    // Test code is exempt from the key-pack rule.
    pub fn packed_in_test(row: u32, col: u32) -> u64 {
        (row as u64) << 32 | col as u64
    }
}
