// Audit fixture: seeds `index-cast` and `panic-path` violations.
// This file is never compiled; it exists only as input for the audit's
// integration tests.

pub fn pick(v: &[u64]) -> u64 {
    if v.is_empty() {
        panic!("empty input"); // seeded panic-path violation (panic!)
    }
    let i = v.len() as u32; // seeded index-cast violation (.len() source)
    let wide = (v[0] & (u64::MAX >> 8)) as usize; // seeded index-cast violation (u64 source)
    let first = v.first().unwrap(); // seeded panic-path violation (unwrap)
    *first + u64::from(i) + wide as u64
}

#[cfg(test)]
mod tests {
    // Test code is exempt: none of these may be reported.
    #[test]
    fn exempt() {
        let v: Vec<u64> = vec![1];
        let _ = v.first().unwrap();
        let _ = v.len() as u32;
    }
}
