//! Window capture: drive the world model at a sampling instant and take
//! exactly `N_V` valid packets.

use crate::darkspace::Darkspace;
use obscor_netmodel::scenario::CaidaWindowSpec;
use obscor_netmodel::{PacketStream, Scenario};
use obscor_pcap::{ConstantPacketWindower, Window};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Seconds per model month (30-day months, matching the model clock).
const SECS_PER_MONTH: f64 = 30.0 * 24.0 * 3600.0;

/// One captured telescope window: Table I row plus the raw valid packets.
#[derive(Clone, Debug)]
pub struct TelescopeWindow {
    /// Table I timestamp label, e.g. `2020-06-17-12:00:00`.
    pub label: String,
    /// Model-time coordinate (months since grid start).
    pub coord: f64,
    /// The captured constant-packet window.
    pub window: Window,
}

impl TelescopeWindow {
    /// Number of valid packets (always the scenario's `N_V`).
    pub fn packets(&self) -> usize {
        self.window.packets.len()
    }

    /// Wall-clock duration in seconds (Table I's variable-duration column).
    pub fn duration_secs(&self) -> f64 {
        self.window.duration_secs()
    }

    /// Number of unique sources in the window.
    pub fn unique_sources(&self) -> usize {
        let mut srcs: Vec<u32> = self.window.packets.iter().map(|p| p.src.0).collect();
        srcs.sort_unstable();
        srcs.dedup();
        srcs.len()
    }
}

/// The darkspace a scenario's telescope monitors.
pub fn scenario_darkspace(scenario: &Scenario) -> Darkspace {
    Darkspace::slash8(scenario.population.config.darkspace_octet, scenario.traffic.n_allocated)
}

/// Capture one window at a scenario sampling instant.
///
/// Deterministic in `(scenario.seed, spec.coord)`: capturing the same
/// window twice yields identical packets.
pub fn capture_window(scenario: &Scenario, spec: &CaidaWindowSpec) -> TelescopeWindow {
    capture_window_at(scenario, spec, scenario.population.config.darkspace_octet)
}

/// Capture one window as seen by an observatory monitoring a *different*
/// /8 (`octet`) of the same world — the second-telescope experiment the
/// paper's discussion motivates ("comparing observations from different
/// locations on the Internet"). Spray traffic (scanning, backscatter)
/// reaches every observatory; each observatory samples the beam
/// independently, so cross-telescope overlap isolates the
/// brightness-determines-visibility effect from honeyfarm detection
/// physics.
pub fn capture_window_at(
    scenario: &Scenario,
    spec: &CaidaWindowSpec,
    octet: u8,
) -> TelescopeWindow {
    let w = capture_window_quiet(scenario, spec, octet);
    record_capture_totals(std::slice::from_ref(&w));
    w
}

/// The seeded endless packet stream and darkspace validity filter behind
/// [`capture_window_at`] — the single source of truth for how a sampling
/// instant's traffic is generated. Public so the streaming ingest service
/// (`telescope::stream`, `cli serve`) can drain the *same* deterministic
/// source the batch capture path reads, which is what makes the
/// streamed-vs-batch differential tests byte-exact.
pub fn window_traffic_source<'a>(
    scenario: &'a Scenario,
    spec: &CaidaWindowSpec,
    octet: u8,
) -> (PacketStream<'a, StdRng>, crate::darkspace::DarkspaceFilter) {
    let ds = Darkspace::slash8(octet, scenario.traffic.n_allocated);
    let start_micros = (spec.coord * SECS_PER_MONTH * 1e6) as u64;
    let rng =
        StdRng::seed_from_u64(scenario.seed ^ spec.coord.to_bits() ^ ((octet as u64) << 48));
    let stream = PacketStream::at_instant_toward(
        &scenario.population,
        spec.coord,
        scenario.traffic,
        octet,
        start_micros,
        rng,
    );
    (stream, ds.validity_filter())
}

/// The capture itself, with no metric recording.
///
/// This is the body the parallel driver runs on rayon workers: the
/// registry's metric name lookup takes a lock, so counter updates stay
/// out of the closure (blocking-in-par) and are recorded by the caller
/// via [`record_capture_totals`]. Timing spans are fine — starting one
/// touches no lock, and the drop-time recording is outside this fn.
fn capture_window_quiet(
    scenario: &Scenario,
    spec: &CaidaWindowSpec,
    octet: u8,
) -> TelescopeWindow {
    let _span = obscor_obs::span("telescope.capture_window");
    let (stream, filter) = window_traffic_source(scenario, spec, octet);
    let mut windower = ConstantPacketWindower::new(stream, filter, scenario.n_v);
    let window = windower
        .next()
        // audit:allow(panic-path) — the synthetic traffic stream is infinite by construction, so the windower can never run dry; a None here is a programming error
        .expect("endless packet stream must always fill a window");
    TelescopeWindow { label: spec.label.clone(), coord: spec.coord, window }
}

/// Record the valid/discarded packet counters for captured windows.
fn record_capture_totals(windows: &[TelescopeWindow]) {
    let valid: u64 = windows.iter().map(|w| w.packets() as u64).sum();
    let discarded: u64 = windows.iter().map(|w| w.window.discarded).sum();
    obscor_obs::counter("telescope.capture.valid_packets_total").add(valid);
    obscor_obs::counter("telescope.capture.discarded_packets_total").add(discarded);
}

/// Capture every scenario window, in parallel.
pub fn capture_all_windows(scenario: &Scenario) -> Vec<TelescopeWindow> {
    let _span = obscor_obs::span("telescope.capture_all_windows");
    obscor_obs::counter("telescope.capture.windows_total")
        .add(scenario.caida_windows.len() as u64);
    let octet = scenario.population.config.darkspace_octet;
    let windows: Vec<TelescopeWindow> = scenario
        .caida_windows
        .par_iter()
        .map(|spec| capture_window_quiet(scenario, spec, octet))
        .collect();
    record_capture_totals(&windows);
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_netmodel::Scenario;

    fn scenario() -> Scenario {
        Scenario::paper_scaled(1 << 14, 77)
    }

    #[test]
    fn window_has_exactly_nv_valid_packets() {
        let s = scenario();
        let w = capture_window(&s, &s.caida_windows[0]);
        assert_eq!(w.packets(), s.n_v);
        let ds = scenario_darkspace(&s);
        assert!(w
            .window
            .packets
            .iter()
            .all(|p| ds.contains(p.dst) && !ds.is_allocated(p.dst)));
    }

    #[test]
    fn legitimate_traffic_is_discarded() {
        let s = scenario();
        let w = capture_window(&s, &s.caida_windows[0]);
        assert!(w.window.discarded > 0, "some legitimate packets must have arrived");
        // Roughly the configured legitimate fraction.
        let frac = w.window.discarded as f64 / (s.n_v as u64 + w.window.discarded) as f64;
        assert!(
            (frac - s.traffic.legit_fraction).abs() < 0.01,
            "discard fraction {frac}"
        );
    }

    #[test]
    fn capture_is_deterministic() {
        let s = scenario();
        let a = capture_window(&s, &s.caida_windows[2]);
        let b = capture_window(&s, &s.caida_windows[2]);
        assert_eq!(a.window, b.window);
    }

    #[test]
    fn different_windows_differ() {
        let s = scenario();
        let a = capture_window(&s, &s.caida_windows[0]);
        let b = capture_window(&s, &s.caida_windows[1]);
        assert_ne!(a.window.packets, b.window.packets);
    }

    #[test]
    fn duration_matches_arrival_rate() {
        let s = scenario();
        let w = capture_window(&s, &s.caida_windows[0]);
        // N_V packets at the diurnal-adjusted rate take about n_v/rate
        // seconds (legitimate traffic stretches it a percent or so).
        let expect = s.n_v as f64 / s.traffic.rate_at(s.caida_windows[0].coord);
        assert!(
            (w.duration_secs() - expect).abs() / expect < 0.1,
            "duration {} vs expected {expect}",
            w.duration_secs()
        );
    }

    #[test]
    fn parallel_capture_matches_serial() {
        let s = scenario();
        let all = capture_all_windows(&s);
        assert_eq!(all.len(), 5);
        let serial = capture_window(&s, &s.caida_windows[3]);
        assert_eq!(all[3].window, serial.window);
        assert_eq!(all[3].label, "2020-10-28-00:00:00");
    }

    #[test]
    fn noon_and_midnight_windows_have_different_durations() {
        // Table I: constant packets, variable time. The diurnal cycle makes
        // the 12:00 windows shorter than the 00:00 windows.
        let s = scenario();
        let noon = capture_window(&s, &s.caida_windows[0]); // ...-12:00:00
        let midnight = capture_window(&s, &s.caida_windows[1]); // ...-00:00:00
        assert!(
            noon.duration_secs() < midnight.duration_secs(),
            "noon {:.2}s should be shorter than midnight {:.2}s",
            noon.duration_secs(),
            midnight.duration_secs()
        );
    }

    #[test]
    fn sources_are_plausible() {
        let s = scenario();
        let w = capture_window(&s, &s.caida_windows[0]);
        let n = w.unique_sources();
        assert!(n > 10, "too few sources: {n}");
        assert!(n <= s.population.len());
    }
}
