//! Month×source membership matrix: all monthly overlaps in one sweep.
//!
//! The temporal-curve analysis asks, for every telescope bin, "how many
//! of this bin's sources does month *m* contain?" for every month. Done
//! pairwise that is `n_months` full intersections per bin, each walking
//! the bin's keys again. [`MonthMatrix`] transposes the work: it groups
//! the months' containers **by chunk**, so a single merge-join over the
//! bin's chunks visits each bin container once and scores it against
//! every month that has keys in that chunk — the bin side of the work is
//! paid once instead of `n_months` times, and the per-month scoring is
//! the same word-parallel container arithmetic as `BitSet`.
//!
//! Counts are exact integers (the same integers the pairwise path
//! produces), so fractions derived from them stay bit-identical.

use super::container::Container;
use super::{metrics, BitSet};
use crate::keys::NumKeySet;

/// Per-chunk slice of the matrix: which months occupy this chunk, and
/// with which container.
struct ChunkEntry {
    /// High 16 bits of the keys this entry covers.
    hi: u16,
    /// `(month index, that month's container for this chunk)`, in
    /// strictly increasing month order.
    months: Vec<(usize, Container)>,
}

/// A month×source membership matrix over compressed containers.
///
/// Built once per analysis from the monthly honeyfarm source sets; probed
/// once per bin via [`MonthMatrix::overlap_counts`].
pub struct MonthMatrix {
    /// Non-empty chunks in strictly increasing `hi` order.
    chunks: Vec<ChunkEntry>,
    /// Cardinality of each month's full set (fraction denominators and
    /// quadrant totals come from here without re-walking containers).
    month_lens: Vec<usize>,
}

impl MonthMatrix {
    /// Build from the monthly source sets, preserving month order.
    pub fn from_months(months: &[NumKeySet]) -> Self {
        let sets: Vec<BitSet> = months.iter().map(BitSet::from_num_key_set).collect();
        Self::from_bit_sets(&sets)
    }

    /// Build from already-compressed monthly sets, preserving order.
    pub fn from_bit_sets(months: &[BitSet]) -> Self {
        let month_lens = months.iter().map(BitSet::len).collect();
        // Gather every (hi, month) pair, then group by hi. Months are
        // visited in index order so each chunk's month list arrives sorted.
        let mut chunks: Vec<ChunkEntry> = Vec::new();
        for (m, set) in months.iter().enumerate() {
            for (hi, c) in set.chunks() {
                match chunks.binary_search_by_key(hi, |e| e.hi) {
                    Ok(i) => chunks[i].months.push((m, c.clone())),
                    Err(i) => {
                        chunks.insert(i, ChunkEntry { hi: *hi, months: vec![(m, c.clone())] })
                    }
                }
            }
        }
        Self { chunks, month_lens }
    }

    /// Number of months (rows).
    pub fn n_months(&self) -> usize {
        self.month_lens.len()
    }

    /// Cardinality of month `m`'s full source set.
    pub fn month_len(&self, m: usize) -> usize {
        self.month_lens[m]
    }

    /// `|probe ∩ month_m|` for **every** month `m`, in one sweep.
    ///
    /// Merge-joins the probe's chunks against the matrix's chunks; each
    /// matched chunk scores the probe container once per month present in
    /// that chunk. Every count is the exact integer the pairwise
    /// `NumKeySet` intersections would produce.
    pub fn overlap_counts(&self, probe: &BitSet) -> Vec<usize> {
        let mut counts = vec![0usize; self.month_lens.len()];
        let probe_chunks = probe.chunks();
        let (mut i, mut j) = (0, 0);
        while i < probe_chunks.len() && j < self.chunks.len() {
            match probe_chunks[i].0.cmp(&self.chunks[j].hi) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let pc = &probe_chunks[i].1;
                    for (m, mc) in &self.chunks[j].months {
                        counts[*m] += pc.overlap_count(mc);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        counts
    }

    /// Reconstruct month `m`'s full set (cross-check / oracle use only;
    /// the hot path never materializes a month).
    pub fn month_set(&self, m: usize) -> BitSet {
        let mut out = BitSet::new();
        for entry in &self.chunks {
            for (month, c) in &entry.months {
                if *month == m {
                    c.for_each_key(|lo| {
                        out.insert((u32::from(entry.hi) << 16) | u32::from(lo));
                    });
                }
            }
        }
        out
    }

    /// Container census `(arrays, bitmaps, runs)` across all cells.
    pub fn container_census(&self) -> (usize, usize, usize) {
        let mut census = (0usize, 0usize, 0usize);
        for entry in &self.chunks {
            for (_, c) in &entry.months {
                match c.kind() {
                    metrics::Kind::Array => census.0 += 1,
                    metrics::Kind::Bitmap => census.1 += 1,
                    metrics::Kind::Runs => census.2 += 1,
                }
            }
        }
        census
    }

    /// Internal consistency check: chunk order, per-chunk month order and
    /// bounds, container invariants, and month cardinalities consistent
    /// with the stored lens.
    pub fn check_invariants(&self) -> Result<(), String> {
        for w in self.chunks.windows(2) {
            if w[0].hi >= w[1].hi {
                return Err(format!("chunks not strictly increasing at {} >= {}", w[0].hi, w[1].hi));
            }
        }
        let mut recomputed = vec![0usize; self.month_lens.len()];
        for entry in &self.chunks {
            if entry.months.is_empty() {
                return Err(format!("chunk {} has no month entries", entry.hi));
            }
            for w in entry.months.windows(2) {
                if w[0].0 >= w[1].0 {
                    return Err(format!(
                        "chunk {}: months not strictly increasing at {} >= {}",
                        entry.hi, w[0].0, w[1].0
                    ));
                }
            }
            for (m, c) in &entry.months {
                if *m >= self.month_lens.len() {
                    return Err(format!("chunk {}: month {m} out of range", entry.hi));
                }
                if c.card() == 0 {
                    return Err(format!("chunk {}: empty container for month {m}", entry.hi));
                }
                c.check_invariants()
                    .map_err(|e| format!("chunk {} month {m}: {e}", entry.hi))?;
                recomputed[*m] += c.card();
            }
        }
        if recomputed != self.month_lens {
            return Err(format!(
                "month cardinalities {recomputed:?} disagree with stored {:?}",
                self.month_lens
            ));
        }
        Ok(())
    }
}
