//! End-to-end tests of the `obscor` binary.

use std::process::Command;

fn obscor() -> Command {
    Command::new(env!("CARGO_BIN_EXE_obscor"))
}

#[test]
fn info_prints_calibration() {
    let out = obscor().args(["info", "--nv", "2^13", "--seed", "9"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("scenario calibration"));
    assert!(stdout.contains("sqrt(N_V) knee"));
    assert!(stdout.contains("2020-06-17-12:00:00"));
}

#[test]
fn reproduce_single_artifact() {
    let out = obscor()
        .args(["reproduce", "--nv", "2^13", "--seed", "9", "--fast", "--only", "table1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("TABLE I"));
    assert!(stdout.contains("2021-04"));
    assert!(!stdout.contains("FIG 4"), "--only must print one artifact");
}

#[test]
fn reproduce_tsv_is_machine_readable() {
    let out = obscor()
        .args(["reproduce", "--nv", "2^13", "--seed", "9", "--fast", "--tsv"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.lines().any(|l| l.starts_with("fig4\t")));
    assert!(stdout.lines().any(|l| l.starts_with("fit\t")));
}

#[test]
fn reproduce_check_passes_non_strict() {
    // --fast implies non-strict validation; must pass at tiny N_V.
    let out = obscor()
        .args(["reproduce", "--nv", "2^13", "--seed", "9", "--fast", "--check", "--only", "fig1"])
        .output()
        .unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(out.status.success(), "stderr:\n{stderr}");
    assert!(stderr.contains("SELF-VALIDATION"));
    assert!(stderr.contains("PASS"));
}

#[test]
fn generate_writes_a_readable_pcap() {
    let dir = std::env::temp_dir().join("obscor_cli_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("w0.pcap");
    let out = obscor()
        .args([
            "generate",
            "--nv",
            "2^12",
            "--seed",
            "9",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let bytes = std::fs::read(&path).unwrap();
    // Global header magic, LE.
    assert_eq!(&bytes[..4], &0xA1B2_C3D4u32.to_le_bytes());
    let packets = obscor_pcap::PcapReader::new(&bytes).unwrap().read_all().unwrap();
    assert_eq!(packets.len(), 1 << 12);
    std::fs::remove_file(&path).ok();
}

#[test]
fn generate_with_filter_keeps_matching_packets_only() {
    let dir = std::env::temp_dir().join("obscor_cli_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("filtered.pcap");
    let out = obscor()
        .args([
            "generate",
            "--nv",
            "2^12",
            "--seed",
            "9",
            "--filter",
            "proto tcp and not port 6667",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(out.status.success(), "stderr:\n{stderr}");
    assert!(stderr.contains("filter kept"));
    let bytes = std::fs::read(&path).unwrap();
    let packets = obscor_pcap::PcapReader::new(&bytes).unwrap().read_all().unwrap();
    assert!(!packets.is_empty());
    assert!(packets
        .iter()
        .all(|p| p.proto == obscor_pcap::Protocol::Tcp && p.dst_port != 6667));
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_invocations_fail_with_usage() {
    for args in [
        vec!["reproduce", "--only", "fig99"],
        vec!["generate"], // missing --out
        vec!["nonsense"],
        vec!["reproduce", "--nv", "banana"],
        vec!["generate", "--filter", "proto banana", "--out", "/tmp/x.pcap"],
    ] {
        let out = obscor().args(&args).output().unwrap();
        assert!(!out.status.success(), "should fail: {args:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("usage:"), "no usage in stderr for {args:?}");
    }
}
