//! Coordinate-format (COO) triple buffer.
//!
//! Packets append `(source, destination, count)` triples in arrival order;
//! compaction sorts by `(row, col)` and sums duplicates, producing the
//! immutable [`Csr`] used by all analytics. Compaction is where all the time
//! goes when building traffic matrices, so three kernels are provided: a
//! serial comparison sort (the differential oracle), a rayon parallel sort
//! (kept for ablation), and the [`crate::radix`] LSD radix kernel.
//! [`Coo::into_csr`] picks serial vs. radix with a crossover point measured
//! once per process on this machine rather than a hard-coded threshold.

use std::sync::OnceLock;

use crate::csr::Csr;
use crate::keypack::pack_key;
use crate::value::Value;
use crate::Index;
use rayon::prelude::*;

/// Triple counts probed when measuring the serial-vs-radix crossover.
const CROSSOVER_PROBES: &[usize] = &[1 << 9, 1 << 11, 1 << 13];
/// Crossover used when radix never wins at any probe size: only very large
/// buffers (where the asymptotic advantage is certain) take the radix path.
const CROSSOVER_FALLBACK: usize = 1 << 15;

/// Buffer size above which [`Coo::into_csr`] uses the radix kernel,
/// measured once per process: the smallest probe size where the radix
/// kernel beats the serial comparison sort on synthetic traffic-shaped
/// triples (timed via `obscor_obs::time_fn`, the sanctioned stopwatch).
pub fn radix_crossover() -> usize {
    // audit:allow(shared-static-mut) — write-once memo of a pure measurement; no protocol beyond OnceLock's own
    static CROSSOVER: OnceLock<usize> = OnceLock::new();
    *CROSSOVER.get_or_init(measure_crossover)
}

fn measure_crossover() -> usize {
    for &n in CROSSOVER_PROBES {
        let triples = synthetic_triples(n);
        let serial_ns = best_of::<3>(|| {
            Coo::from_triples(triples.iter().copied()).into_csr_serial().nnz()
        });
        let radix_ns = best_of::<3>(|| {
            Coo::from_triples(triples.iter().copied()).into_csr_radix().nnz()
        });
        if radix_ns < serial_ns {
            return n;
        }
    }
    CROSSOVER_FALLBACK
}

/// Best (minimum) wall-clock nanoseconds over `REPS` runs of `f`.
fn best_of<const REPS: usize>(mut f: impl FnMut() -> usize) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..REPS {
        let (_, ns) = obscor_obs::time_fn(&mut f);
        best = best.min(ns);
    }
    best
}

/// Traffic-shaped probe triples: row indices from a large sparse domain,
/// columns clustered in one /8, plenty of duplicates — the distribution the
/// telescope capture path actually compacts.
fn synthetic_triples(n: usize) -> Vec<(Index, Index, u64)> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // audit:allow(index-cast) — synthetic probe data, truncation intended
            let r = (state >> 32) as Index;
            // audit:allow(index-cast) — synthetic probe data, truncation intended
            let c = 0x2C00_0000 | ((state & 0xFFFF) as Index);
            (r, c, 1u64)
        })
        .collect()
}

/// An append-only buffer of `(row, col, value)` triples.
///
/// Duplicate coordinates are allowed and are summed during [`Coo::into_csr`].
/// Explicit zeros are dropped during compaction, matching GraphBLAS
/// semantics.
#[derive(Clone, Debug, Default)]
pub struct Coo<V: Value> {
    rows: Vec<Index>,
    cols: Vec<Index>,
    vals: Vec<V>,
}

impl<V: Value> Coo<V> {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Self { rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Create an empty buffer with room for `cap` triples.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Internal consistency check: the three coordinate/value columns must
    /// stay in lockstep. (Duplicates and explicit zeros are legal in the
    /// pre-compaction buffer; [`Coo::into_csr`] removes both.) Used by
    /// tests and the pipeline's `strict-invariants` stage checks.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.rows.len() != self.cols.len() || self.rows.len() != self.vals.len() {
            return Err(format!(
                "column lengths diverge: rows={} cols={} vals={}",
                self.rows.len(),
                self.cols.len(),
                self.vals.len()
            ));
        }
        Ok(())
    }

    /// Append one triple.
    #[inline]
    pub fn push(&mut self, row: Index, col: Index, val: V) {
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Append a unit-valued triple (one packet from `row` to `col`).
    #[inline]
    pub fn push_edge(&mut self, row: Index, col: Index) {
        self.push(row, col, V::one());
    }

    /// Number of buffered (pre-compaction, possibly duplicated) triples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the buffer holds no triples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Build from an iterator of triples.
    pub fn from_triples<I: IntoIterator<Item = (Index, Index, V)>>(iter: I) -> Self {
        let mut coo = Self::new();
        for (r, c, v) in iter {
            coo.push(r, c, v);
        }
        coo
    }

    /// Iterate over the raw (uncompacted) triples.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, V)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.vals.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Compact into an immutable hypersparse CSR matrix, choosing between
    /// the serial comparison sort and the radix kernel at the measured
    /// crossover point (see [`radix_crossover`]).
    pub fn into_csr(self) -> Csr<V> {
        let crossover = radix_crossover();
        if crate::radix::metrics_enabled() {
            obscor_obs::gauge("hypersparse.radix.crossover").set(crossover as u64);
        }
        let csr = if self.len() >= crossover {
            self.into_csr_radix()
        } else {
            self.into_csr_serial()
        };
        #[cfg(feature = "strict-invariants")]
        {
            if let Err(msg) = csr.check_invariants() {
                // audit:allow(panic-path) — strict-invariants mode aborts on broken invariants by contract
                panic!("compaction produced an invalid CSR: {msg}");
            }
        }
        csr
    }

    /// Serial compaction: sort triples by `(row, col)`, then sum runs.
    pub fn into_csr_serial(self) -> Csr<V> {
        let mut triples = self.into_sorted_triples(false);
        dedup_sorted(&mut triples);
        Csr::from_sorted_dedup_triples(triples)
    }

    /// Parallel compaction using rayon's parallel unstable sort. Kept for
    /// ablation against the radix kernel (the bench crate compares all
    /// three paths).
    pub fn into_csr_parallel(self) -> Csr<V> {
        let mut triples = self.into_sorted_triples(true);
        dedup_sorted(&mut triples);
        Csr::from_sorted_dedup_triples(triples)
    }

    /// Radix compaction: LSD counting sort over the packed key's byte
    /// digits with a fused dedup-sum final scatter (see [`crate::radix`]).
    pub fn into_csr_radix(self) -> Csr<V> {
        crate::radix::compact_into_csr(self.rows, self.cols, self.vals)
    }

    fn into_sorted_triples(self, parallel: bool) -> Vec<(Index, Index, V)> {
        let mut triples: Vec<(Index, Index, V)> = self
            .rows
            .into_iter()
            .zip(self.cols)
            .zip(self.vals)
            .map(|((r, c), v)| (r, c, v))
            .collect();
        if parallel {
            triples.par_sort_unstable_by_key(|&(r, c, _)| pack_key(r, c));
        } else {
            triples.sort_unstable_by_key(|&(r, c, _)| pack_key(r, c));
        }
        triples
    }
}

impl<V: Value> Extend<(Index, Index, V)> for Coo<V> {
    fn extend<I: IntoIterator<Item = (Index, Index, V)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

/// Sum runs of identical `(row, col)` coordinates in place, dropping
/// resulting zeros. Input must be sorted by `(row, col)`.
fn dedup_sorted<V: Value>(triples: &mut Vec<(Index, Index, V)>) {
    let mut write = 0usize;
    let mut read = 0usize;
    let n = triples.len();
    while read < n {
        let (r, c, mut acc) = triples[read];
        read += 1;
        while read < n && triples[read].0 == r && triples[read].1 == c {
            acc += triples[read].2;
            read += 1;
        }
        if !acc.is_zero() {
            triples[write] = (r, c, acc);
            write += 1;
        }
    }
    triples.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_coo_gives_empty_csr() {
        let coo = Coo::<u64>::new();
        let csr = coo.into_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.n_rows(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = Coo::<u64>::new();
        coo.push(5, 7, 2);
        coo.push(5, 7, 3);
        coo.push(5, 8, 1);
        let csr = coo.into_csr();
        assert_eq!(csr.get(5, 7), Some(5));
        assert_eq!(csr.get(5, 8), Some(1));
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn explicit_zeros_are_dropped() {
        let mut coo = Coo::<f64>::new();
        coo.push(1, 1, 0.0);
        coo.push(2, 2, 1.5);
        coo.push(2, 2, -1.5); // cancels to zero
        let csr = coo.into_csr();
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn serial_and_parallel_paths_agree() {
        let mut a = Coo::<u64>::new();
        let mut b = Coo::<u64>::new();
        // Deterministic pseudo-random triples with plenty of duplicates.
        let mut state = 0x2545F4914F6CDD1Du64;
        for _ in 0..100_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = (state >> 40) as Index % 997;
            let c = (state >> 20) as Index % 991;
            a.push(r, c, 1);
            b.push(r, c, 1);
        }
        let ca = a.into_csr_serial();
        let cb = b.into_csr_parallel();
        assert_eq!(ca, cb);
    }

    #[test]
    fn radix_and_serial_paths_agree() {
        let mut a = Coo::<u64>::new();
        let mut b = Coo::<u64>::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..100_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = (state >> 40) as Index % 1009;
            let c = (state >> 16) as Index % 1013;
            a.push(r, c, 1);
            b.push(r, c, 1);
        }
        assert_eq!(a.into_csr_serial(), b.into_csr_radix());
    }

    #[test]
    fn crossover_is_measured_and_bounded() {
        let x = radix_crossover();
        assert!(
            CROSSOVER_PROBES.contains(&x) || x == CROSSOVER_FALLBACK,
            "crossover {x} is not a probe size or the fallback"
        );
        // The OnceLock caches: repeated calls agree.
        assert_eq!(x, radix_crossover());
    }

    #[test]
    fn push_edge_is_unit_valued() {
        let mut coo = Coo::<u32>::new();
        coo.push_edge(9, 9);
        coo.push_edge(9, 9);
        assert_eq!(coo.into_csr().get(9, 9), Some(2));
    }

    #[test]
    fn from_triples_round_trips() {
        let t = vec![(1u32, 2u32, 10u64), (0, 0, 1)];
        let coo = Coo::from_triples(t.clone());
        assert_eq!(coo.len(), 2);
        let collected: Vec<_> = coo.iter().collect();
        assert_eq!(collected, t);
    }

    #[test]
    fn extend_appends() {
        let mut coo = Coo::<u64>::new();
        coo.extend(vec![(1, 1, 1), (2, 2, 2)]);
        assert_eq!(coo.len(), 2);
    }

    #[test]
    fn sort_key_orders_row_major() {
        // Rows must dominate the ordering even when cols are large.
        let mut coo = Coo::<u64>::new();
        coo.push(1, u32::MAX, 1);
        coo.push(2, 0, 1);
        let csr = coo.into_csr_serial();
        let rows: Vec<_> = csr.row_keys().to_vec();
        assert_eq!(rows, vec![1, 2]);
    }
}
