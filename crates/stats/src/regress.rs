//! Ordinary least-squares regression.
//!
//! Used for log-log scaling laws: the paper notes "the number of unique
//! sources seen at the CAIDA Telescope and other locations is
//! approximately proportional to `N_V^{1/2}`" — a claim checked by
//! regressing `log(sources)` on `log(packets)`.

/// An OLS line fit `y ≈ slope·x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 for a perfect line).
    pub r_squared: f64,
}

impl LinearFit {
    /// Predict `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fit a line by least squares. Returns `None` with fewer than two
/// points or a degenerate (constant-x) design.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len(), "regression needs paired samples");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let sxx: f64 = xs.iter().map(|x| (x - mean_x) * (x - mean_x)).sum();
    // audit:allow(float-eq) — degenerate-regression guard: sxx is literally 0.0 only when all x coincide
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y) * (y - mean_y)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (slope * x + intercept);
            e * e
        })
        .sum();
    // audit:allow(float-eq) — constant-y guard: ss_tot is literally 0.0 only when all y coincide
    let r_squared = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    Some(LinearFit { slope, intercept, r_squared })
}

/// Fit a power law `y ≈ c·x^e` by OLS in log-log space; returns
/// `(exponent, r_squared)`. Points with non-positive coordinates are
/// rejected.
///
/// # Panics
/// Panics if any coordinate is non-positive.
pub fn power_law_exponent(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    assert!(
        xs.iter().chain(ys).all(|v| *v > 0.0),
        "log-log regression needs positive coordinates"
    );
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    linear_fit(&lx, &ly).map(|f| (f.slope, f.r_squared))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.5).abs() < 1e-12);
        assert!((f.intercept + 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn noise_lowers_r_squared() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| x + if i % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 1.0).abs() < 0.05);
        assert!(f.r_squared < 1.0 && f.r_squared > 0.8);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(linear_fit(&[], &[]).is_none());
    }

    #[test]
    fn power_law_exponent_recovers() {
        let xs: Vec<f64> = (1..=20).map(|i| (1 << i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(0.5)).collect();
        let (e, r2) = power_law_exponent(&xs, &ys).unwrap();
        assert!((e - 0.5).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_y_has_unit_r2_zero_slope() {
        let f = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive coordinates")]
    fn log_log_rejects_nonpositive() {
        let _ = power_law_exponent(&[1.0, 0.0], &[1.0, 1.0]);
    }
}
