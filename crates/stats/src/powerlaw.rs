//! Discrete power-law tail estimation (Clauset–Shalizi–Newman).
//!
//! The paper's grid fit treats the whole Zipf–Mandelbrot body; the CSN
//! method estimates the *tail* exponent by maximum likelihood above a
//! cutoff `d_min` chosen to minimize the Kolmogorov–Smirnov distance —
//! the standard of the paper's own ref 48. Having both estimators lets
//! experiments cross-check the Fig 3 exponents.

use std::collections::BTreeMap;

/// A fitted discrete power-law tail `p(d) ∝ d^{-α}` for `d ≥ d_min`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLawFit {
    /// Tail exponent.
    pub alpha: f64,
    /// Tail cutoff.
    pub d_min: u64,
    /// Number of observations in the tail.
    pub n_tail: usize,
    /// KS distance between the empirical tail and the fitted model.
    pub ks: f64,
}

/// MLE of the tail exponent above a fixed `d_min` (CSN eq. 3.7, the
/// continuous approximation `α ≈ 1 + n / Σ ln(d_i / (d_min − 1/2))`,
/// accurate for `d_min ≳ 6` and serviceable above 2).
///
/// Returns `None` if fewer than 2 observations lie in the tail.
pub fn mle_alpha(degrees: &[u64], d_min: u64) -> Option<f64> {
    assert!(d_min >= 1, "cutoff must be positive");
    let tail: Vec<u64> = degrees.iter().copied().filter(|&d| d >= d_min).collect();
    if tail.len() < 2 {
        return None;
    }
    let shift = d_min as f64 - 0.5;
    let log_sum: f64 = tail.iter().map(|&d| (d as f64 / shift).ln()).sum();
    if log_sum <= 0.0 {
        return None;
    }
    Some(1.0 + tail.len() as f64 / log_sum)
}

/// KS distance between the empirical tail distribution (of `degrees ≥
/// d_min`) and the fitted power law with exponent `alpha`.
pub fn ks_distance(degrees: &[u64], d_min: u64, alpha: f64) -> f64 {
    let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
    for &d in degrees.iter().filter(|&&d| d >= d_min) {
        *counts.entry(d).or_insert(0) += 1;
    }
    let n: usize = counts.values().sum();
    if n == 0 {
        return 1.0;
    }
    // Model tail normalization via the (generalized) zeta over d >= d_min,
    // truncated once terms are negligible.
    let d_max = *counts.keys().next_back().unwrap();
    let horizon = (d_max * 4).max(d_min + 1000);
    let zeta: f64 = (d_min..=horizon).map(|d| (d as f64).powf(-alpha)).sum();
    let mut model_cdf = 0.0;
    let mut empirical_cdf = 0.0;
    let mut worst: f64 = 0.0;
    let mut next_model_d = d_min;
    for (&d, &c) in &counts {
        // advance model cdf through every degree up to d.
        while next_model_d <= d {
            model_cdf += (next_model_d as f64).powf(-alpha) / zeta;
            next_model_d += 1;
        }
        empirical_cdf += c as f64 / n as f64;
        worst = worst.max((model_cdf - empirical_cdf).abs());
    }
    worst
}

/// Full CSN fit: scan candidate cutoffs, fit α by MLE at each, keep the
/// cutoff with the smallest KS distance. Candidates are the distinct
/// observed degrees up to the point where fewer than `min_tail`
/// observations remain.
pub fn fit_power_law(degrees: &[u64], min_tail: usize) -> Option<PowerLawFit> {
    let mut distinct: Vec<u64> = degrees.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let mut best: Option<PowerLawFit> = None;
    for &d_min in &distinct {
        let n_tail = degrees.iter().filter(|&&d| d >= d_min).count();
        if n_tail < min_tail {
            break;
        }
        let Some(alpha) = mle_alpha(degrees, d_min) else { continue };
        let ks = ks_distance(degrees, d_min, alpha);
        if best.map(|b| ks < b.ks).unwrap_or(true) {
            best = Some(PowerLawFit { alpha, d_min, n_tail, ks });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::ZipfMandelbrot;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn power_law_sample(alpha: f64, n: usize, seed: u64) -> Vec<u64> {
        // ZM with delta = 0 is a pure (truncated) power law.
        let zm = ZipfMandelbrot::new(alpha, 0.0, 1 << 16);
        let mut rng = StdRng::seed_from_u64(seed);
        zm.sample_n(&mut rng, n)
    }

    #[test]
    fn mle_recovers_planted_exponent() {
        let degrees = power_law_sample(2.2, 100_000, 1);
        let alpha = mle_alpha(&degrees, 5).unwrap();
        assert!((alpha - 2.2).abs() < 0.1, "recovered {alpha}");
    }

    #[test]
    fn mle_needs_a_tail() {
        assert!(mle_alpha(&[1, 1, 1], 5).is_none());
        assert!(mle_alpha(&[], 1).is_none());
        assert!(mle_alpha(&[10], 5).is_none());
    }

    #[test]
    fn ks_prefers_the_true_exponent() {
        let degrees = power_law_sample(2.0, 50_000, 2);
        let at_truth = ks_distance(&degrees, 4, 2.0);
        let too_steep = ks_distance(&degrees, 4, 3.0);
        let too_flat = ks_distance(&degrees, 4, 1.3);
        assert!(at_truth < too_steep, "{at_truth} vs steep {too_steep}");
        assert!(at_truth < too_flat, "{at_truth} vs flat {too_flat}");
    }

    #[test]
    fn full_fit_recovers_exponent_and_small_cutoff() {
        let degrees = power_law_sample(1.8, 80_000, 3);
        let fit = fit_power_law(&degrees, 100).unwrap();
        assert!((fit.alpha - 1.8).abs() < 0.15, "alpha {}", fit.alpha);
        assert!(fit.d_min <= 16, "pure sample should not need a big cutoff: {}", fit.d_min);
        assert!(fit.n_tail >= 100);
        assert!(fit.ks < 0.05, "KS {}", fit.ks);
    }

    #[test]
    fn cutoff_skips_a_corrupted_head() {
        // Flatten the head: replace the dim half with uniform junk; the
        // scan must move d_min past it.
        let mut degrees = power_law_sample(2.0, 40_000, 4);
        for (i, d) in degrees.iter_mut().enumerate() {
            if *d <= 3 {
                *d = 1 + (i as u64 % 8); // uniform 1..=8 noise
            }
        }
        let fit = fit_power_law(&degrees, 200).unwrap();
        assert!(fit.d_min > 3, "cutoff {} should skip the corrupted head", fit.d_min);
        assert!((fit.alpha - 2.0).abs() < 0.35, "alpha {}", fit.alpha);
    }

    #[test]
    fn ks_on_empty_tail_is_one() {
        assert_eq!(ks_distance(&[1, 2, 3], 100, 2.0), 1.0);
    }
}
