//! Darknet monitoring: operate the telescope by hand.
//!
//! Captures one constant-packet window from the synthetic /8 darkspace,
//! builds the hierarchical hypersparse traffic matrix, prints every
//! Table II network quantity, lists the brightest sources with their
//! behaviour profile, and round-trips the window through a real libpcap
//! file.
//!
//! ```sh
//! cargo run --release --example darknet_monitoring
//! ```

use obscor::hypersparse::reduce::{self, NetworkQuantities};
use obscor::netmodel::Scenario;
use obscor::pcap::{PcapReader, PcapWriter};
use obscor::telescope::{capture_window, matrix};

fn main() {
    let scenario = Scenario::paper_scaled(1 << 16, 7);
    let spec = &scenario.caida_windows[0];
    println!("capturing window {} from the 44.0.0.0/8 darkspace...", spec.label);

    let window = capture_window(&scenario, spec);
    println!(
        "captured {} valid packets over {:.1} s ({} legitimate packets discarded)\n",
        window.packets(),
        window.duration_secs(),
        window.window.discarded
    );

    // Build the traffic matrix the way the archive does: hierarchically.
    let m = matrix::build_matrix(&window);
    println!("network quantities (Table II):");
    println!("{}", NetworkQuantities::compute(&m).render());

    // Top talkers: the bright end of the Zipf-Mandelbrot beam.
    let mut degrees = reduce::source_packets(&m);
    degrees.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
    println!("top 10 sources by window packets:");
    let fanout: std::collections::HashMap<u32, u64> =
        reduce::source_fan_out(&m).into_iter().collect();
    for &(src, d) in degrees.iter().take(10) {
        println!(
            "  {:<15}  packets {:>7}  fan-out {:>7}",
            obscor::pcap::Ip4(src).to_string(),
            d,
            fanout[&src]
        );
    }

    // Archive the window as a real pcap and verify the round trip.
    let mut writer = PcapWriter::new();
    for p in &window.window.packets {
        writer.write_packet(p);
    }
    let bytes = writer.into_bytes();
    let back = PcapReader::new(&bytes).unwrap().read_all().unwrap();
    assert_eq!(back.len(), window.packets());
    println!(
        "\narchived {} packets as {:.1} MiB of libpcap (checksums verified on read-back)",
        back.len(),
        bytes.len() as f64 / (1024.0 * 1024.0)
    );
}
