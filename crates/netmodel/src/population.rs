//! The synthetic source population.

use crate::activity::{pareto_scale_for_brightness, ActivityInterval, ChurnModel};
use crate::class::SourceClass;
use obscor_pcap::Ip4;
use obscor_stats::zipf::ZipfMandelbrot;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// One source in the world model.
#[derive(Clone, Debug, PartialEq)]
pub struct Source {
    /// Real (pre-anonymization) IPv4 address; never inside the darkspace.
    pub ip: Ip4,
    /// Expected packets per telescope window while active (the planted
    /// Zipf–Mandelbrot brightness).
    pub brightness: f64,
    /// Behavioural class.
    pub class: SourceClass,
    /// The drifting-beam activity interval.
    pub interval: ActivityInterval,
    /// Per-month probability of a background reappearance outside the
    /// main interval (recurring/re-infected hosts; the long-lag floor of
    /// Fig 5).
    pub revisit_prob: f64,
}

impl Source {
    /// Whether the source is active at instant `t` (months).
    pub fn active_at(&self, t: f64) -> bool {
        self.interval.active_at(t)
    }
}

/// Parameters of the population generator.
#[derive(Clone, Debug, PartialEq)]
pub struct PopulationConfig {
    /// Number of sources in the world.
    pub n_sources: usize,
    /// Zipf–Mandelbrot exponent of the brightness distribution.
    pub zm_alpha: f64,
    /// Zipf–Mandelbrot offset.
    pub zm_delta: f64,
    /// Brightest possible source (expected packets per window).
    pub brightness_max: u64,
    /// Pareto lifetime shape (`a = 2` ⇒ effective modified-Cauchy α ≈ 1).
    pub pareto_shape: f64,
    /// Study span in months.
    pub span_months: f64,
    /// `log2 d` where the one-month drop peaks (~50 %).
    pub knee_log2d: f64,
    /// `log2 d` where the drop bottoms out (~20 %).
    pub bright_log2d: f64,
    /// Background monthly revisit probability.
    pub revisit_prob: f64,
    /// First octet of the darkspace /8 (sources are generated outside it).
    pub darkspace_octet: u8,
    /// Number of /16 subnets botnet sources cluster into (infected hosts
    /// live in shared networks; 0 disables clustering). Scanners,
    /// backscatter, and misconfigurations stay uniform over the address
    /// space.
    pub botnet_subnets: u16,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            n_sources: 100_000,
            zm_alpha: 1.8,
            zm_delta: 2.0,
            brightness_max: 1 << 13,
            pareto_shape: 2.0,
            span_months: 15.0,
            knee_log2d: 10.0,
            bright_log2d: 13.0,
            revisit_prob: 0.03,
            darkspace_octet: 44,
            botnet_subnets: 32,
            seed: 0xC0FFEE,
        }
    }
}

/// The full synthetic world population.
#[derive(Clone, Debug)]
pub struct SourcePopulation {
    /// All sources (index is the stable internal id).
    pub sources: Vec<Source>,
    /// The configuration that generated it.
    pub config: PopulationConfig,
}

impl SourcePopulation {
    /// Generate a population.
    ///
    /// # Panics
    /// Panics if `n_sources == 0` or the ZM/churn parameters are invalid.
    pub fn generate(config: PopulationConfig) -> Self {
        assert!(config.n_sources > 0, "population must be non-empty");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let zm = ZipfMandelbrot::new(config.zm_alpha, config.zm_delta, config.brightness_max);
        let churn = ChurnModel::new(config.pareto_shape, config.span_months);
        // Botnet /16 homes: infected hosts cluster in shared networks.
        let botnet_homes: Vec<u32> = (0..config.botnet_subnets)
            .map(|_| loop {
                let prefix: u32 = rng.random::<u32>() & 0xFFFF_0000;
                if (prefix >> 24) as u8 != config.darkspace_octet {
                    break prefix;
                }
            })
            .collect();
        let mut used_ips: HashSet<u32> = HashSet::with_capacity(config.n_sources);
        let mut sources = Vec::with_capacity(config.n_sources);
        while sources.len() < config.n_sources {
            let brightness = zm.sample(&mut rng) as f64;
            let log2_d = brightness.log2();
            let class = SourceClass::assign_by_brightness(log2_d, &mut rng);
            let ip = loop {
                let candidate: u32 = if class == SourceClass::Botnet
                    && !botnet_homes.is_empty()
                {
                    let home = botnet_homes[rng.random_range(0..botnet_homes.len())];
                    home | (rng.random::<u32>() & 0xFFFF)
                } else {
                    rng.random()
                };
                if (candidate >> 24) as u8 == config.darkspace_octet {
                    continue;
                }
                if used_ips.insert(candidate) {
                    break Ip4(candidate);
                }
            };
            let x_m =
                pareto_scale_for_brightness(log2_d, config.knee_log2d, config.bright_log2d);
            let interval = churn.sample_interval(x_m, &mut rng);
            sources.push(Source {
                ip,
                brightness,
                class,
                interval,
                revisit_prob: config.revisit_prob,
            });
        }
        Self { sources, config }
    }

    /// Number of sources in the world.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the population is empty (never true after generation).
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Indices of sources active at instant `t`.
    pub fn active_at(&self, t: f64) -> Vec<usize> {
        (0..self.sources.len()).filter(|&i| self.sources[i].active_at(t)).collect()
    }

    /// Total brightness of the sources active at `t` (the normalization of
    /// per-window expected degrees).
    pub fn active_brightness(&self, t: f64) -> f64 {
        self.sources.iter().filter(|s| s.active_at(t)).map(|s| s.brightness).sum()
    }

    /// The mean brightness of the configured Zipf–Mandelbrot law (used to
    /// size populations against a target window load).
    pub fn expected_brightness(config: &PopulationConfig) -> f64 {
        ZipfMandelbrot::new(config.zm_alpha, config.zm_delta, config.brightness_max).mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> PopulationConfig {
        PopulationConfig { n_sources: 5_000, seed: 42, ..PopulationConfig::default() }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SourcePopulation::generate(small_config());
        let b = SourcePopulation::generate(small_config());
        assert_eq!(a.sources, b.sources);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SourcePopulation::generate(small_config());
        let b =
            SourcePopulation::generate(PopulationConfig { seed: 43, ..small_config() });
        assert_ne!(a.sources, b.sources);
    }

    #[test]
    fn ips_are_unique_and_outside_darkspace() {
        let p = SourcePopulation::generate(small_config());
        let mut seen = HashSet::new();
        for s in &p.sources {
            assert!(seen.insert(s.ip.0), "duplicate ip {}", s.ip);
            assert_ne!((s.ip.0 >> 24) as u8, 44, "source inside darkspace");
        }
    }

    #[test]
    fn brightness_is_heavy_tailed() {
        let p = SourcePopulation::generate(small_config());
        let dim = p.sources.iter().filter(|s| s.brightness <= 2.0).count();
        let bright = p.sources.iter().filter(|s| s.brightness >= 100.0).count();
        // A ZM(1.8) population is dominated by the dim end with a
        // nonempty bright tail (P(b <= 2) is just under one half).
        assert!(dim > p.len() / 3, "dim fraction too small: {dim}/{}", p.len());
        assert!(bright > 0, "no bright sources at all");
        assert!(bright < dim);
    }

    #[test]
    fn lifetime_calibration_is_v_shaped_in_brightness() {
        // The churn knee (fastest turnover) sits at mid brightness
        // (knee_log2d = 10 in the default config); both the dim
        // background and the bright beam live longer.
        let config = PopulationConfig { n_sources: 60_000, ..small_config() };
        let p = SourcePopulation::generate(config);
        let mean_lifetime = |lo: f64, hi: f64| {
            let ls: Vec<f64> = p
                .sources
                .iter()
                .filter(|s| s.brightness >= lo && s.brightness < hi)
                .map(|s| s.interval.lifetime())
                .collect();
            assert!(!ls.is_empty(), "no sources in [{lo}, {hi})");
            ls.iter().sum::<f64>() / ls.len() as f64
        };
        let dim = mean_lifetime(1.0, 4.0);
        let knee = mean_lifetime(512.0, 2048.0);
        assert!(
            dim > knee,
            "dim background ({dim:.2} mo) should outlive the knee cohort ({knee:.2} mo)"
        );
    }

    #[test]
    fn botnet_sources_cluster_in_few_slash16s() {
        let p = SourcePopulation::generate(PopulationConfig {
            n_sources: 20_000,
            ..small_config()
        });
        let prefixes = |class: SourceClass| {
            let set: HashSet<u32> = p
                .sources
                .iter()
                .filter(|s| s.class == class)
                .map(|s| s.ip.0 >> 16)
                .collect();
            let count = p.sources.iter().filter(|s| s.class == class).count();
            (set.len(), count)
        };
        let (botnet_nets, botnet_count) = prefixes(SourceClass::Botnet);
        let (scanner_nets, scanner_count) = prefixes(SourceClass::Scanner);
        assert!(botnet_count > 100 && scanner_count > 100);
        // Botnets live in at most the configured number of /16s...
        assert!(botnet_nets <= 32, "botnet /16s: {botnet_nets}");
        // ...while scanners are spread nearly one-per-/16.
        assert!(
            scanner_nets * 2 > scanner_count,
            "scanners too clustered: {scanner_nets} nets for {scanner_count} sources"
        );
    }

    #[test]
    fn clustering_can_be_disabled() {
        let p = SourcePopulation::generate(PopulationConfig {
            n_sources: 5_000,
            botnet_subnets: 0,
            ..small_config()
        });
        let nets: HashSet<u32> = p
            .sources
            .iter()
            .filter(|s| s.class == SourceClass::Botnet)
            .map(|s| s.ip.0 >> 16)
            .collect();
        let count = p.sources.iter().filter(|s| s.class == SourceClass::Botnet).count();
        assert!(nets.len() * 2 > count, "clustering should be off");
    }

    #[test]
    fn activity_queries_agree() {
        let p = SourcePopulation::generate(small_config());
        let t = 7.0;
        let idx = p.active_at(t);
        assert!(!idx.is_empty());
        let total: f64 = idx.iter().map(|&i| p.sources[i].brightness).sum();
        assert!((total - p.active_brightness(t)).abs() < 1e-6);
    }

    #[test]
    fn expected_brightness_is_finite() {
        let e = SourcePopulation::expected_brightness(&small_config());
        assert!(e.is_finite() && e > 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_population_rejected() {
        let _ = SourcePopulation::generate(PopulationConfig {
            n_sources: 0,
            ..PopulationConfig::default()
        });
    }
}
