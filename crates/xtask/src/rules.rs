//! The audit rules, built on the token engine.
//!
//! Each rule scans preprocessed [`SourceFile`]s — token stream, delimiter
//! match table, and item tree from [`crate::lex`]/[`crate::parse`] — and
//! emits [`Diagnostic`]s. Rules are suppressible per-site with an inline
//! `// audit:allow(<rule>) — justification` marker on the offending line or
//! the line above it; the justification is mandatory (see
//! `allow-justification` below).
//!
//! | rule                 | scope                                  | what it catches |
//! |----------------------|----------------------------------------|-----------------|
//! | `index-cast`         | all library code                       | truncating `as u32` / `as usize` / `as Index` casts whose source context mentions a wider type |
//! | `panic-path`         | `core`, `hypersparse`, `assoc`, `anonymize`, `telescope`, `pcap` lib code | `unwrap()`, `expect(...)`, `panic!`, `unreachable!`, `todo!` |
//! | `float-eq`           | `stats` lib code + `core/src/fitscan.rs` | `==` / `!=` between floating-point expressions |
//! | `invariant-coverage` | `hypersparse`, `assoc`                 | public constructors not exercised by any `check_invariants` test |
//! | `instant-timing`     | all library code except `obs`          | ad-hoc `Instant::now()` / `SystemTime::now()` timing outside the metrics layer |
//! | `key-pack`           | `hypersparse` lib code except `keypack.rs` | ad-hoc `as u64` + `<< 32` key packing outside the shared `keypack` helper |
//! | `map-iter-order`     | all library code                       | `HashMap`/`HashSet` iteration order flowing into `Vec` pushes, string building, or (via the symbol index, one call hop) the `obscor_obs::json` codec |
//! | `nonassoc-reduce`    | all library code                       | rayon `reduce`/`fold`/`sum`/`product` over float accumulators outside blessed tree-reduction helpers |
//! | `atomic-ordering`    | all library code                       | `Ordering::*` sites without an `// ordering:` justification; stricter-than-Relaxed notes must name the happens-before edge |
//! | `shared-static-mut`  | all library code except `obs`          | process-global `static` atomics/locks/cells outside the obs registry and the declared metric-enable flags |
//! | `allow-justification`| all library code                       | `audit:allow(<rule>)` markers without a trailing justification |
//! | `nondet-reach`       | all library code                       | nondeterminism sources (hash iteration, wall-clock, thread identity) in functions that transitively reach the `obscor_obs::json` codec or the hypersparse archive codec |
//! | `blocking-in-par`    | all library code                       | blocking operations (`.lock()`, `.read()`/`.write()`, `.recv()`, `.join()`) inside rayon parallel extents, directly or through the call graph |
//! | `lock-order`         | whole workspace                        | cycles in the named-lock acquisition graph (deadlock candidates) |
//! | `panic-in-drop`      | all library code                       | panic-path sites reachable from `Drop::drop` bodies |
//! | `word-bit-manip`     | all library code except `assoc/src/bitset/` | ad-hoc u64 word/bit set logic (lane splits `>> 6` + `& 63`, masked popcounts) outside the compressed bitmap substrate |

use std::collections::HashSet;

use crate::index::{Analyses, SymbolIndex};
use crate::lex::TokKind;
use crate::parse::{fn_signature, Item, ItemKind};
use crate::scan::{has_token, SourceFile};

/// One audit finding, pointing at a concrete `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (e.g. `panic-path`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation of the finding.
    pub message: String,
    /// Stable fingerprint (hex), filled by the audit driver; rules leave it
    /// empty.
    pub fingerprint: String,
}

impl Diagnostic {
    /// Render as the canonical `file:line: [rule] message` form.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

fn diag(rule: &'static str, file: &SourceFile, line: usize, message: String) -> Diagnostic {
    Diagnostic { rule, file: file.rel.clone(), line, message, fingerprint: String::new() }
}

/// Crates whose library code must be panic-free. `telescope` and `pcap`
/// joined with the fault-recovery layer: both sit on the archive/ingest
/// path, where a corrupt input must surface as a classified error
/// (transient vs permanent), never a panic.
pub const PANIC_FREE_CRATES: &[&str] =
    &["core", "hypersparse", "assoc", "anonymize", "telescope", "pcap"];

/// Crates whose public constructors require invariant-test coverage.
pub const INVARIANT_CRATES: &[&str] = &["hypersparse", "assoc"];

/// Static names the `shared-static-mut` rule accepts outside `obs`: the
/// declared metric-enable flags (set once at startup, read Relaxed).
pub const ALLOWED_GLOBAL_STATICS: &[&str] =
    &["METRICS_ENABLED", "CACHE_METRICS_ENABLED", "BITSET_METRICS_ENABLED"];

/// Function names blessed as deterministic tree-reduction helpers; float
/// reductions inside them are exempt from `nonassoc-reduce`.
pub const BLESSED_REDUCERS: &[&str] = &["merge_all"];

const PAR_SOURCES: &[&str] = &[
    "par_iter",
    "into_par_iter",
    "par_iter_mut",
    "par_bridge",
    "par_chunks",
    "par_chunks_exact",
    "par_windows",
    "par_drain",
];
const REDUCE_TERMINALS: &[&str] = &["reduce", "fold", "sum", "product"];
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];
const SHARED_STATIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
    "Mutex",
    "RwLock",
    "OnceLock",
    "OnceCell",
    "LazyLock",
    "Cell",
    "RefCell",
    "UnsafeCell",
];
const MEM_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

// ---------------------------------------------------------------------------
// Token-walk helpers
// ---------------------------------------------------------------------------

/// Brace depth of each token: `{` carries the depth *outside* it, tokens
/// inside carry depth+1, and the matching `}` carries the outside depth
/// again. Paren/bracket groups do not change brace depth, so a closure
/// body `{ .. }` nested in a call chain sits one level deeper than the
/// chain itself — the property the reduction and taint extents rely on.
fn brace_depths(file: &SourceFile) -> Vec<u32> {
    let mut out = Vec::with_capacity(file.toks.len());
    let mut depth = 0u32;
    for i in 0..file.toks.len() {
        match file.toks[i].kind {
            TokKind::Open if file.tok_text(i) == "{" => {
                out.push(depth);
                depth += 1;
            }
            TokKind::Close if file.tok_text(i) == "}" => {
                depth = depth.saturating_sub(1);
                out.push(depth);
            }
            _ => out.push(depth),
        }
    }
    out
}

/// First token of the statement containing token `i` (same brace depth).
fn stmt_start(file: &SourceFile, depths: &[u32], i: usize) -> usize {
    let d = depths[i];
    let mut j = i;
    while j > 0 {
        let p = j - 1;
        if depths[p] < d {
            break; // crossed the enclosing `{`
        }
        if depths[p] == d {
            let txt = file.tok_text(p);
            if txt == ";" {
                break;
            }
            if txt == "}" && file.toks[p].kind == TokKind::Close {
                // A closing brace ends the statement unless the expression
                // continues through it (`}).sum()`, `}, other)`, `} else`).
                let follow = file.tok_text(p + 1);
                if !matches!(follow, "." | ")" | "]" | "," | "?" | ";" | "else") {
                    break;
                }
            }
        }
        j = p;
    }
    j
}

/// Last token (inclusive) of the statement containing token `i`. Nested
/// brace groups are jumped via the delimiter table; a jumped group ends the
/// statement unless a chain continues after it.
fn stmt_end(file: &SourceFile, depths: &[u32], i: usize) -> usize {
    let d = depths[i];
    let mut j = i;
    while j + 1 < file.toks.len() {
        let n = j + 1;
        if depths[n] < d {
            break; // the enclosing `}` closed
        }
        if depths[n] == d {
            let txt = file.tok_text(n);
            if txt == ";" {
                return n;
            }
            if file.toks[n].kind == TokKind::Open && txt == "{" {
                let close = file.delims[n];
                if close <= n {
                    return n;
                }
                j = close;
                if j + 1 < file.toks.len()
                    && depths[j + 1] == d
                    && matches!(file.tok_text(j + 1), "." | "?" | "else" | ")" | "]" | ",")
                {
                    continue;
                }
                return j;
            }
        }
        j = n;
    }
    j
}

/// Consecutive same-line token runs: `(line, token index range)`.
fn line_runs(file: &SourceFile) -> Vec<(usize, std::ops::Range<usize>)> {
    let mut out = Vec::new();
    let n = file.toks.len();
    let mut s = 0;
    for i in 1..=n {
        if i == n || file.toks[i].line != file.toks[s].line {
            out.push((file.toks[s].line, s..i));
            s = i;
        }
    }
    out
}

/// Innermost `fn` item whose body contains token `i`.
fn enclosing_fn(file: &SourceFile, i: usize) -> Option<&Item> {
    file.items
        .iter()
        .filter(|it| matches!(it.kind, ItemKind::Fn))
        .filter(|it| it.body.is_some_and(|(open, close)| open < i && i < close))
        .max_by_key(|it| it.body.unwrap().0)
}

fn line_exempt(file: &SourceFile, rule: &str, line: usize) -> bool {
    file.is_test_line(line) || file.is_allowed(rule, line)
}

// ---------------------------------------------------------------------------
// Ported rules
// ---------------------------------------------------------------------------

/// Rule `index-cast`: flag `as u32` / `as Index` / `as usize` casts whose
/// surrounding expression mentions a wider source type, i.e. the places a
/// silent truncation can corrupt an index. Pure narrowing of already-narrow
/// values (e.g. `u8 as u32`) carries no wide-source marker and passes.
pub fn rule_index_cast(file: &SourceFile) -> Vec<Diagnostic> {
    const RULE: &str = "index-cast";
    let mut out = Vec::new();
    let mut seen: HashSet<(usize, &str)> = HashSet::new();
    for i in 0..file.toks.len().saturating_sub(1) {
        if file.toks[i].kind != TokKind::Ident || file.tok_text(i) != "as" {
            continue;
        }
        if file.toks[i + 1].kind != TokKind::Ident {
            continue;
        }
        let target = file.tok_text(i + 1);
        if !matches!(target, "u32" | "usize" | "Index") {
            continue;
        }
        let line = file.tok_line(i);
        if line_exempt(file, RULE, line) || seen.contains(&(line, target)) {
            continue;
        }
        // Wide-source evidence among the tokens to the left on this line.
        let left: Vec<usize> = (0..i).rev().take_while(|&j| file.tok_line(j) == line).collect();
        let has_ident = |names: &[&str]| {
            left.iter().any(|&j| {
                file.toks[j].kind == TokKind::Ident && names.contains(&file.tok_text(j))
            })
        };
        let wide = match target {
            // usize is 64-bit here; only 64-bit+ sources can truncate.
            "usize" => has_ident(&["u64", "i64", "u128", "i128", "f64"]),
            // u32 / Index also truncate from usize-width sources.
            _ => {
                has_ident(&["u64", "i64", "u128", "i128", "f64", "usize"])
                    || left.iter().any(|&j| matches!(file.tok_text(j), "<<" | ">>"))
                    || left.iter().any(|&j| {
                        file.toks[j].kind == TokKind::Ident
                            && file.tok_text(j) == "len"
                            && j > 0
                            && file.tok_text(j - 1) == "."
                            && j + 1 < i
                            && file.tok_text(j + 1) == "("
                    })
            }
        };
        if wide {
            seen.insert((line, target));
            out.push(diag(
                RULE,
                file,
                line,
                format!(
                    "truncating `as {target}` cast from a wide source; use \
                     `try_from`/`try_into` or annotate with audit:allow({RULE})"
                ),
            ));
        }
    }
    out
}

/// Rule `panic-path`: no `unwrap` / `expect` / `panic!` / `unreachable!` /
/// `todo!` in library code of the panic-free crates. Test code is exempt.
pub fn rule_panic_path(file: &SourceFile) -> Vec<Diagnostic> {
    const RULE: &str = "panic-path";
    let mut out = Vec::new();
    let mut seen: HashSet<(usize, &str)> = HashSet::new();
    for i in 0..file.toks.len() {
        if file.toks[i].kind != TokKind::Ident {
            continue;
        }
        let line = file.tok_line(i);
        let name = file.tok_text(i);
        let label = match name {
            // `.unwrap()` — empty-arg method call on a receiver.
            "unwrap"
                if i > 0
                    && file.tok_text(i - 1) == "."
                    && i + 2 < file.toks.len()
                    && file.tok_text(i + 1) == "("
                    && file.delims[i + 1] == i + 2 =>
            {
                "`unwrap()`"
            }
            "expect"
                if i > 0
                    && file.tok_text(i - 1) == "."
                    && i + 1 < file.toks.len()
                    && file.tok_text(i + 1) == "(" =>
            {
                "`expect(...)`"
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if i + 1 < file.toks.len() && file.tok_text(i + 1) == "!" =>
            {
                match name {
                    "panic" => "`panic!`",
                    "unreachable" => "`unreachable!`",
                    "todo" => "`todo!`",
                    _ => "`unimplemented!`",
                }
            }
            _ => continue,
        };
        if line_exempt(file, RULE, line) || !seen.insert((line, label)) {
            continue;
        }
        out.push(diag(
            RULE,
            file,
            line,
            format!(
                "{label} in panic-free library code; return a Result or \
                 annotate a documented contract with audit:allow({RULE})"
            ),
        ));
    }
    out
}

/// Rule `float-eq`: no `==` / `!=` on a line showing floating-point
/// evidence (an `f64`/`f32` token or a float literal).
pub fn rule_float_eq(file: &SourceFile) -> Vec<Diagnostic> {
    const RULE: &str = "float-eq";
    let mut out = Vec::new();
    for (line, run) in line_runs(file) {
        if line_exempt(file, RULE, line) {
            continue;
        }
        let evidence = run.clone().any(|j| {
            file.toks[j].kind == TokKind::Float
                || (file.toks[j].kind == TokKind::Ident
                    && matches!(file.tok_text(j), "f64" | "f32"))
        });
        if !evidence {
            continue;
        }
        for j in run {
            if file.toks[j].kind == TokKind::Punct && matches!(file.tok_text(j), "==" | "!=") {
                out.push(diag(
                    RULE,
                    file,
                    line,
                    format!(
                        "floating-point `{}` comparison; use an epsilon/ULP helper or \
                         total ordering, or annotate with audit:allow({RULE})",
                        file.tok_text(j)
                    ),
                ));
            }
        }
    }
    out
}

/// Rule `instant-timing`: no ad-hoc wall-clock timing (`Instant::now()`,
/// `SystemTime::now()`) in library code outside the `obs` crate. All timing
/// must flow through `obscor_obs::span` so measurements land in the metrics
/// registry — and therefore in `--metrics` dumps and `BENCH_pipeline.json` —
/// instead of scattering one-off stderr prints. The caller (`audit`) skips
/// the `obs` crate itself, which hosts the one sanctioned `Instant::now()`.
pub fn rule_instant_timing(file: &SourceFile) -> Vec<Diagnostic> {
    const RULE: &str = "instant-timing";
    let mut out = Vec::new();
    let mut seen: HashSet<(usize, &str)> = HashSet::new();
    for i in 0..file.toks.len().saturating_sub(2) {
        if file.toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = file.tok_text(i);
        if !matches!(name, "Instant" | "SystemTime") {
            continue;
        }
        if file.tok_text(i + 1) != "::" || file.tok_text(i + 2) != "now" {
            continue;
        }
        let line = file.tok_line(i);
        let needle = if name == "Instant" { "Instant::now" } else { "SystemTime::now" };
        if line_exempt(file, RULE, line) || !seen.insert((line, needle)) {
            continue;
        }
        out.push(diag(
            RULE,
            file,
            line,
            format!(
                "ad-hoc `{needle}()` timing outside the obs crate; use \
                 `obscor_obs::span` / `SpanTimer` so the measurement lands \
                 in the metrics registry, or annotate with audit:allow({RULE})"
            ),
        ));
    }
    out
}

/// Rule `key-pack`: no ad-hoc `(x as u64) << 32` key packing in the
/// `hypersparse` crate outside `keypack.rs`. The packed `(row << 32) | col`
/// key layout is load-bearing for the radix compaction kernel and the DCSC
/// sort order; every construction site must go through
/// `keypack::pack_key` / `unpack_key` so the layout can only change in one
/// place. A line trips when it contains both an `as u64` cast and a
/// `<< 32` shift. The caller (`audit`) applies this to `hypersparse` only;
/// the rule itself exempts `keypack.rs`.
pub fn rule_key_pack(file: &SourceFile) -> Vec<Diagnostic> {
    const RULE: &str = "key-pack";
    if file.rel.ends_with("keypack.rs") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (line, run) in line_runs(file) {
        if line_exempt(file, RULE, line) {
            continue;
        }
        let shift_32 = run.clone().any(|j| {
            file.tok_text(j) == "<<"
                && j + 1 < run.end
                && file.toks[j + 1].kind == TokKind::Int
                && file.tok_text(j + 1) == "32"
        });
        let cast_u64 = run.clone().any(|j| {
            file.toks[j].kind == TokKind::Ident
                && file.tok_text(j) == "as"
                && j + 1 < run.end
                && file.tok_text(j + 1) == "u64"
        });
        if shift_32 && cast_u64 {
            out.push(diag(
                RULE,
                file,
                line,
                format!(
                    "ad-hoc `as u64` + `<< 32` key packing; route key \
                     construction through `keypack::pack_key` / \
                     `unpack_key`, or annotate with audit:allow({RULE})"
                ),
            ));
        }
    }
    out
}

/// Numeric value of an `Int` token's text (suffix glued, `_` separators,
/// `0x`/`0o`/`0b` prefixes). `None` when the digits do not parse.
fn int_literal_value(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (h, 16)
    } else if let Some(o) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        (o, 8)
    } else if let Some(b) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        (b, 2)
    } else {
        (t.as_str(), 10)
    };
    let end = digits.find(|c: char| !c.is_digit(radix)).unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    u64::from_str_radix(&digits[..end], radix).ok()
}

/// Rule `word-bit-manip`: no ad-hoc 64-bit word/bit set manipulation
/// outside `assoc/src/bitset/`. The compressed bitmap substrate owns the
/// word-parallel membership layout (word = key >> 6, bit = key & 63,
/// masked popcounts); a hand-rolled copy elsewhere forks that layout and
/// silently drifts from the containers' promotion/demotion semantics. A
/// line trips when it either splits a key into the u64 lane pair — a
/// `>> 6` / `<< 6` shift together with a `& 63` (or `& 0x3f`) mask — or
/// popcounts a masked word (`count_ones` on the same line as a binary
/// `&`). The caller (`audit`) applies this to every library crate; the
/// rule itself exempts the bitset module.
pub fn rule_word_bit_manip(file: &SourceFile) -> Vec<Diagnostic> {
    const RULE: &str = "word-bit-manip";
    if file.rel.contains("assoc/src/bitset/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (line, run) in line_runs(file) {
        if line_exempt(file, RULE, line) {
            continue;
        }
        let int_after = |j: usize, want: u64| {
            j + 1 < run.end
                && file.toks[j + 1].kind == TokKind::Int
                && int_literal_value(file.tok_text(j + 1)) == Some(want)
        };
        let lane_shift =
            run.clone().any(|j| matches!(file.tok_text(j), ">>" | "<<") && int_after(j, 6));
        let lane_mask = run.clone().any(|j| file.tok_text(j) == "&" && int_after(j, 63));
        let popcount = run
            .clone()
            .any(|j| file.toks[j].kind == TokKind::Ident && file.tok_text(j) == "count_ones");
        // A `&` is a binary AND (not a reference) when an operand ends
        // directly before it: an identifier, a literal, or a `)`/`]`.
        let binary_and = run.clone().any(|j| {
            file.tok_text(j) == "&"
                && j > run.start
                && matches!(
                    file.toks[j - 1].kind,
                    TokKind::Ident | TokKind::Int | TokKind::Close
                )
        });
        if (lane_shift && lane_mask) || (popcount && binary_and) {
            out.push(diag(
                RULE,
                file,
                line,
                format!(
                    "ad-hoc u64 word/bit set manipulation; route membership \
                     and overlap logic through the `assoc::bitset` \
                     containers, or annotate with audit:allow({RULE})"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Invariant coverage (parser-driven)
// ---------------------------------------------------------------------------

/// A public constructor discovered by [`find_constructors`].
#[derive(Debug, Clone)]
pub struct Constructor {
    /// The type the `impl` block belongs to.
    pub type_name: String,
    /// The function name.
    pub fn_name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// Find `pub fn` constructors (no `self` receiver, returns `Self` or the
/// impl type) in inherent `impl` blocks of `file`, via the item tree.
pub fn find_constructors(file: &SourceFile) -> Vec<Constructor> {
    let mut out = Vec::new();
    for item in &file.items {
        if !matches!(item.kind, ItemKind::Fn) || !item.is_pub {
            continue;
        }
        let Some(p) = item.parent else { continue };
        let ItemKind::Impl { ref type_name, trait_impl: false, .. } = file.items[p].kind else {
            continue;
        };
        if type_name.is_empty() {
            continue;
        }
        let line = file.tok_line(item.kw_tok);
        if file.is_test_line(line) || file.is_allowed("invariant-coverage", line) {
            continue;
        }
        let Some(sig) = fn_signature(item, &file.code, &file.toks, &file.delims) else {
            continue;
        };
        // A `self` receiver in the first parameter marks a method.
        if first_param_has_self(file, sig.params) {
            continue;
        }
        let returns_self = (sig.ret.0..sig.ret.1).any(|j| {
            file.toks[j].kind == TokKind::Ident
                && (file.tok_text(j) == "Self" || file.tok_text(j) == type_name)
        });
        if returns_self {
            out.push(Constructor {
                type_name: type_name.clone(),
                fn_name: item.name.clone(),
                file: file.rel.clone(),
                line,
            });
        }
    }
    out
}

fn first_param_has_self(file: &SourceFile, params: (usize, usize)) -> bool {
    let mut j = params.0 + 1;
    let mut angle = 0i32;
    while j < params.1 {
        match file.toks[j].kind {
            TokKind::Open => {
                let close = file.delims[j];
                j = if close > j { close + 1 } else { j + 1 };
                continue;
            }
            TokKind::Ident if file.tok_text(j) == "self" => return true,
            _ => match file.tok_text(j) {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "," if angle <= 0 => return false,
                _ => {}
            },
        }
        j += 1;
    }
    false
}

/// Rule `invariant-coverage`, run over a whole crate at once:
///
/// * every type in an invariant crate that defines `check_invariants` must
///   have each of its public constructors mentioned, together with the type
///   name, in some test source that also calls `check_invariants`;
/// * a type with public constructors but *no* `check_invariants` method is
///   itself a finding (anchored at its first constructor).
///
/// `lib_files` are the crate's library sources; `test_corpus` is the
/// concatenation of every test source that mentions `check_invariants`
/// (crate `tests/` files plus `#[cfg(test)]` regions).
pub fn rule_invariant_coverage(
    lib_files: &[SourceFile],
    test_corpus: &str,
) -> Vec<Diagnostic> {
    const RULE: &str = "invariant-coverage";
    let mut out = Vec::new();
    // Types that define check_invariants in an inherent impl, crate-wide.
    let mut checked_types = HashSet::new();
    for f in lib_files {
        for item in &f.items {
            if matches!(item.kind, ItemKind::Fn) && item.name == "check_invariants" {
                if let Some(p) = item.parent {
                    if let ItemKind::Impl { ref type_name, trait_impl: false, .. } =
                        f.items[p].kind
                    {
                        checked_types.insert(type_name.clone());
                    }
                }
            }
        }
    }
    for f in lib_files {
        for ctor in find_constructors(f) {
            if !checked_types.contains(&ctor.type_name) {
                out.push(Diagnostic {
                    rule: RULE,
                    file: ctor.file.clone(),
                    line: ctor.line,
                    message: format!(
                        "type `{}` has public constructor `{}` but no \
                         `check_invariants()` method",
                        ctor.type_name, ctor.fn_name
                    ),
                    fingerprint: String::new(),
                });
                continue;
            }
            let covered = has_token(test_corpus, &ctor.type_name)
                && has_token(test_corpus, &ctor.fn_name);
            if !covered {
                out.push(Diagnostic {
                    rule: RULE,
                    file: ctor.file,
                    line: ctor.line,
                    message: format!(
                        "public constructor `{}::{}` is not exercised by any \
                         `check_invariants` test",
                        ctor.type_name, ctor.fn_name
                    ),
                    fingerprint: String::new(),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// New rules: determinism & concurrency
// ---------------------------------------------------------------------------

/// Rule `atomic-ordering`: every `Ordering::*` memory-ordering site must be
/// covered by an `// ordering:` justification comment (own line or the line
/// above) or an `audit:allow(atomic-ordering)` marker. Stricter-than-Relaxed
/// orderings must name the happens-before edge their justification
/// establishes (the note must contain "happens-before").
/// `cmp::Ordering` variants (`Less`/`Equal`/`Greater`) never match.
pub fn rule_atomic_ordering(file: &SourceFile) -> Vec<Diagnostic> {
    const RULE: &str = "atomic-ordering";
    let mut out = Vec::new();
    let mut seen_lines: HashSet<usize> = HashSet::new();
    for i in 0..file.toks.len().saturating_sub(2) {
        if file.toks[i].kind != TokKind::Ident || file.tok_text(i) != "Ordering" {
            continue;
        }
        if file.tok_text(i + 1) != "::" {
            continue;
        }
        let member = file.tok_text(i + 2);
        if !MEM_ORDERINGS.contains(&member) {
            continue;
        }
        let line = file.tok_line(i + 2);
        if line_exempt(file, RULE, line) || seen_lines.contains(&line) {
            continue;
        }
        match file.ordering_note(line) {
            None => {
                seen_lines.insert(line);
                out.push(diag(
                    RULE,
                    file,
                    line,
                    format!(
                        "`Ordering::{member}` without an `// ordering:` justification \
                         comment; document why this ordering is sufficient or annotate \
                         with audit:allow({RULE})"
                    ),
                ));
            }
            Some(note) if member != "Relaxed" && !note.contains("happens-before") => {
                seen_lines.insert(line);
                out.push(diag(
                    RULE,
                    file,
                    line,
                    format!(
                        "`Ordering::{member}` is stricter than Relaxed but its \
                         `// ordering:` note does not name the happens-before edge \
                         it establishes"
                    ),
                ));
            }
            Some(_) => {}
        }
    }
    out
}

/// Rule `shared-static-mut`: process-global mutable state — `static mut`,
/// or a `static` whose type is an atomic, lock, or interior-mutability cell
/// — outside the `obs` registry (the caller skips the `obs` crate) and the
/// declared metric-enable flags ([`ALLOWED_GLOBAL_STATICS`]). Fn-local
/// statics count: they are still process-global storage.
pub fn rule_shared_static_mut(file: &SourceFile) -> Vec<Diagnostic> {
    const RULE: &str = "shared-static-mut";
    let mut out = Vec::new();
    for item in &file.items {
        let ItemKind::Static { type_range, mutable } = item.kind else { continue };
        if item.is_test || ALLOWED_GLOBAL_STATICS.contains(&item.name.as_str()) {
            continue;
        }
        let line = file.tok_line(item.kw_tok);
        if file.is_allowed(RULE, line) {
            continue;
        }
        let shared_ty = (type_range.0..type_range.1).find(|&j| {
            file.toks[j].kind == TokKind::Ident && SHARED_STATIC_TYPES.contains(&file.tok_text(j))
        });
        if !mutable && shared_ty.is_none() {
            continue; // immutable plain data (lookup tables etc.) is fine
        }
        let what = if mutable {
            "`static mut`".to_string()
        } else {
            format!("`static {}: {}`", item.name, file.tok_text(shared_ty.unwrap()))
        };
        out.push(diag(
            RULE,
            file,
            line,
            format!(
                "process-global {what} outside the obs registry; route shared \
                 state through `obscor_obs` (or a declared enable flag), or \
                 annotate with audit:allow({RULE})"
            ),
        ));
    }
    out
}

/// Rule `nonassoc-reduce`: a rayon `reduce`/`fold`/`sum`/`product` terminal
/// at the same brace depth as a parallel-iterator source in the same
/// statement, with floating-point evidence in the statement, is a
/// non-associative reduction whose result depends on work-stealing split
/// points. Sequential float reductions *inside* a parallel closure (one
/// brace level deeper) are associative per-item work and pass. Functions
/// named in [`BLESSED_REDUCERS`] are exempt — they implement the sanctioned
/// deterministic tree shape.
pub fn rule_nonassoc_reduce(file: &SourceFile) -> Vec<Diagnostic> {
    const RULE: &str = "nonassoc-reduce";
    let depths = brace_depths(file);
    let mut out = Vec::new();
    for i in 0..file.toks.len() {
        if file.toks[i].kind != TokKind::Ident {
            continue;
        }
        let term = file.tok_text(i);
        if !REDUCE_TERMINALS.contains(&term) {
            continue;
        }
        if i == 0 || file.tok_text(i - 1) != "." {
            continue;
        }
        if i + 1 >= file.toks.len() || !matches!(file.tok_text(i + 1), "(" | "::") {
            continue;
        }
        let line = file.tok_line(i);
        if line_exempt(file, RULE, line) {
            continue;
        }
        if let Some(f) = enclosing_fn(file, i) {
            if BLESSED_REDUCERS.contains(&f.name.as_str()) {
                continue;
            }
        }
        let d = depths[i];
        let start = stmt_start(file, &depths, i);
        let end = stmt_end(file, &depths, i);
        // The parallel source must sit on the same chain (same brace
        // depth), before the terminal, within this statement.
        let par = (start..i).find(|&j| {
            depths[j] == d
                && file.toks[j].kind == TokKind::Ident
                && PAR_SOURCES.contains(&file.tok_text(j))
        });
        let Some(par_j) = par else { continue };
        // Float evidence anywhere in the statement (closure bodies too).
        let float = (start..=end).any(|j| {
            file.toks[j].kind == TokKind::Float
                || (file.toks[j].kind == TokKind::Ident
                    && matches!(file.tok_text(j), "f64" | "f32"))
        });
        if !float {
            continue;
        }
        out.push(diag(
            RULE,
            file,
            line,
            format!(
                "non-associative floating-point `.{term}(...)` over `{}`; the result \
                 depends on rayon split points — use the blessed tree-reduction \
                 helpers (`merge_all`) or annotate with audit:allow({RULE})",
                file.tok_text(par_j)
            ),
        ));
    }
    out
}

/// Rule `map-iter-order`: iteration over a `HashMap`/`HashSet`-typed
/// binding whose extent feeds an order-sensitive sink — `Vec` pushes,
/// string building, `collect` into `Vec`/`String`, or a call to a function
/// that reaches the `obscor_obs::json` codec within one hop (per the
/// symbol index). `BTreeMap`/sorted collections never match; sites that
/// sort afterwards document it with `audit:allow(map-iter-order)`.
pub fn rule_map_iter_order(file: &SourceFile, index: &SymbolIndex) -> Vec<Diagnostic> {
    const RULE: &str = "map-iter-order";
    let depths = brace_depths(file);
    let mut out = Vec::new();
    for item in &file.items {
        if !matches!(item.kind, ItemKind::Fn) || item.is_test {
            continue;
        }
        let mut emitted: HashSet<usize> = HashSet::new();
        for site in hash_iteration_sites(file, item, &depths) {
            if line_exempt(file, RULE, site.line) || !emitted.insert(site.line) {
                continue;
            }
            if let Some(sink) = find_order_sink(file, &depths, site.extent, index) {
                out.push(diag(
                    RULE,
                    file,
                    site.line,
                    format!(
                        "iteration over {} flows into {sink}; iterate a \
                         BTreeMap/sorted view or annotate with audit:allow({RULE})",
                        site.desc
                    ),
                ));
            }
        }
    }
    out
}

/// One hash-ordered iteration site inside a fn body, shared between
/// `map-iter-order` (which additionally demands an order sink in the
/// extent) and `nondet-reach` (which taints by reachability instead).
struct HashIterSite {
    /// 1-based line of the `for` keyword or the binding identifier.
    line: usize,
    /// Token index anchoring the site (for ownership checks).
    tok: usize,
    /// Message fragment: `a hash-ordered collection` (for-loops) or
    /// `` hash-ordered `m` `` (method chains).
    desc: String,
    /// Token extent to scan for order sinks: the loop body or the
    /// chain's statement.
    extent: (usize, usize),
}

/// Find every hash-ordered iteration site in `item`'s body: `for` loops
/// whose iterable shows `HashMap`/`HashSet` evidence, and
/// `<hash binding>.<iter method>(` chains.
fn hash_iteration_sites(file: &SourceFile, item: &Item, depths: &[u32]) -> Vec<HashIterSite> {
    let mut out = Vec::new();
    let Some((body_open, body_close)) = item.body else { return out };
    let hash_idents = collect_hash_idents(file, item);
    let mut j = body_open + 1;
    while j < body_close {
        // `for <pat> in <iterable> { body }` over a hash binding.
        if file.toks[j].kind == TokKind::Ident && file.tok_text(j) == "for" {
            if let Some((iter_from, brace)) = for_loop_parts(file, j, body_close) {
                let hashy = (iter_from..brace).any(|k| {
                    file.toks[k].kind == TokKind::Ident
                        && (hash_idents.contains(file.tok_text(k))
                            || HASH_TYPES.contains(&file.tok_text(k)))
                });
                if hashy {
                    out.push(HashIterSite {
                        line: file.tok_line(j),
                        tok: j,
                        desc: "a hash-ordered collection".to_string(),
                        extent: (brace + 1, file.delims[brace]),
                    });
                    j = brace + 1;
                    continue;
                }
            }
        }
        // `<hash binding> . <iter method> (` chains.
        if file.toks[j].kind == TokKind::Ident
            && hash_idents.contains(file.tok_text(j))
            && (j == 0 || file.tok_text(j - 1) != ".")
            && j + 2 < body_close
            && file.tok_text(j + 1) == "."
            && file.toks[j + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&file.tok_text(j + 2))
        {
            let start = stmt_start(file, depths, j);
            let end = stmt_end(file, depths, j);
            out.push(HashIterSite {
                line: file.tok_line(j),
                tok: j,
                desc: format!("hash-ordered `{}`", file.tok_text(j)),
                extent: (start, end + 1),
            });
        }
        j += 1;
    }
    out
}

/// Bindings with `HashMap`/`HashSet` evidence inside one fn: parameters
/// whose type names a hash collection, and `let` bindings whose type
/// annotation or initializer does.
fn collect_hash_idents(file: &SourceFile, item: &Item) -> HashSet<String> {
    let mut out = HashSet::new();
    // Parameters.
    if let Some(sig) = fn_signature(item, &file.code, &file.toks, &file.delims) {
        let (open, close) = sig.params;
        let mut seg_start = open + 1;
        let mut angle = 0i32;
        let mut k = open + 1;
        while k <= close {
            let at_end = k == close;
            let top_comma = !at_end
                && angle <= 0
                && file.toks[k].kind == TokKind::Punct
                && file.tok_text(k) == ",";
            if at_end || top_comma {
                record_hash_param(file, seg_start..k, &mut out);
                seg_start = k + 1;
                k += 1;
                continue;
            }
            match file.toks[k].kind {
                TokKind::Open => {
                    let c = file.delims[k];
                    k = if c > k { c + 1 } else { k + 1 };
                    continue;
                }
                _ => match file.tok_text(k) {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    _ => {}
                },
            }
            k += 1;
        }
    }
    // Let bindings in the body.
    let Some((body_open, body_close)) = item.body else { return out };
    let mut j = body_open + 1;
    while j < body_close {
        if file.toks[j].kind == TokKind::Ident && file.tok_text(j) == "let" {
            let mut p = j + 1;
            if p < body_close && file.tok_text(p) == "mut" {
                p += 1;
            }
            if p < body_close && file.toks[p].kind == TokKind::Ident {
                let name = file.tok_text(p);
                // Scan annotation and initializer up to the `;`.
                let mut hash = false;
                let mut q = p + 1;
                while q < body_close {
                    match file.toks[q].kind {
                        TokKind::Ident if HASH_TYPES.contains(&file.tok_text(q)) => hash = true,
                        TokKind::Punct if file.tok_text(q) == ";" => break,
                        TokKind::Open if file.tok_text(q) == "{" => {
                            // Initializer blocks: scan inside too (they are
                            // part of the binding), then continue after.
                            q += 1;
                            continue;
                        }
                        _ => {}
                    }
                    q += 1;
                }
                if hash {
                    out.insert(name.to_string());
                }
                j = p;
            }
        }
        j += 1;
    }
    out
}

fn record_hash_param(
    file: &SourceFile,
    seg: std::ops::Range<usize>,
    out: &mut HashSet<String>,
) {
    // `name: Type` — name is the ident right before the first `:`.
    let Some(colon) = seg.clone().find(|&k| {
        file.toks[k].kind == TokKind::Punct && file.tok_text(k) == ":"
    }) else {
        return;
    };
    if colon == seg.start || file.toks[colon - 1].kind != TokKind::Ident {
        return;
    }
    let name = file.tok_text(colon - 1);
    let hashy = (colon + 1..seg.end).any(|k| {
        file.toks[k].kind == TokKind::Ident && HASH_TYPES.contains(&file.tok_text(k))
    });
    if hashy && name != "self" {
        out.insert(name.to_string());
    }
}

/// For a `for` keyword at `f`, find `(start of iterable, body brace)`:
/// the token after the top-level `in` and the first `{` after it.
fn for_loop_parts(file: &SourceFile, f: usize, limit: usize) -> Option<(usize, usize)> {
    let mut j = f + 1;
    let mut in_pos = None;
    while j < limit {
        match file.toks[j].kind {
            TokKind::Open if file.tok_text(j) == "{" => {
                let from = in_pos?;
                return if file.delims[j] > j { Some((from, j)) } else { None };
            }
            TokKind::Open => {
                let c = file.delims[j];
                j = if c > j { c + 1 } else { j + 1 };
                continue;
            }
            TokKind::Ident if file.tok_text(j) == "in" && in_pos.is_none() => {
                in_pos = Some(j + 1);
            }
            TokKind::Close => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Scan a token extent for an order-sensitive sink; returns a description.
fn find_order_sink(
    file: &SourceFile,
    depths: &[u32],
    extent: (usize, usize),
    index: &SymbolIndex,
) -> Option<String> {
    let (start, end) = extent;
    for j in start..end.min(file.toks.len()) {
        if file.toks[j].kind != TokKind::Ident {
            continue;
        }
        let name = file.tok_text(j);
        let next = if j + 1 < end { file.tok_text(j + 1) } else { "" };
        let prev_dot = j > 0 && file.tok_text(j - 1) == ".";
        match name {
            "push" | "push_str" | "extend" if prev_dot && next == "(" => {
                return Some(format!("`.{name}(...)` (order-sensitive accumulation)"));
            }
            "format" | "write" | "writeln" if next == "!" => {
                return Some(format!("`{name}!` string building"));
            }
            "collect" if prev_dot => {
                // Only a collect whose own statement names Vec/String is
                // order-sensitive (collecting into another map is not).
                let s = stmt_start(file, depths, j);
                let e = stmt_end(file, depths, j);
                let ordered = (s..=e).any(|k| {
                    file.toks[k].kind == TokKind::Ident
                        && matches!(file.tok_text(k), "Vec" | "VecDeque" | "String")
                });
                if ordered {
                    return Some("`.collect()` into an ordered container".to_string());
                }
            }
            _ if next == "(" && index.json_reaching.contains(name) => {
                return Some(format!(
                    "`{name}(...)`, which reaches the `obscor_obs::json` codec"
                ));
            }
            _ => {}
        }
    }
    None
}

/// Rule `allow-justification`: every `audit:allow(<rule>)` marker must
/// carry a non-empty trailing justification — a bare marker defeats the
/// point of per-site suppression. This meta-rule cannot itself be
/// suppressed with an allow marker.
pub fn rule_allow_justification(file: &SourceFile) -> Vec<Diagnostic> {
    const RULE: &str = "allow-justification";
    let mut out = Vec::new();
    for site in &file.allow_sites {
        if site.justified || file.is_test_line(site.line) {
            continue;
        }
        out.push(diag(
            RULE,
            file,
            site.line,
            format!(
                "audit:allow({}) marker without a justification; append \
                 `— <why this site is sound>` after the closing paren",
                site.rule
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Interprocedural rules (call-graph driven)
// ---------------------------------------------------------------------------

/// Rule `nondet-reach`: a nondeterminism source — `HashMap`/`HashSet`
/// iteration, a wall-clock read, or a thread-identity read — inside a
/// function that *transitively* reaches the `obscor_obs::json` codec or
/// the hypersparse archive codec (any call depth, per [`Analyses`]).
/// Nondeterminism that can leak into serialized artifacts breaks the
/// paper's byte-identical reproducibility claims; the finding names the
/// full call chain to the sink. Function-granular by design: the source
/// need not demonstrably flow into the sink call (that over-approximation
/// is documented in DESIGN.md §14). The caller passes `crate_name`;
/// wall-clock sources are skipped for `obs`, which owns the sanctioned
/// clock.
pub fn rule_nondet_reach(
    file: &SourceFile,
    file_id: usize,
    an: &Analyses,
    crate_name: &str,
) -> Vec<Diagnostic> {
    const RULE: &str = "nondet-reach";
    let depths = brace_depths(file);
    let mut out = Vec::new();
    for (iid, item) in file.items.iter().enumerate() {
        if !matches!(item.kind, ItemKind::Fn) || item.is_test {
            continue;
        }
        let Some((body_open, body_close)) = item.body else { continue };
        let Some(node) = an.graph.node_of(file_id, iid) else { continue };
        let reaches_json = an.json_reach().reaches(node);
        let reaches_archive = an.archive_reach().reaches(node);
        if !reaches_json && !reaches_archive {
            continue;
        }
        let (sink, chain) = if reaches_json {
            ("the `obscor_obs::json` codec", an.graph.chain_names(an.json_reach(), node))
        } else {
            ("the hypersparse archive codec", an.graph.chain_names(an.archive_reach(), node))
        };
        // Collect sources in body order: hash iterations, wall-clock
        // reads, thread-identity reads. Tokens owned by nested fns are
        // that node's problem, not this one's.
        let mut sources: Vec<(usize, usize, String)> = Vec::new(); // (tok, line, what)
        for site in hash_iteration_sites(file, item, &depths) {
            sources.push((site.tok, site.line, format!("iteration over {}", site.desc)));
        }
        for i in body_open + 1..body_close {
            if file.toks[i].kind != TokKind::Ident {
                continue;
            }
            let name = file.tok_text(i);
            let what = match name {
                "Instant" | "SystemTime"
                    if crate_name != "obs"
                        && i + 2 < body_close
                        && file.tok_text(i + 1) == "::"
                        && file.tok_text(i + 2) == "now" =>
                {
                    format!("`{name}::now()` wall-clock read")
                }
                "current_thread_index"
                    if i + 1 < body_close && file.tok_text(i + 1) == "(" =>
                {
                    "`current_thread_index()` thread-identity read".to_string()
                }
                "thread"
                    if i + 2 < body_close
                        && file.tok_text(i + 1) == "::"
                        && file.tok_text(i + 2) == "current" =>
                {
                    "`thread::current()` thread-identity read".to_string()
                }
                _ => continue,
            };
            sources.push((i, file.tok_line(i), what));
        }
        sources.sort_by_key(|&(tok, _, _)| tok);
        let mut emitted: HashSet<usize> = HashSet::new();
        for (tok, line, what) in sources {
            if an.graph.fn_at(file_id, tok) != Some(node) {
                continue; // owned by a nested fn
            }
            if line_exempt(file, RULE, line) || !emitted.insert(line) {
                continue;
            }
            out.push(diag(
                RULE,
                file,
                line,
                format!(
                    "nondeterministic {what} in `{}`, which reaches {sink} \
                     ({chain}); make the source deterministic/ordered or \
                     annotate with audit:allow({RULE})",
                    item.name
                ),
            ));
        }
    }
    out
}

/// Rule `blocking-in-par`: a blocking operation — `.lock()`, RwLock
/// `.read()`/`.write()`, channel `.recv()`/`.recv_timeout()`, or
/// `.join()` — inside a rayon parallel extent (the statement tail of a
/// `par_iter`-family source, or the argument list of `rayon::scope` /
/// `rayon::join`), either directly or transitively through a call to a
/// function whose closure reaches a blocking operation. Blocking a
/// work-stealing worker can starve or deadlock the pool. Findings on
/// transitive sites name the full call chain and the terminal operation.
pub fn rule_blocking_in_par(file: &SourceFile, file_id: usize, an: &Analyses) -> Vec<Diagnostic> {
    const RULE: &str = "blocking-in-par";
    let depths = brace_depths(file);
    let mut out = Vec::new();
    let mut emitted: HashSet<usize> = HashSet::new();
    for i in 0..file.toks.len() {
        if file.toks[i].kind != TokKind::Ident {
            continue;
        }
        let txt = file.tok_text(i);
        // A parallel extent: `(start, end_inclusive, opener)`.
        let extent = if PAR_SOURCES.contains(&txt) && i > 0 && file.tok_text(i - 1) == "." {
            Some((i + 1, stmt_end(file, &depths, i), txt))
        } else if matches!(txt, "scope" | "join")
            && i >= 2
            && file.tok_text(i - 1) == "::"
            && file.tok_text(i - 2) == "rayon"
            && i + 1 < file.toks.len()
            && file.tok_text(i + 1) == "("
            && file.delims[i + 1] > i + 1
        {
            Some((i + 2, file.delims[i + 1].saturating_sub(1), txt))
        } else {
            None
        };
        let Some((start, end, opener)) = extent else { continue };
        let par_line = file.tok_line(i);
        for j in start..=end.min(file.toks.len().saturating_sub(1)) {
            if file.toks[j].kind != TokKind::Ident {
                continue;
            }
            let line = file.tok_line(j);
            if line_exempt(file, RULE, line) || emitted.contains(&line) {
                continue;
            }
            if let Some(what) = crate::index::blocking_at(file, j) {
                emitted.insert(line);
                out.push(diag(
                    RULE,
                    file,
                    line,
                    format!(
                        "{what} inside the rayon parallel extent opened by \
                         `{opener}` (line {par_line}); blocking a work-stealing \
                         worker risks starvation or deadlock — hoist it out of \
                         the parallel closure or annotate with audit:allow({RULE})"
                    ),
                ));
                continue;
            }
            // A call to a function that transitively blocks. The owning
            // node's recorded call sites carry the qualifier, so the
            // resolution rules (no non-self method receivers, typed
            // `Type::` paths) apply here too.
            {
                let Some(caller) = an.graph.fn_at(file_id, j) else { continue };
                let Some(c) =
                    an.graph.nodes[caller].calls.iter().find(|c| c.tok == j)
                else {
                    continue;
                };
                let callee = c.callee.as_str();
                let hit = an
                    .graph
                    .resolve_call(caller, c)
                    .into_iter()
                    .find(|&t| !an.graph.nodes[t].is_test && an.blocking_reach().reaches(t));
                let Some(t) = hit else { continue };
                emitted.insert(line);
                let chain = an.graph.chain_names(an.blocking_reach(), t);
                let term_node = an.blocking_reach().chain(t).last().copied().unwrap_or(t);
                let term = an.blocking_terminal(term_node);
                out.push(diag(
                    RULE,
                    file,
                    line,
                    format!(
                        "call to `{callee}` inside the rayon parallel extent \
                         opened by `{opener}` (line {par_line}) blocks \
                         transitively: {chain} ({term}); hoist the blocking \
                         operation out of the parallel closure or annotate with \
                         audit:allow({RULE})"
                    ),
                ));
            }
        }
    }
    out
}

/// Rule `panic-in-drop`: a panic-path site — direct or reachable through
/// the call graph — inside a `Drop::drop` body. A panic that starts
/// while another panic unwinds aborts the process, so destructors must
/// be infallible. Transitive findings name the full call chain and the
/// terminal panic site.
pub fn rule_panic_in_drop(
    file: &SourceFile,
    file_id: usize,
    an: &Analyses,
) -> Vec<Diagnostic> {
    const RULE: &str = "panic-in-drop";
    let mut out = Vec::new();
    for (iid, item) in file.items.iter().enumerate() {
        if !matches!(item.kind, ItemKind::Fn) || item.is_test || item.name != "drop" {
            continue;
        }
        let Some(p) = item.parent else { continue };
        let ItemKind::Impl { ref type_name, ref trait_name, .. } = file.items[p].kind else {
            continue;
        };
        if trait_name != "Drop" {
            continue;
        }
        let Some(node) = an.graph.node_of(file_id, iid) else { continue };
        let n = &an.graph.nodes[node];
        let mut emitted: HashSet<usize> = HashSet::new();
        for site in &n.panics {
            if line_exempt(file, RULE, site.line) || !emitted.insert(site.line) {
                continue;
            }
            out.push(diag(
                RULE,
                file,
                site.line,
                format!(
                    "{} in `Drop for {type_name}`; a panic during unwind aborts \
                     the process — make drop infallible or annotate with \
                     audit:allow({RULE})",
                    site.what
                ),
            ));
        }
        for c in &n.calls {
            if line_exempt(file, RULE, c.line) || emitted.contains(&c.line) {
                continue;
            }
            let hit = an
                .graph
                .resolve_call(node, c)
                .into_iter()
                .find(|&t| !an.graph.nodes[t].is_test && an.panic_reach().reaches(t));
            let Some(t) = hit else { continue };
            emitted.insert(c.line);
            let chain = an.graph.chain_names(an.panic_reach(), t);
            let term_node = an.panic_reach().chain(t).last().copied().unwrap_or(t);
            let term = an.panic_terminal(term_node);
            out.push(diag(
                RULE,
                file,
                c.line,
                format!(
                    "`Drop for {type_name}` calls `{}`, which can panic: {chain} \
                     ({term}); a panic during unwind aborts the process — make \
                     drop infallible or annotate with audit:allow({RULE})",
                    c.callee
                ),
            ));
        }
    }
    out
}

/// Rule `lock-order`, run once over the whole workspace: fold every
/// function's ordered lock-acquisition sequence (named static/field
/// locks only) into a lock graph — edge `A → B` when `B` is acquired
/// (directly or through a call) while `A` is still held, i.e. within the
/// brace scope that contains `A`'s acquisition — and flag every cycle as
/// a deadlock candidate. One diagnostic per cycle, anchored at the
/// witness site of its first edge.
pub fn rule_lock_order(files: &[&SourceFile], an: &Analyses) -> Vec<Diagnostic> {
    const RULE: &str = "lock-order";
    struct EdgeInfo {
        file: usize,
        line: usize,
        desc: String,
    }
    let mut edges: std::collections::BTreeMap<(String, String), EdgeInfo> =
        std::collections::BTreeMap::new();
    for (nid, node) in an.graph.nodes.iter().enumerate() {
        if node.is_test || node.locks.is_empty() {
            continue;
        }
        let file = files[node.file];
        let body_close =
            file.items[node.item].body.map(|(_, c)| c).unwrap_or(file.toks.len());
        for (k, held) in node.locks.iter().enumerate() {
            // The guard lives (at most) to the end of the brace scope
            // containing its acquisition; later acquisitions and calls
            // inside that scope happen while it may still be held.
            let close = scope_close(file, held.tok, body_close);
            for later in node.locks.iter().skip(k + 1) {
                if later.tok >= close || later.lock == held.lock {
                    continue;
                }
                edges.entry((held.lock.clone(), later.lock.clone())).or_insert_with(|| {
                    EdgeInfo {
                        file: node.file,
                        line: later.line,
                        desc: format!(
                            "`{}` then `{}` in `{}`",
                            held.lock, later.lock, node.name
                        ),
                    }
                });
            }
            for c in &node.calls {
                if c.tok <= held.tok || c.tok >= close {
                    continue;
                }
                let targets = an.graph.resolve_call(nid, c);
                if targets.is_empty() {
                    continue;
                }
                for (lname, reach) in an.lock_reach() {
                    if *lname == held.lock {
                        continue;
                    }
                    let hit = targets
                        .iter()
                        .copied()
                        .find(|&t| !an.graph.nodes[t].is_test && reach.reaches(t));
                    let Some(t) = hit else { continue };
                    edges.entry((held.lock.clone(), lname.clone())).or_insert_with(|| {
                        EdgeInfo {
                            file: node.file,
                            line: c.line,
                            desc: format!(
                                "`{}` held in `{}` while {} acquires `{}`",
                                held.lock,
                                node.name,
                                an.graph.chain_names(reach, t),
                                lname
                            ),
                        }
                    });
                }
            }
        }
    }

    // Fold edges into a graph over lock names and report each cycle
    // (strongly connected component with >= 2 locks) once.
    let mut names: Vec<&String> = Vec::new();
    for (a, b) in edges.keys() {
        names.push(a);
        names.push(b);
    }
    names.sort();
    names.dedup();
    let idx_of = |n: &String| names.binary_search(&n).expect("name interned above");
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
    for (a, b) in edges.keys() {
        adj[idx_of(a)].push(idx_of(b));
    }
    let mut out = Vec::new();
    for comp in sccs(&adj) {
        if comp.len() < 2 {
            continue;
        }
        let cycle = shortest_cycle(&adj, &comp);
        let hops: Vec<String> =
            cycle.iter().map(|&n| format!("`{}`", names[n])).collect();
        let mut parts = Vec::new();
        for w in cycle.windows(2) {
            let key = (names[w[0]].clone(), names[w[1]].clone());
            if let Some(info) = edges.get(&key) {
                parts.push(format!(
                    "{} ({}:{})",
                    info.desc, files[info.file].rel, info.line
                ));
            }
        }
        let anchor_key = (names[cycle[0]].clone(), names[cycle[1]].clone());
        let anchor = edges.get(&anchor_key).expect("cycle edges exist");
        let anchor_file = files[anchor.file];
        if line_exempt(anchor_file, RULE, anchor.line) {
            continue;
        }
        out.push(diag(
            RULE,
            anchor_file,
            anchor.line,
            format!(
                "lock-order cycle {} — {}; acquire these locks in one global \
                 order everywhere or annotate with audit:allow({RULE})",
                hops.join(" → "),
                parts.join("; ")
            ),
        ));
    }
    out
}

/// End of the innermost brace scope containing `tok`: the matching `}`
/// of the nearest preceding `{` that spans past `tok`; `fallback` when
/// no such brace exists.
fn scope_close(file: &SourceFile, tok: usize, fallback: usize) -> usize {
    let mut j = tok;
    while j > 0 {
        j -= 1;
        if file.toks[j].kind == TokKind::Open && file.tok_text(j) == "{" {
            let c = file.delims[j];
            if c > tok {
                return c;
            }
        }
    }
    fallback
}

/// Strongly connected components of a small digraph (iterative Kosaraju);
/// each component's node list is sorted.
fn sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, vs) in adj.iter().enumerate() {
        for &v in vs {
            radj[v].push(u);
        }
    }
    // Pass 1: finishing order on the forward graph.
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for s in 0..n {
        if seen[s] {
            continue;
        }
        let mut stack = vec![(s, 0usize)];
        seen[s] = true;
        while let Some(&mut (u, ref mut k)) = stack.last_mut() {
            if *k < adj[u].len() {
                let v = adj[u][*k];
                *k += 1;
                if !seen[v] {
                    seen[v] = true;
                    stack.push((v, 0));
                }
            } else {
                order.push(u);
                stack.pop();
            }
        }
    }
    // Pass 2: components on the reverse graph, in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut out: Vec<Vec<usize>> = Vec::new();
    for &s in order.iter().rev() {
        if comp[s] != usize::MAX {
            continue;
        }
        let c = out.len();
        let mut members = vec![s];
        comp[s] = c;
        let mut stack = vec![s];
        while let Some(u) = stack.pop() {
            for &v in &radj[u] {
                if comp[v] == usize::MAX {
                    comp[v] = c;
                    members.push(v);
                    stack.push(v);
                }
            }
        }
        members.sort_unstable();
        out.push(members);
    }
    out
}

/// A shortest cycle through the smallest node of a strongly connected
/// component, as `[s, ..., s]` (first element repeated at the end).
/// Deterministic: BFS over sorted adjacency restricted to the component.
fn shortest_cycle(adj: &[Vec<usize>], comp: &[usize]) -> Vec<usize> {
    let s = comp[0];
    let in_comp = |v: usize| comp.binary_search(&v).is_ok();
    let mut parent = vec![usize::MAX; adj.len()];
    let mut queue = std::collections::VecDeque::from([s]);
    let mut seen = vec![false; adj.len()];
    seen[s] = true;
    while let Some(u) = queue.pop_front() {
        let mut next: Vec<usize> = adj[u].iter().copied().filter(|&v| in_comp(v)).collect();
        next.sort_unstable();
        for v in next {
            if v == s {
                // Close the cycle: s ... u -> s.
                let mut path = vec![s];
                let mut cur = u;
                let mut tail = Vec::new();
                while cur != usize::MAX && cur != s {
                    tail.push(cur);
                    cur = parent[cur];
                }
                tail.reverse();
                path.extend(tail);
                path.push(s);
                return path;
            }
            if !seen[v] {
                seen[v] = true;
                parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    vec![s, s] // unreachable for a true SCC; degenerate self-loop form
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::build_index;
    use std::path::PathBuf;

    fn prep(src: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from("mem.rs"), "mem.rs".into(), src.to_string())
    }

    #[test]
    fn index_cast_flags_wide_sources_only() {
        let f = prep("let a = (x as u64 * 3) as u32;\nlet b = small_u8 as u32;\nlet c = v.len() as u32;\n");
        let d = rule_index_cast(&f);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn index_cast_allow_marker() {
        let f = prep("// audit:allow(index-cast) — bounded by construction\nlet a = v.len() as u32;\n");
        assert!(rule_index_cast(&f).is_empty());
    }

    #[test]
    fn panic_path_flags_lib_not_tests() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests { fn t() { None::<u8>.unwrap(); } }\n";
        let f = prep(src);
        let d = rule_panic_path(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn panic_macros_are_whole_tokens() {
        let f = prep("my_panic!(x);\nlog_unreachable!(y);\n");
        assert!(rule_panic_path(&f).is_empty());
        let g = prep("panic!(\"boom\");\n");
        assert_eq!(rule_panic_path(&g).len(), 1);
    }

    #[test]
    fn float_eq_needs_float_evidence() {
        let f = prep("if a == b { }\nif x == 0.0 { }\nif (y as f64) != z { }\nif i <= 3.0 { }\n");
        let d = rule_float_eq(&f);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn float_eq_ignores_tuple_indices() {
        // `x.0.1` is a tuple-index chain, not a float literal — the lexer
        // classifies those digits as Int, so no float evidence arises.
        let f = prep("if pair.0.1 == other.0 { }\n");
        assert!(rule_float_eq(&f).is_empty());
    }

    #[test]
    fn instant_timing_flags_wall_clock_calls() {
        let src = "let t0 = Instant::now();\n\
                   let wall = std::time::SystemTime::now();\n\
                   let fine = MyInstant::now();\n\
                   // audit:allow(instant-timing) — sanctioned example\n\
                   let ok = Instant::now();\n\
                   #[cfg(test)]\nmod tests { fn t() { let _ = Instant::now(); } }\n";
        let f = prep(src);
        let d = rule_instant_timing(&f);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![1, 2]);
        assert!(d[0].message.contains("obscor_obs::span"));
    }

    #[test]
    fn key_pack_flags_adhoc_packing_only() {
        let src = "let k = (row as u64) << 32 | col as u64;\n\
                   let ok = u64::from(row) << 32 | u64::from(col);\n\
                   let wide = x as u64 * 2;\n\
                   let big = y as u64 << 320;\n\
                   // audit:allow(key-pack) — fixture\n\
                   let a = (r as u64) << 32;\n\
                   #[cfg(test)]\nmod tests { fn t() { let _ = (1u32 as u64) << 32; } }\n";
        let f = prep(src);
        let d = rule_key_pack(&f);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![1]);
        assert!(d[0].message.contains("keypack::pack_key"));
    }

    #[test]
    fn word_bit_manip_flags_lane_splits_and_masked_popcounts() {
        let src = "words[(key >> 6) as usize] |= 1u64 << (key & 63);\n\
                   let hex = table[(k >> 6) as usize] & 0x3F;\n\
                   let pop = (a & b).count_ones();\n\
                   let shift_alone = key >> 6;\n\
                   let mask_alone = key & 63;\n\
                   let plain_pop = leaves.count_ones();\n\
                   let ref_pop = count(&x, w.count_ones());\n\
                   // audit:allow(word-bit-manip) — fixture\n\
                   let allowed = (a & b).count_ones();\n\
                   #[cfg(test)]\nmod tests { fn t() { let _ = (a & b).count_ones(); } }\n";
        let f = prep(src);
        let d = rule_word_bit_manip(&f);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(d[0].message.contains("assoc::bitset"));
    }

    #[test]
    fn word_bit_manip_exempts_the_bitset_module() {
        let f = SourceFile::from_source(
            PathBuf::from("container.rs"),
            "crates/assoc/src/bitset/container.rs".into(),
            "let w = (a & b).count_ones();\nlet i = (key >> 6) & 63;\n".to_string(),
        );
        assert!(rule_word_bit_manip(&f).is_empty());
    }

    #[test]
    fn int_literal_values_parse_across_radices() {
        for (text, want) in [
            ("63", Some(63)),
            ("63u64", Some(63)),
            ("0x3f", Some(63)),
            ("0x3F", Some(63)),
            ("0b11_1111", Some(63)),
            ("0o77usize", Some(63)),
            ("6", Some(6)),
            ("64", Some(64)),
            ("0x", None),
        ] {
            assert_eq!(int_literal_value(text), want, "{text}");
        }
    }

    #[test]
    fn key_pack_exempts_the_keypack_helper() {
        let f = SourceFile::from_source(
            PathBuf::from("keypack.rs"),
            "crates/hypersparse/src/keypack.rs".into(),
            "let k = (row as u64) << 32 | u64::from(col);\n".to_string(),
        );
        assert!(rule_key_pack(&f).is_empty());
    }

    #[test]
    fn constructors_are_found() {
        let src = "impl<V: Value> Csr<V> {\n\
                       pub fn new(n: usize) -> Self { todo() }\n\
                       pub fn rows(&self) -> usize { 0 }\n\
                       pub(crate) fn internal() -> Self { todo() }\n\
                       pub fn from_coo(c: Coo<V>) -> Csr<V> { todo() }\n\
                   }\n";
        let f = prep(src);
        let ctors = find_constructors(&f);
        let names: Vec<_> = ctors.iter().map(|c| c.fn_name.as_str()).collect();
        assert_eq!(names, vec!["new", "from_coo"]);
        assert!(ctors.iter().all(|c| c.type_name == "Csr"));
    }

    #[test]
    fn invariant_coverage_logic() {
        let lib = prep(
            "impl Csr {\n\
                 pub fn new() -> Self { x }\n\
                 pub fn check_invariants(&self) -> Result<(), String> { Ok(()) }\n\
             }\n\
             impl Naked {\n\
                 pub fn make() -> Self { y }\n\
             }\n",
        );
        let corpus_ok = "let c = Csr::new(); c.check_invariants();";
        let d = rule_invariant_coverage(std::slice::from_ref(&lib), corpus_ok);
        // Csr::new covered; Naked::make lacks check_invariants entirely.
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Naked"));

        let d2 = rule_invariant_coverage(std::slice::from_ref(&lib), "");
        assert_eq!(d2.len(), 2);
    }

    #[test]
    fn atomic_ordering_requires_notes() {
        let src = "fn f(c: &AtomicU64) {\n\
                   c.store(1, Ordering::SeqCst);\n\
                   // ordering: monotonic counter, no reader depends on it\n\
                   c.fetch_add(1, Ordering::Relaxed);\n\
                   // ordering: publishes the buffer; happens-before the consumer load\n\
                   c.store(2, Ordering::Release);\n\
                   // ordering: pairs with the store above\n\
                   let _ = c.load(Ordering::Acquire);\n\
                   // audit:allow(atomic-ordering) — exercised by the gate test\n\
                   c.store(3, Ordering::SeqCst);\n\
                   }\n";
        let f = prep(src);
        let d = rule_atomic_ordering(&f);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![2, 8]);
        assert!(d[0].message.contains("without an `// ordering:`"));
        assert!(d[1].message.contains("happens-before"), "{}", d[1].message);
    }

    #[test]
    fn atomic_ordering_ignores_cmp_ordering() {
        let f = prep("fn f() { let x = Ordering::Less; match y.cmp(&z) { Ordering::Equal => {} _ => {} } }\n");
        assert!(rule_atomic_ordering(&f).is_empty());
    }

    #[test]
    fn shared_static_flags_globals_not_flags() {
        let src = "static HITS: AtomicU64 = AtomicU64::new(0);\n\
                   static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);\n\
                   static TABLE: [u8; 4] = [0, 1, 2, 3];\n\
                   fn f() { static LOCAL: OnceLock<usize> = OnceLock::new(); }\n\
                   // audit:allow(shared-static-mut) — lazily computed constant\n\
                   static OK: Mutex<u32> = Mutex::new(0);\n\
                   static mut RAW: u32 = 0;\n\
                   #[cfg(test)]\nmod tests { static T: AtomicU32 = AtomicU32::new(0); }\n";
        let f = prep(src);
        let d = rule_shared_static_mut(&f);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![1, 4, 7]);
        assert!(d[0].message.contains("AtomicU64"));
        assert!(d[2].message.contains("static mut"));
    }

    #[test]
    fn nonassoc_reduce_flags_float_par_terminals() {
        let src = "fn f(xs: &[f64]) -> f64 {\n\
                   xs.par_iter().map(|x| x * 2.0).sum()\n\
                   }\n";
        let f = prep(src);
        let d = rule_nonassoc_reduce(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("par_iter"));
    }

    #[test]
    fn nonassoc_reduce_ignores_sums_inside_par_closures() {
        // The f64 `.sum()` is sequential, inside a braced closure one brace
        // level below the par_iter chain — per-item work, not a parallel
        // reduction (this is the zipf.rs likelihood-scan shape).
        let src = "fn scan(ts: &[f64], ranks: &[f64]) -> f64 {\n\
                   ts.par_iter()\n\
                       .map(|t| {\n\
                           let ll: f64 = ranks.iter().map(|r| r.ln() * t).sum();\n\
                           ll\n\
                       })\n\
                       .count() as f64\n\
                   }\n";
        let f = prep(src);
        assert!(rule_nonassoc_reduce(&f).is_empty());
    }

    #[test]
    fn nonassoc_reduce_ignores_integer_reductions_and_blessed_fns() {
        let int = prep("fn f(xs: &[u64]) -> u64 { xs.par_iter().sum() }\n");
        assert!(rule_nonassoc_reduce(&int).is_empty());
        let blessed = prep(
            "fn merge_all(xs: &[f64]) -> f64 { xs.par_iter().map(|x| *x).reduce(|| 0.0, |a, b| a + b) }\n",
        );
        assert!(rule_nonassoc_reduce(&blessed).is_empty());
    }

    #[test]
    fn map_iter_order_flags_push_and_passes_btree() {
        let src = "fn f(m: &HashMap<u32, u64>) -> Vec<u32> {\n\
                   let mut v = Vec::new();\n\
                   for (k, _) in m.iter() {\n\
                       v.push(*k);\n\
                   }\n\
                   v\n\
                   }\n\
                   fn g(m: &BTreeMap<u32, u64>) -> Vec<u32> {\n\
                   let mut v = Vec::new();\n\
                   for (k, _) in m.iter() {\n\
                       v.push(*k);\n\
                   }\n\
                   v\n\
                   }\n";
        let f = prep(src);
        let idx = build_index(&[&f]);
        let d = rule_map_iter_order(&f, &idx);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn map_iter_order_chain_collect_and_json_sink() {
        let src = "fn emit(v: u32) -> String { obscor_obs::json::escape(&v.to_string()) }\n\
                   fn f() {\n\
                   let m: HashMap<u32, u64> = HashMap::new();\n\
                   let v: Vec<u32> = m.keys().copied().collect();\n\
                   for k in m.keys() {\n\
                       emit(*k);\n\
                   }\n\
                   let total: u64 = m.values().sum();\n\
                   }\n";
        let f = prep(src);
        let idx = build_index(&[&f]);
        let d = rule_map_iter_order(&f, &idx);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![4, 5]);
        assert!(d[0].message.contains("collect"), "{}", d[0].message);
        assert!(d[1].message.contains("json"), "{}", d[1].message);
    }

    #[test]
    fn map_iter_order_allow_and_test_exempt() {
        let src = "fn f(m: &HashSet<u32>) {\n\
                   // audit:allow(map-iter-order) — output is sorted below\n\
                   for k in m.iter() {\n\
                       out.push(*k);\n\
                   }\n\
                   }\n\
                   #[cfg(test)]\nmod tests {\n\
                   fn t(m: &HashMap<u32, u64>) { for k in m.keys() { v.push(*k); } }\n\
                   }\n";
        let f = prep(src);
        let idx = build_index(&[&f]);
        assert!(rule_map_iter_order(&f, &idx).is_empty());
    }

    fn prep_at(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from(rel), rel.into(), src.to_string())
    }

    fn analyses(files: &[&SourceFile]) -> Analyses {
        Analyses::new(crate::index::build_graph(files))
    }

    #[test]
    fn nondet_reach_crosses_many_hops() {
        let codec = prep_at(
            "crates/obs/src/json.rs",
            "pub fn escape(s: &str) -> String { s.into() }\n",
        );
        let mid = prep_at(
            "crates/a/src/mid.rs",
            "pub fn render(k: u32) -> String { escape(&k.to_string()) }\n\
             pub fn relay(k: u32) -> String { render(k) }\n",
        );
        let far = prep_at(
            "crates/b/src/far.rs",
            "pub fn dump(m: &HashMap<u32, u64>) -> String {\n\
                 let mut s = String::new();\n\
                 for k in m.keys() {\n\
                     s.push_str(&relay(*k));\n\
                 }\n\
                 s\n\
             }\n\
             pub fn local_only(m: &HashMap<u32, u64>) -> usize {\n\
                 let mut n = 0;\n\
                 for _k in m.keys() { n += 1; }\n\
                 n\n\
             }\n",
        );
        let an = analyses(&[&codec, &mid, &far]);
        let d = rule_nondet_reach(&far, 2, &an, "b");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("`dump` → `relay` → `render` → `escape`"), "{}", d[0].message);
        // The one-hop index misses `dump` (three hops out) — the whole
        // point of the full closure.
        let idx = build_index(&[&codec, &mid, &far]);
        assert!(!idx.json_reaching.contains("dump"));
    }

    #[test]
    fn nondet_reach_wall_clock_and_allow() {
        let f = prep_at(
            "crates/a/src/lib.rs",
            "pub fn stamp() -> String { let t = Instant::now(); obscor_obs::json::escape(\"x\") }\n\
             // audit:allow(nondet-reach) — seed for the allow test\n\
             pub fn ok() -> String { let t = Instant::now(); obscor_obs::json::escape(\"x\") }\n",
        );
        let an = analyses(&[&f]);
        let d = rule_nondet_reach(&f, 0, &an, "a");
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![1]);
        assert!(d[0].message.contains("wall-clock"), "{}", d[0].message);
        // The obs crate owns the clock: same shape, no finding.
        let in_obs = rule_nondet_reach(&f, 0, &an, "obs");
        assert!(in_obs.is_empty());
    }

    #[test]
    fn blocking_in_par_direct_and_transitive() {
        let f = prep_at(
            "crates/a/src/lib.rs",
            "pub fn helper(x: u32) -> u32 { let g = lk.lock(); x }\n\
             pub fn par_direct(v: &[u32]) -> Vec<u32> {\n\
                 v.par_iter().map(|x| { let g = m.lock(); *x }).collect()\n\
             }\n\
             pub fn par_transitive(v: &[u32]) -> Vec<u32> {\n\
                 v.par_iter().map(|x| helper(*x)).collect()\n\
             }\n\
             pub fn sequential(v: &[u32]) -> Vec<u32> {\n\
                 v.iter().map(|x| helper(*x)).collect()\n\
             }\n",
        );
        let an = analyses(&[&f]);
        let d = rule_blocking_in_par(&f, 0, &an);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![3, 6]);
        assert!(d[0].message.contains("`.lock()` inside"), "{}", d[0].message);
        assert!(d[1].message.contains("`helper`"), "{}", d[1].message);
        assert!(d[1].message.contains("blocks transitively"), "{}", d[1].message);
    }

    #[test]
    fn blocking_in_par_rayon_scope_extent() {
        let f = prep_at(
            "crates/a/src/lib.rs",
            "pub fn scoped() {\n\
                 rayon::scope(|s| {\n\
                     let g = m.lock();\n\
                 });\n\
                 let after = m.lock();\n\
             }\n",
        );
        let an = analyses(&[&f]);
        let d = rule_blocking_in_par(&f, 0, &an);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn panic_in_drop_direct_and_transitive() {
        let f = prep_at(
            "crates/a/src/lib.rs",
            "pub fn flush(x: Option<u8>) -> u8 { x.unwrap() }\n\
             pub struct A;\n\
             impl Drop for A {\n\
                 fn drop(&mut self) { panic!(\"boom\"); }\n\
             }\n\
             pub struct B;\n\
             impl Drop for B {\n\
                 fn drop(&mut self) { flush(None); }\n\
             }\n\
             pub struct C;\n\
             impl Drop for C {\n\
                 fn drop(&mut self) { let _ = 1 + 1; }\n\
             }\n\
             pub fn not_a_drop() { panic!(\"fine elsewhere\") }\n",
        );
        let an = analyses(&[&f]);
        let d = rule_panic_in_drop(&f, 0, &an);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![4, 8]);
        assert!(d[0].message.contains("`panic!` in `Drop for A`"), "{}", d[0].message);
        assert!(d[1].message.contains("`flush`"), "{}", d[1].message);
        assert!(d[1].message.contains("`unwrap()` at crates/a/src/lib.rs:1"), "{}", d[1].message);
    }

    #[test]
    fn lock_order_cycle_detection() {
        let f = prep_at(
            "crates/a/src/lib.rs",
            "pub fn ab(&self) {\n\
                 let a = self.alpha.lock();\n\
                 let b = self.beta.lock();\n\
             }\n\
             pub fn ba(&self) {\n\
                 let b = self.beta.lock();\n\
                 let a = self.alpha.lock();\n\
             }\n",
        );
        let an = analyses(&[&f]);
        let d = rule_lock_order(&[&f], &an);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("lock-order cycle"), "{}", d[0].message);
        assert!(d[0].message.contains("`alpha` → `beta` → `alpha`"), "{}", d[0].message);
    }

    #[test]
    fn lock_order_consistent_order_is_clean() {
        let f = prep_at(
            "crates/a/src/lib.rs",
            "pub fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
             pub fn also_ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n",
        );
        let an = analyses(&[&f]);
        assert!(rule_lock_order(&[&f], &an).is_empty());
    }

    #[test]
    fn lock_order_sequential_scopes_do_not_edge() {
        // Each guard dies at its block's end before the next acquisition:
        // no hold-while-acquiring, no edge, no cycle.
        let f = prep_at(
            "crates/a/src/lib.rs",
            "pub fn ab(&self) {\n\
                 { let a = self.alpha.lock(); }\n\
                 { let b = self.beta.lock(); }\n\
             }\n\
             pub fn ba(&self) {\n\
                 { let b = self.beta.lock(); }\n\
                 { let a = self.alpha.lock(); }\n\
             }\n",
        );
        let an = analyses(&[&f]);
        assert!(rule_lock_order(&[&f], &an).is_empty());
    }

    #[test]
    fn lock_order_interprocedural_cycle() {
        let f = prep_at(
            "crates/a/src/lib.rs",
            "pub fn take_beta(&self) { let b = self.beta.lock(); }\n\
             pub fn ab(&self) {\n\
                 let a = self.alpha.lock();\n\
                 self.take_beta();\n\
             }\n\
             pub fn ba(&self) {\n\
                 let b = self.beta.lock();\n\
                 let a = self.alpha.lock();\n\
             }\n",
        );
        let an = analyses(&[&f]);
        let d = rule_lock_order(&[&f], &an);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`take_beta`"), "{}", d[0].message);
    }

    #[test]
    fn allow_justification_requires_text() {
        let src = "// audit:allow(panic-path)\nx.unwrap();\n// audit:allow(float-eq) — exact golden comparison\nif a == 1.0 {}\n";
        let f = prep(src);
        let d = rule_allow_justification(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("panic-path"));
    }
}
