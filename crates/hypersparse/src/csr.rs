//! Hypersparse (doubly-compressed) CSR matrices.
//!
//! A conventional CSR stores a row-pointer array of length `n_rows + 1`; with
//! `2^32` possible rows that is 32 GB of pointers for a matrix holding a few
//! hundred thousand sources. The hypersparse variant stores only the
//! *occupied* rows (`row_keys`) next to their pointer ranges, so the total
//! footprint is `O(nnz + occupied_rows)` — the property that lets the paper
//! hold full IPv4 x IPv4 traffic matrices in memory.

use crate::value::Value;
use crate::Index;
use serde::{Deserialize, Serialize};

/// Immutable hypersparse matrix in doubly-compressed sparse row form.
///
/// Invariants (enforced by construction, checked by `debug_assert`s and the
/// property-test suite):
///
/// * `row_keys` is strictly increasing,
/// * `row_ptr.len() == row_keys.len() + 1`, `row_ptr[0] == 0`,
///   `row_ptr[last] == nnz`, and `row_ptr` is non-decreasing with no empty
///   rows,
/// * within each row, `col_keys` is strictly increasing,
/// * no stored value is zero.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Csr<V: Value> {
    row_keys: Vec<Index>,
    row_ptr: Vec<usize>,
    col_keys: Vec<Index>,
    vals: Vec<V>,
}

impl<V: Value> Default for Csr<V> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<V: Value> Csr<V> {
    /// The empty matrix.
    pub fn empty() -> Self {
        Self { row_keys: Vec::new(), row_ptr: vec![0], col_keys: Vec::new(), vals: Vec::new() }
    }

    /// Build from triples that are already sorted by `(row, col)`, contain no
    /// duplicate coordinates, and no zero values. This is the only
    /// constructor; [`crate::Coo`] compaction produces exactly this input.
    pub(crate) fn from_sorted_dedup_triples(triples: Vec<(Index, Index, V)>) -> Self {
        let mut row_keys = Vec::new();
        let mut row_ptr = vec![0usize];
        let mut col_keys = Vec::with_capacity(triples.len());
        let mut vals = Vec::with_capacity(triples.len());
        for (r, c, v) in triples {
            debug_assert!(!v.is_zero());
            match row_keys.last() {
                Some(&last) if last == r => {}
                Some(&last) => {
                    debug_assert!(r > last, "triples must be sorted by row");
                    row_ptr.push(col_keys.len());
                    row_keys.push(r);
                }
                None => row_keys.push(r),
            }
            debug_assert!(
                col_keys.len() + 1 == 1
                    || row_ptr.last().copied() == Some(col_keys.len())
                    || col_keys.last().map(|&lc| lc < c).unwrap_or(true),
                "cols must be strictly increasing within a row"
            );
            col_keys.push(c);
            vals.push(v);
        }
        row_ptr.push(col_keys.len());
        if row_keys.is_empty() {
            return Self::empty();
        }
        Self { row_keys, row_ptr, col_keys, vals }
    }

    /// Build directly from pre-assembled CSR arrays. The radix compaction
    /// kernel ([`crate::radix`]) produces these without ever materializing
    /// a dedup'd triple `Vec`; the caller is responsible for upholding the
    /// type invariants (checked here in debug builds and by the
    /// strict-invariants feature at the compaction boundary).
    pub(crate) fn from_parts(
        row_keys: Vec<Index>,
        row_ptr: Vec<usize>,
        col_keys: Vec<Index>,
        vals: Vec<V>,
    ) -> Self {
        if row_keys.is_empty() {
            return Self::empty();
        }
        let csr = Self { row_keys, row_ptr, col_keys, vals };
        debug_assert!(
            csr.check_invariants().is_ok(),
            "from_parts given invalid CSR arrays: {:?}",
            csr.check_invariants()
        );
        csr
    }

    /// Number of stored (nonzero) entries — the paper's *unique links*.
    pub fn nnz(&self) -> usize {
        self.col_keys.len()
    }

    /// Number of occupied rows — the paper's *unique sources*.
    pub fn n_rows(&self) -> usize {
        self.row_keys.len()
    }

    /// Whether the matrix stores no entries.
    pub fn is_empty(&self) -> bool {
        self.nnz() == 0
    }

    /// The sorted occupied row indices.
    pub fn row_keys(&self) -> &[Index] {
        &self.row_keys
    }

    /// All stored column indices, row-major.
    pub fn col_indices(&self) -> &[Index] {
        &self.col_keys
    }

    /// All stored values, row-major.
    pub fn values(&self) -> &[V] {
        &self.vals
    }

    /// The `(columns, values)` slice pair of the `i`-th occupied row.
    pub fn row_at(&self, i: usize) -> (&[Index], &[V]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_keys[lo..hi], &self.vals[lo..hi])
    }

    /// Look up the row with matrix index `row` (not positional index).
    pub fn row(&self, row: Index) -> Option<(&[Index], &[V])> {
        let i = self.row_keys.binary_search(&row).ok()?;
        Some(self.row_at(i))
    }

    /// Point lookup `A(row, col)`.
    pub fn get(&self, row: Index, col: Index) -> Option<V> {
        let (cols, vals) = self.row(row)?;
        let j = cols.binary_search(&col).ok()?;
        Some(vals[j])
    }

    /// Iterate over `(row, col, value)` in row-major order.
    pub fn iter(&self) -> CsrIter<'_, V> {
        CsrIter { csr: self, row_pos: 0, entry_pos: 0 }
    }

    /// Iterate over `(row_index, cols, vals)` per occupied row.
    pub fn iter_rows(&self) -> impl Iterator<Item = (Index, &[Index], &[V])> + '_ {
        (0..self.n_rows()).map(move |i| {
            let (c, v) = self.row_at(i);
            (self.row_keys[i], c, v)
        })
    }

    /// Transpose, producing a matrix whose rows are this matrix's columns.
    /// Used to compute destination-side quantities (fan-in, destination
    /// packets) with the same row-side kernels.
    pub fn transpose(&self) -> Csr<V> {
        let mut coo = crate::Coo::with_capacity(self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(c, r, v);
        }
        // Already deduplicated: transposing cannot create duplicates.
        coo.into_csr()
    }

    /// Tracked heap footprint in bytes: the length-based size of the four
    /// storage arrays. Capacity slack is deliberately excluded so the
    /// number is a pure function of the matrix contents — the out-of-core
    /// spill scheduler ([`crate::spill`]) uses it for deterministic
    /// live-byte accounting and eviction decisions.
    pub fn heap_bytes(&self) -> u64 {
        let idx = std::mem::size_of::<Index>();
        let ptr = std::mem::size_of::<usize>();
        let val = std::mem::size_of::<V>();
        (self.row_keys.len() * idx
            + self.row_ptr.len() * ptr
            + self.col_keys.len() * idx
            + self.vals.len() * val) as u64
    }

    /// Internal consistency check used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.row_keys.len() + 1 {
            return Err("row_ptr length mismatch".into());
        }
        if self.row_ptr.first().copied() != Some(0)
            || self.row_ptr.last().copied() != Some(self.nnz())
        {
            return Err("row_ptr endpoints wrong".into());
        }
        for w in self.row_keys.windows(2) {
            if w[0] >= w[1] {
                return Err("row_keys not strictly increasing".into());
            }
        }
        for i in 0..self.n_rows() {
            if self.row_ptr[i] >= self.row_ptr[i + 1] {
                return Err(format!("empty row stored at position {i}"));
            }
            let (cols, vals) = self.row_at(i);
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err("col_keys not strictly increasing within row".into());
                }
            }
            if vals.iter().any(|v| v.is_zero()) {
                return Err("explicit zero stored".into());
            }
        }
        if self.col_keys.len() != self.vals.len() {
            return Err("cols/vals length mismatch".into());
        }
        Ok(())
    }
}

/// Row-major entry iterator over a [`Csr`].
pub struct CsrIter<'a, V: Value> {
    csr: &'a Csr<V>,
    row_pos: usize,
    entry_pos: usize,
}

impl<'a, V: Value> Iterator for CsrIter<'a, V> {
    type Item = (Index, Index, V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.entry_pos >= self.csr.nnz() {
            return None;
        }
        while self.entry_pos >= self.csr.row_ptr[self.row_pos + 1] {
            self.row_pos += 1;
        }
        let r = self.csr.row_keys[self.row_pos];
        let c = self.csr.col_keys[self.entry_pos];
        let v = self.csr.vals[self.entry_pos];
        self.entry_pos += 1;
        Some((r, c, v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.csr.nnz() - self.entry_pos;
        (rem, Some(rem))
    }
}

impl<'a, V: Value> ExactSizeIterator for CsrIter<'a, V> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Csr<u64> {
        let mut coo = Coo::new();
        coo.push(10, 1, 1);
        coo.push(10, 5, 2);
        coo.push(3, 7, 4);
        coo.push(u32::MAX, 0, 9);
        coo.into_csr()
    }

    #[test]
    fn invariants_hold() {
        sample().check_invariants().unwrap();
        Csr::<u64>::empty().check_invariants().unwrap();
    }

    #[test]
    fn get_hits_and_misses() {
        let a = sample();
        assert_eq!(a.get(10, 5), Some(2));
        assert_eq!(a.get(3, 7), Some(4));
        assert_eq!(a.get(u32::MAX, 0), Some(9));
        assert_eq!(a.get(10, 2), None);
        assert_eq!(a.get(11, 1), None);
    }

    #[test]
    fn rows_are_sorted_and_accessible() {
        let a = sample();
        assert_eq!(a.row_keys(), &[3, 10, u32::MAX]);
        let (cols, vals) = a.row(10).unwrap();
        assert_eq!(cols, &[1, 5]);
        assert_eq!(vals, &[1, 2]);
        assert!(a.row(4).is_none());
    }

    #[test]
    fn iter_is_row_major_and_exact() {
        let a = sample();
        let entries: Vec<_> = a.iter().collect();
        assert_eq!(
            entries,
            vec![(3, 7, 4), (10, 1, 1), (10, 5, 2), (u32::MAX, 0, 9)]
        );
        assert_eq!(a.iter().len(), 4);
    }

    #[test]
    fn transpose_round_trips() {
        let a = sample();
        let t = a.transpose();
        t.check_invariants().unwrap();
        assert_eq!(t.get(5, 10), Some(2));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn empty_matrix_behaves() {
        let e = Csr::<u64>::empty();
        assert!(e.is_empty());
        assert_eq!(e.iter().count(), 0);
        assert_eq!(e.transpose(), e);
    }

    #[test]
    fn iter_rows_matches_row_at() {
        let a = sample();
        let collected: Vec<Index> = a.iter_rows().map(|(r, _, _)| r).collect();
        assert_eq!(collected, a.row_keys().to_vec());
    }
}
