//! The darknet telescope observatory.
//!
//! Models the CAIDA Telescope: a passive /8 darkspace whose incoming
//! packets — after discarding the small amount of legitimate traffic to
//! its few allocated addresses — are cut into constant-packet windows of
//! `N_V` valid packets and aggregated into CryptoPAN-anonymized
//! hypersparse GraphBLAS traffic matrices (hierarchically, from
//! `2^17`-packet leaves in the paper; scaled leaves here).
//!
//! Because the telescope is a darkspace, only the external → internal
//! quadrant of its traffic matrix is ever populated (Fig 1) — a property
//! the integration tests assert.

pub mod archive;
pub mod capture;
pub mod darkspace;
pub mod faults;
pub mod inventory;
pub mod matrix;
pub mod stream;

pub use archive::{
    archive_window, restore_matrix, DegradedRestore, LeafFault, LeafSource, QuarantinedLeaf,
    RecoveringRestore, RestoreReport, RetryPolicy, WindowArchive,
};
pub use faults::{Fault, FaultKind, FaultPlan, FaultyArchive, FaultyMedium, ALL_FAULT_KINDS};
pub use capture::{
    capture_all_windows, capture_window, capture_window_at, window_traffic_source,
    TelescopeWindow,
};
pub use darkspace::Darkspace;
pub use inventory::{inventory, InventoryRow};
pub use matrix::{
    build_anonymized_matrix, build_anonymized_matrix_memo, build_matrix, build_matrix_spilled,
    build_matrix_spilled_with, build_matrix_with, PAPER_LEAF_COUNT,
};
pub use stream::{DrainReport, IngestConfig, IngestService, WindowSnapshot};
