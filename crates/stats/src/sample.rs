//! O(1) weighted sampling via the alias method.
//!
//! Synthetic packet emission draws the source of every packet from a
//! heavy-tailed intensity vector over hundreds of thousands of sources;
//! Walker/Vose alias tables make each draw two random numbers and one
//! table lookup, independent of population size.

use rand::{Rng, RngExt};

/// A Walker/Vose alias table over indices `0..n` with the given weights.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights (need not be normalized).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/non-finite value,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(weights.len() <= u32::MAX as usize, "population too large");
        let total: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        assert!(total > 0.0, "weights must not all be zero");
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining entries are numerically 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one index with probability proportional to its weight.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Draw `n` indices.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<usize> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 4]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for c in counts {
            let f = c as f64 / 40_000.0;
            assert!((f - 0.25).abs() < 0.02, "frequency {f}");
        }
    }

    #[test]
    fn skewed_weights_match_frequencies() {
        let weights = [8.0, 1.0, 1.0];
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.8).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.1).abs() < 0.01);
    }

    #[test]
    fn zero_weight_categories_never_drawn() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_category() {
        let t = AliasTable::new(&[42.0]);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn heavy_tail_population() {
        // Zipf-ish weights over 10k categories: sampling must stay in range
        // and hit the head most often.
        let weights: Vec<f64> = (1..=10_000).map(|i| 1.0 / (i as f64)).collect();
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(5);
        let draws = t.sample_n(&mut rng, 50_000);
        assert!(draws.iter().all(|&i| i < 10_000));
        let head = draws.iter().filter(|&&i| i == 0).count() as f64 / 50_000.0;
        let expect = 1.0 / (1..=10_000).map(|i| 1.0 / i as f64).sum::<f64>();
        assert!((head - expect).abs() < 0.01, "head {head} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_panics() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }
}
