//! Doc-sync gate: the README rule table is generated-by-hand from the
//! in-engine rule registry, and this test keeps the two from drifting.
//! Every rule in [`xtask::docs::RULE_DOCS`] must appear in the README
//! table exactly once, in registry order, with the registry's `short`
//! text verbatim in the second column — and the table must carry no
//! rules the engine does not have.

use std::path::Path;

/// Parse `| `rule` | short |` rows out of the README's audit table.
fn readme_rows() -> Vec<(String, String)> {
    let readme = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../README.md");
    let text = std::fs::read_to_string(readme).expect("README.md readable");
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("| `") else { continue };
        let Some((name, rest)) = rest.split_once("` | ") else { continue };
        let Some(short) = rest.strip_suffix(" |") else { continue };
        rows.push((name.to_string(), short.to_string()));
    }
    rows
}

#[test]
fn readme_rule_table_matches_the_registry() {
    let rows = readme_rows();
    let docs = xtask::docs::RULE_DOCS;
    assert_eq!(
        rows.len(),
        docs.len(),
        "README table has {} rows, registry has {} rules: {:?}",
        rows.len(),
        docs.len(),
        rows.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>()
    );
    for (row, doc) in rows.iter().zip(docs) {
        assert_eq!(row.0, doc.name, "README row order diverges from the registry");
        assert_eq!(
            row.1, doc.short,
            "README `rejects` text for `{}` diverges from the registry short",
            doc.name
        );
    }
}

#[test]
fn readme_rule_count_word_is_current() {
    let readme = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../README.md");
    let text = std::fs::read_to_string(readme).expect("README.md readable");
    let expected = match xtask::docs::RULE_DOCS.len() {
        16 => "sixteen project rules",
        n => panic!("registry grew to {n} rules — update README prose and this test"),
    };
    assert!(
        text.contains(expected),
        "README prose should say \"{expected}\""
    );
}
