// Seeds a `nonassoc-reduce` violation: a float sum over a rayon parallel
// iterator, whose result depends on work-stealing split points.

pub fn total(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum()
}

pub fn merge_all(xs: &[f64]) -> f64 {
    xs.par_iter().cloned().reduce(|| 0.0, |a, b| a + b)
}

pub fn int_total(xs: &[u64]) -> u64 {
    xs.par_iter().sum()
}

pub fn per_item(xs: &[Vec<f64>]) -> usize {
    xs.par_iter()
        .filter(|v| {
            let s: f64 = v.iter().sum();
            s > 0.5
        })
        .count()
}

#[cfg(test)]
mod tests {
    pub fn exempt(xs: &[f64]) -> f64 {
        xs.par_iter().sum()
    }
}
