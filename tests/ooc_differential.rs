//! Differential tests of the out-of-core window build (DESIGN.md §16).
//!
//! Three independent constructions of the same window matrix are compared
//! for every point of a (window size, leaf capacity, memory budget) grid
//! and under randomized geometry/budget schedules:
//!
//! 1. `accumulate_flat` — the one-shot oracle (sort the whole multiset),
//! 2. `HierarchicalAccumulator` — the in-memory binary-counter fold,
//! 3. `SpillAccumulator` — the budgeted fold, evicting carry-level CSR
//!    parts to the spill medium and reloading them on demand.
//!
//! All three must agree bit for bit (and on every Table II network
//! quantity), including under budgets that force an eviction on every
//! carry and budgets that change mid-stream.

use obscor::hypersparse::hier::{accumulate_flat, HierarchicalAccumulator};
use obscor::hypersparse::reduce::NetworkQuantities;
use obscor::hypersparse::spill::{MemMedium, SpillAccumulator, SpillConfig};
use obscor::hypersparse::Csr;
use proptest::prelude::*;
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::sync::Arc;

/// A deterministic heavy-tailed `(src, dst)` stream: repeated edges
/// exercise dedup at every merge level.
fn pairs(n: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let src: u32 = rng.random_range(0u32..700) * 11 + 3;
            let dst: u32 = rng.random_range(0u32..96) + (44 << 24);
            (src, dst)
        })
        .collect()
}

fn flat(pairs: &[(u32, u32)]) -> Csr<u64> {
    accumulate_flat(pairs.iter().map(|&(s, d)| (s, d, 1u64)))
}

fn in_memory(pairs: &[(u32, u32)], leaf_capacity: usize) -> Csr<u64> {
    let mut acc = HierarchicalAccumulator::<u64>::with_leaf_capacity(leaf_capacity);
    for &(s, d) in pairs {
        acc.push_edge(s, d);
    }
    acc.finalize()
}

/// The spilled build over a [`MemMedium`], returning the matrix and the
/// run's spill statistics.
fn spilled(
    pairs: &[(u32, u32)],
    leaf_capacity: usize,
    budget: Option<u64>,
) -> (Csr<u64>, obscor::hypersparse::SpillReport) {
    let config = SpillConfig { leaf_capacity, memory_budget: budget, ..SpillConfig::default() };
    let mut acc = SpillAccumulator::new(config, Arc::new(MemMedium::new()));
    for &(s, d) in pairs {
        acc.push_edge(s, d);
    }
    acc.finalize()
}

#[test]
fn three_way_differential_over_the_size_leaf_budget_grid() {
    for &n in &[0usize, 1, 100, 1_000, 5_000] {
        let p = pairs(n, 0x0BADCAFE ^ n as u64);
        let oracle = flat(&p);
        let quantities = NetworkQuantities::compute(&oracle);
        for &leaf in &[1usize, 16, 100, 1024] {
            let hier = in_memory(&p, leaf);
            assert_eq!(hier, oracle, "n={n} leaf={leaf}: in-memory fold diverged");
            // Budgets from "evict everything" through "never evict".
            for &budget in &[Some(0u64), Some(1), Some(4 << 10), Some(1 << 20), None] {
                let (m, report) = spilled(&p, leaf, budget);
                assert_eq!(m, oracle, "n={n} leaf={leaf} budget={budget:?}");
                assert!(report.is_exact(), "n={n} leaf={leaf} budget={budget:?}: {report:?}");
                report.check_invariants().unwrap();
                assert_eq!(
                    NetworkQuantities::compute(&m),
                    quantities,
                    "n={n} leaf={leaf} budget={budget:?}: quantities diverged"
                );
            }
        }
    }
}

#[test]
fn zero_budget_forces_eviction_on_every_carry() {
    let p = pairs(4_096, 99);
    let (m, report) = spilled(&p, 64, Some(0));
    assert_eq!(m, flat(&p));
    // 4096 packets / 64-per-leaf = 64 leaves; every carry placement is
    // over budget, so each level-0 part must have been evicted at least
    // once and reloaded for its merge.
    assert_eq!(report.stats.leaves, 64);
    assert!(report.stats.evictions >= 64, "only {} evictions", report.stats.evictions);
    assert!(report.stats.reloads >= 63, "only {} reloads", report.stats.reloads);
    assert_eq!(report.stats.merges(), report.stats.leaves - 1);
}

#[test]
fn mid_stream_budget_changes_preserve_bit_identity() {
    let p = pairs(6_000, 7);
    let oracle = flat(&p);
    // Schedule: unbounded → starved → roomy → starved again, re-imposed
    // at packet-count checkpoints that do not align with leaf boundaries.
    let schedule: &[(usize, Option<u64>)] =
        &[(0, None), (1_234, Some(0)), (3_000, Some(64 << 10)), (5_678, Some(1))];
    let config = SpillConfig { leaf_capacity: 100, memory_budget: None, ..SpillConfig::default() };
    let mut acc = SpillAccumulator::new(config, Arc::new(MemMedium::new()));
    let mut next = 0usize;
    for (i, &(s, d)) in p.iter().enumerate() {
        if next < schedule.len() && schedule[next].0 == i {
            acc.set_budget(schedule[next].1);
            next += 1;
        }
        acc.push_edge(s, d);
    }
    let (m, report) = acc.finalize();
    assert_eq!(m, oracle);
    assert!(report.is_exact(), "{report:?}");
    assert!(report.stats.evictions > 0, "the starved phases must have evicted");
}

#[test]
fn spill_accounting_grid_has_exact_closed_forms() {
    // Structural invariants at every grid point: the carry law bounds the
    // mid-stream merges and the finalize tree always does leaves-1 total.
    for &n in &[1usize, 63, 64, 65, 1_000] {
        for &leaf in &[1usize, 7, 64] {
            let p = pairs(n, 5);
            let (_, report) = spilled(&p, leaf, Some(0));
            let leaves = (n as u64).div_ceil(leaf as u64);
            assert_eq!(report.stats.leaves, leaves, "n={n} leaf={leaf}");
            assert_eq!(
                report.stats.merges(),
                leaves.saturating_sub(1),
                "n={n} leaf={leaf}: pairwise tree over L parts must do L-1 merges"
            );
            assert_eq!(report.packets_expected, n as u64);
            assert_eq!(report.packets_restored, n as u64);
        }
    }
}

proptest! {
    /// Random (window size, leaf capacity, budget) triples: the spilled
    /// build equals the in-memory build equals the flat oracle, on both
    /// raw matrix bytes and every derived network quantity.
    #[test]
    fn random_geometry_is_bit_identical_across_all_three_builds(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(0usize..4_000);
        let leaf = rng.random_range(1usize..=512);
        let budget = match rng.random_range(0u32..4) {
            0 => None,
            1 => Some(0u64),
            2 => Some(rng.random_range(0u64..4096)),
            _ => Some(rng.random_range(0u64..(4 << 20))),
        };
        let p = pairs(n, seed ^ 0xD1FF_0E4E);
        let oracle = flat(&p);
        let hier = in_memory(&p, leaf);
        let (m, report) = spilled(&p, leaf, budget);
        prop_assert_eq!(&hier, &oracle);
        prop_assert_eq!(&m, &oracle);
        prop_assert!(report.is_exact());
        prop_assert_eq!(
            NetworkQuantities::compute(&m),
            NetworkQuantities::compute(&oracle)
        );
    }

    /// Random budget *schedules*: the budget may change (or vanish) at any
    /// point in the stream without perturbing a single output bit.
    #[test]
    fn random_budget_schedules_preserve_bit_identity(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(1usize..3_000);
        let leaf = rng.random_range(1usize..=256);
        let p = pairs(n, seed.rotate_left(17));
        let config = SpillConfig {
            leaf_capacity: leaf,
            memory_budget: Some(rng.random_range(0u64..1024)),
            ..SpillConfig::default()
        };
        let mut acc = SpillAccumulator::new(config, Arc::new(MemMedium::new()));
        for &(s, d) in &p {
            if rng.random_range(0u32..100) == 0 {
                let next = match rng.random_range(0u32..3) {
                    0 => None,
                    1 => Some(0u64),
                    _ => Some(rng.random_range(0u64..(1 << 20))),
                };
                acc.set_budget(next);
            }
            acc.push_edge(s, d);
        }
        let (m, report) = acc.finalize();
        prop_assert_eq!(&m, &flat(&p));
        prop_assert!(report.is_exact());
    }
}
