//! Fig 6: the full grid of temporal correlation curves (5 windows × all
//! populated degree bins) with modified-Cauchy fits.

use criterion::{criterion_group, criterion_main, Criterion};
use obscor_bench::{bench_nv, fixture};
use obscor_core::fitscan::fit_curves;
use obscor_core::temporal::temporal_curves;
use obscor_core::AnalysisConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(bench_nv(), 42);
    let config = AnalysisConfig::default();
    let curves: Vec<_> = f
        .degrees
        .iter()
        .flat_map(|wd| temporal_curves(wd, &f.monthly_sources, config.min_bin_sources))
        .collect();
    let fits = fit_curves(&curves, &config);

    eprintln!("\n=== FIG 6 (regenerated: {} curves) ===", curves.len());
    eprintln!("window                bin     sources  alpha  beta  drop");
    for fit in &fits {
        eprintln!(
            "{:<21} d=2^{:<3} {:>7} {:>6.2} {:>5.2} {:>5.2}",
            fit.window_label,
            fit.bin,
            fit.n_sources,
            fit.modified_cauchy.alpha,
            fit.modified_cauchy.beta,
            fit.one_month_drop()
        );
    }

    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("all_temporal_curves", |b| {
        b.iter(|| {
            let cs: Vec<_> = f
                .degrees
                .iter()
                .flat_map(|wd| temporal_curves(wd, &f.monthly_sources, config.min_bin_sources))
                .collect();
            black_box(cs)
        })
    });
    g.bench_function("fit_all_curves", |b| b.iter(|| black_box(fit_curves(&curves, &config))));

    // Ablation: the same curves via the D4M-style co-occurrence product
    // (one SpGEMM per window) instead of per-bin key-set intersections.
    use obscor_core::algebra::temporal_curves_algebraic;
    let algebraic: Vec<_> = f
        .degrees
        .iter()
        .flat_map(|wd| temporal_curves_algebraic(wd, &f.monthly_sources, config.min_bin_sources))
        .collect();
    assert_eq!(algebraic, curves, "algebraic path must agree exactly");
    g.bench_function("all_temporal_curves_algebraic", |b| {
        b.iter(|| {
            let cs: Vec<_> = f
                .degrees
                .iter()
                .flat_map(|wd| {
                    temporal_curves_algebraic(wd, &f.monthly_sources, config.min_bin_sources)
                })
                .collect();
            black_box(cs)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
