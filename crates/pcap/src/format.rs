//! libpcap-compatible capture codec.
//!
//! Captures are written in the classic libpcap file format (magic
//! `0xA1B2C3D4`, microsecond timestamps, LINKTYPE_ETHERNET): each record is
//! a synthesized Ethernet II frame carrying an IPv4 header with a correct
//! header checksum and a minimal TCP/UDP/ICMP header with a correct
//! transport checksum over the IPv4 pseudo-header. Files written here open
//! in stock tcpdump/wireshark; the reader recovers the [`Packet`] records
//! and verifies both checksums.

use crate::packet::{Ip4, Packet, Protocol};
use bytes::{Buf, BufMut};

/// libpcap magic, microsecond resolution, writer-native byte order.
pub const PCAP_MAGIC: u32 = 0xA1B2_C3D4;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;
const GLOBAL_HEADER_LEN: usize = 24;
const RECORD_HEADER_LEN: usize = 16;
const ETH_HEADER_LEN: usize = 14;
const IPV4_HEADER_LEN: usize = 20;

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcapError {
    /// Input ended before the declared structure.
    Truncated,
    /// Global header magic not recognized.
    BadMagic(u32),
    /// Unsupported link type (only Ethernet is produced/consumed).
    BadLinkType(u32),
    /// A frame could not be parsed back into a [`Packet`].
    BadFrame(&'static str),
    /// IPv4 or transport checksum mismatch.
    BadChecksum(&'static str),
}

impl PcapError {
    /// Classify for the workspace fault taxonomy (shared with the
    /// hypersparse leaf codec): a truncated capture is a *transient*
    /// fault — a short read that may succeed when repeated — while bad
    /// magic, an unsupported link type, a malformed frame, or a checksum
    /// mismatch mean the bytes themselves are wrong (*permanent*).
    pub fn class(&self) -> obscor_obs::FaultClass {
        match self {
            PcapError::Truncated => obscor_obs::FaultClass::Transient,
            _ => obscor_obs::FaultClass::Permanent,
        }
    }
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Truncated => write!(f, "truncated capture"),
            PcapError::BadMagic(m) => write!(f, "unrecognized pcap magic {m:#010x}"),
            PcapError::BadLinkType(l) => write!(f, "unsupported link type {l}"),
            PcapError::BadFrame(w) => write!(f, "malformed frame: {w}"),
            PcapError::BadChecksum(w) => write!(f, "checksum mismatch: {w}"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Internet checksum (RFC 1071) over a byte slice.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for ch in &mut chunks {
        sum += u32::from(u16::from_be_bytes([ch[0], ch[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

fn transport_header(p: &Packet) -> Vec<u8> {
    match p.proto {
        Protocol::Tcp => {
            let mut h = vec![0u8; 20];
            h[0..2].copy_from_slice(&p.src_port.to_be_bytes());
            h[2..4].copy_from_slice(&p.dst_port.to_be_bytes());
            h[12] = 5 << 4; // data offset: 5 words
            h[13] = 0x02; // SYN — darkspace traffic is mostly scans
            h[14..16].copy_from_slice(&1024u16.to_be_bytes()); // window
            h
        }
        Protocol::Udp => {
            let mut h = vec![0u8; 8];
            h[0..2].copy_from_slice(&p.src_port.to_be_bytes());
            h[2..4].copy_from_slice(&p.dst_port.to_be_bytes());
            h[4..6].copy_from_slice(&8u16.to_be_bytes()); // length: header only
            h
        }
        Protocol::Icmp => {
            let mut h = vec![0u8; 8];
            h[0] = 8; // echo request
            h
        }
        Protocol::Other(_) => Vec::new(),
    }
}

fn fill_transport_checksum(p: &Packet, hdr: &mut [u8]) {
    let (off, covers_pseudo) = match p.proto {
        Protocol::Tcp => (16usize, true),
        Protocol::Udp => (6usize, true),
        Protocol::Icmp => (2usize, false),
        Protocol::Other(_) => return,
    };
    hdr[off] = 0;
    hdr[off + 1] = 0;
    let sum = if covers_pseudo {
        let mut pseudo = Vec::with_capacity(12 + hdr.len());
        pseudo.extend_from_slice(&p.src.octets());
        pseudo.extend_from_slice(&p.dst.octets());
        pseudo.push(0);
        pseudo.push(p.proto.number());
        pseudo.extend_from_slice(&(hdr.len() as u16).to_be_bytes());
        pseudo.extend_from_slice(hdr);
        internet_checksum(&pseudo)
    } else {
        internet_checksum(hdr)
    };
    // UDP transmits an all-zero checksum as 0xFFFF (0 means "none").
    let sum = if matches!(p.proto, Protocol::Udp) && sum == 0 { 0xFFFF } else { sum };
    hdr[off..off + 2].copy_from_slice(&sum.to_be_bytes());
}

/// Serialize one packet as an Ethernet II + IPv4 + transport frame.
pub fn synthesize_frame(p: &Packet) -> Vec<u8> {
    let mut transport = transport_header(p);
    fill_transport_checksum(p, &mut transport);
    let total_len = (IPV4_HEADER_LEN + transport.len()) as u16;

    let mut frame = Vec::with_capacity(ETH_HEADER_LEN + total_len as usize);
    // Ethernet II: synthetic locally-administered MACs, EtherType IPv4.
    frame.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x01]);
    frame.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x02]);
    frame.extend_from_slice(&0x0800u16.to_be_bytes());
    // IPv4 header.
    let mut ip = [0u8; IPV4_HEADER_LEN];
    ip[0] = 0x45; // version 4, IHL 5
    ip[2..4].copy_from_slice(&total_len.to_be_bytes());
    ip[8] = 64; // TTL
    ip[9] = p.proto.number();
    ip[12..16].copy_from_slice(&p.src.octets());
    ip[16..20].copy_from_slice(&p.dst.octets());
    let csum = internet_checksum(&ip);
    ip[10..12].copy_from_slice(&csum.to_be_bytes());
    frame.extend_from_slice(&ip);
    frame.extend_from_slice(&transport);
    frame
}

/// Parse a synthesized frame back into a [`Packet`], verifying checksums.
pub fn parse_frame(frame: &[u8], ts_micros: u64, orig_len: u16) -> Result<Packet, PcapError> {
    if frame.len() < ETH_HEADER_LEN + IPV4_HEADER_LEN {
        return Err(PcapError::BadFrame("short frame"));
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != 0x0800 {
        return Err(PcapError::BadFrame("not IPv4"));
    }
    let ip = &frame[ETH_HEADER_LEN..];
    if ip[0] != 0x45 {
        return Err(PcapError::BadFrame("unexpected IPv4 IHL/version"));
    }
    if internet_checksum(&ip[..IPV4_HEADER_LEN]) != 0 {
        return Err(PcapError::BadChecksum("ipv4 header"));
    }
    let proto = Protocol::from_number(ip[9]);
    let src = Ip4(u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]));
    let dst = Ip4(u32::from_be_bytes([ip[16], ip[17], ip[18], ip[19]]));
    let transport = &ip[IPV4_HEADER_LEN..];
    let (src_port, dst_port) = match proto {
        Protocol::Tcp | Protocol::Udp => {
            if transport.len() < 8 {
                return Err(PcapError::BadFrame("short transport header"));
            }
            verify_transport_checksum(src, dst, proto, transport)?;
            (
                u16::from_be_bytes([transport[0], transport[1]]),
                u16::from_be_bytes([transport[2], transport[3]]),
            )
        }
        Protocol::Icmp => {
            if transport.len() < 8 {
                return Err(PcapError::BadFrame("short icmp header"));
            }
            if internet_checksum(transport) != 0 {
                return Err(PcapError::BadChecksum("icmp"));
            }
            (0, 0)
        }
        Protocol::Other(_) => (0, 0),
    };
    Ok(Packet { ts_micros, src, dst, proto, src_port, dst_port, length: orig_len })
}

fn verify_transport_checksum(
    src: Ip4,
    dst: Ip4,
    proto: Protocol,
    transport: &[u8],
) -> Result<(), PcapError> {
    let mut pseudo = Vec::with_capacity(12 + transport.len());
    pseudo.extend_from_slice(&src.octets());
    pseudo.extend_from_slice(&dst.octets());
    pseudo.push(0);
    pseudo.push(proto.number());
    pseudo.extend_from_slice(&(transport.len() as u16).to_be_bytes());
    pseudo.extend_from_slice(transport);
    if internet_checksum(&pseudo) != 0 {
        return Err(PcapError::BadChecksum(match proto {
            Protocol::Tcp => "tcp",
            _ => "udp",
        }));
    }
    Ok(())
}

/// Streaming libpcap writer targeting an in-memory buffer.
pub struct PcapWriter {
    buf: Vec<u8>,
    records: u64,
}

impl PcapWriter {
    /// Start a capture: writes the 24-byte global header.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.put_u32_le(PCAP_MAGIC);
        buf.put_u16_le(2); // version major
        buf.put_u16_le(4); // version minor
        buf.put_i32_le(0); // thiszone
        buf.put_u32_le(0); // sigfigs
        buf.put_u32_le(65_535); // snaplen
        buf.put_u32_le(LINKTYPE_ETHERNET);
        Self { buf, records: 0 }
    }

    /// Append one packet record.
    pub fn write_packet(&mut self, p: &Packet) {
        let frame = synthesize_frame(p);
        self.buf.put_u32_le((p.ts_micros / 1_000_000) as u32);
        self.buf.put_u32_le((p.ts_micros % 1_000_000) as u32);
        // audit:allow(index-cast) — synthesized frames are MTU-bounded, far below u32::MAX
        self.buf.put_u32_le(frame.len() as u32);
        // orig_len: at least the frame we synthesized; the Packet's wire
        // length if it claims more.
        // audit:allow(index-cast) — same MTU-bounded frame length as above
        self.buf.put_u32_le(u32::from(p.length).max(frame.len() as u32));
        self.buf.extend_from_slice(&frame);
        self.records += 1;
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Finish and take the capture bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for PcapWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Streaming libpcap reader over a byte slice.
pub struct PcapReader<'a> {
    rest: &'a [u8],
}

impl<'a> PcapReader<'a> {
    /// Validate the global header and position at the first record.
    pub fn new(bytes: &'a [u8]) -> Result<Self, PcapError> {
        if bytes.len() < GLOBAL_HEADER_LEN {
            return Err(PcapError::Truncated);
        }
        let mut hdr = &bytes[..GLOBAL_HEADER_LEN];
        let magic = hdr.get_u32_le();
        if magic != PCAP_MAGIC {
            return Err(PcapError::BadMagic(magic));
        }
        hdr.advance(12); // version, thiszone, sigfigs
        hdr.advance(4); // snaplen
        let linktype = hdr.get_u32_le();
        if linktype != LINKTYPE_ETHERNET {
            return Err(PcapError::BadLinkType(linktype));
        }
        Ok(Self { rest: &bytes[GLOBAL_HEADER_LEN..] })
    }

    /// Read every remaining packet.
    pub fn read_all(mut self) -> Result<Vec<Packet>, PcapError> {
        let mut out = Vec::new();
        while let Some(p) = self.next_packet()? {
            out.push(p);
        }
        Ok(out)
    }

    /// Read the next record, or `None` at clean end-of-stream.
    pub fn next_packet(&mut self) -> Result<Option<Packet>, PcapError> {
        if self.rest.is_empty() {
            return Ok(None);
        }
        if self.rest.len() < RECORD_HEADER_LEN {
            return Err(PcapError::Truncated);
        }
        let mut hdr = &self.rest[..RECORD_HEADER_LEN];
        let ts_sec = hdr.get_u32_le() as u64;
        let ts_usec = hdr.get_u32_le() as u64;
        let incl_len = hdr.get_u32_le() as usize;
        let orig_len = hdr.get_u32_le();
        if self.rest.len() < RECORD_HEADER_LEN + incl_len {
            return Err(PcapError::Truncated);
        }
        let frame = &self.rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + incl_len];
        self.rest = &self.rest[RECORD_HEADER_LEN + incl_len..];
        let p = parse_frame(frame, ts_sec * 1_000_000 + ts_usec, orig_len.min(65_535) as u16)?;
        Ok(Some(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packets() -> Vec<Packet> {
        vec![
            Packet::tcp(1_600_000_000_000_000, Ip4(16843009), Ip4(0x2C000001), 44321, 443),
            Packet::udp(1_600_000_000_000_500, Ip4(0x08080808), Ip4(0x2C00FFFF), 53, 53),
            Packet {
                ts_micros: 1_600_000_001_000_000,
                src: Ip4(0x0A000001),
                dst: Ip4(0x2C000002),
                proto: Protocol::Icmp,
                src_port: 0,
                dst_port: 0,
                length: 28,
            },
        ]
    }

    #[test]
    fn write_read_round_trip() {
        let pkts = sample_packets();
        let mut w = PcapWriter::new();
        for p in &pkts {
            w.write_packet(p);
        }
        assert_eq!(w.records(), 3);
        let bytes = w.into_bytes();
        let back = PcapReader::new(&bytes).unwrap().read_all().unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in pkts.iter().zip(&back) {
            assert_eq!(a.ts_micros, b.ts_micros);
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.proto, b.proto);
            assert_eq!(a.src_port, b.src_port);
            assert_eq!(a.dst_port, b.dst_port);
        }
    }

    #[test]
    fn fault_class_splits_truncation_from_corruption() {
        use obscor_obs::FaultClass;
        // Truncation can heal on a re-read of a fuller stream; everything
        // else is structural damage that retrying cannot fix.
        assert_eq!(PcapError::Truncated.class(), FaultClass::Transient);
        for permanent in [
            PcapError::BadMagic(0xdeadbeef),
            PcapError::BadLinkType(42),
            PcapError::BadFrame("short frame"),
            PcapError::BadChecksum("tcp"),
        ] {
            assert_eq!(permanent.class(), FaultClass::Permanent, "{permanent}");
        }
    }

    #[test]
    fn checksum_rfc1071_known_value() {
        // Classic RFC 1071 worked example.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    #[test]
    fn checksum_odd_length() {
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00u16);
    }

    #[test]
    fn ipv4_header_checksum_validates() {
        let p = sample_packets()[0];
        let frame = synthesize_frame(&p);
        let ip = &frame[14..34];
        assert_eq!(internet_checksum(ip), 0);
    }

    #[test]
    fn corrupted_ip_checksum_detected() {
        let p = sample_packets()[0];
        let mut frame = synthesize_frame(&p);
        frame[14 + 12] ^= 0x01; // flip a bit in the source address
        let err = parse_frame(&frame, 0, 64).unwrap_err();
        assert_eq!(err, PcapError::BadChecksum("ipv4 header"));
    }

    #[test]
    fn corrupted_tcp_checksum_detected() {
        let p = sample_packets()[0];
        let mut frame = synthesize_frame(&p);
        let tcp_port_off = 14 + 20;
        frame[tcp_port_off] ^= 0x01;
        // Fix the IP header? Ports are not covered by the IP checksum, so
        // only the TCP checksum fails.
        let err = parse_frame(&frame, 0, 64).unwrap_err();
        assert_eq!(err, PcapError::BadChecksum("tcp"));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = {
            let mut w = PcapWriter::new();
            w.write_packet(&sample_packets()[0]);
            w.into_bytes()
        };
        bytes[0] ^= 0xFF;
        assert!(matches!(PcapReader::new(&bytes), Err(PcapError::BadMagic(_))));
    }

    #[test]
    fn truncated_record_rejected() {
        let bytes = {
            let mut w = PcapWriter::new();
            w.write_packet(&sample_packets()[0]);
            w.into_bytes()
        };
        let cut = &bytes[..bytes.len() - 5];
        let mut r = PcapReader::new(cut).unwrap();
        assert_eq!(r.next_packet(), Err(PcapError::Truncated));
    }

    #[test]
    fn empty_capture_is_ok() {
        let bytes = PcapWriter::new().into_bytes();
        assert_eq!(PcapReader::new(&bytes).unwrap().read_all().unwrap(), vec![]);
    }

    #[test]
    fn udp_frame_carries_correct_length_field() {
        let p = sample_packets()[1];
        let frame = synthesize_frame(&p);
        let udp = &frame[34..42];
        assert_eq!(u16::from_be_bytes([udp[4], udp[5]]), 8);
    }
}
