// Seeds an `allow-justification` violation: a suppression marker with no
// trailing justification defeats the point of per-site allows.

pub fn suppressed_without_reason() -> u32 {
    // audit:allow(index-cast)
    0
}

pub fn suppressed_with_reason(x: u64) -> u32 {
    // audit:allow(index-cast) — fixture: bounded by construction
    (x & 0xffff) as u32
}
