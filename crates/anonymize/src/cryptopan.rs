//! CryptoPAN prefix-preserving anonymization.
//!
//! The construction of Fan, Xu, Ammar & Moon: the anonymized address is
//! `addr XOR otp`, where bit `i` of the one-time pad is a pseudo-random
//! function of the *first `i` bits* of the address. Because bit `i` of the
//! output depends only on bits `0..=i` of the input, the map preserves
//! prefixes: inputs agreeing on their first `k` bits produce outputs
//! agreeing on their first `k` bits (and is a bijection, since bit `i` of
//! the output differs whenever bit `i` of the input differs under the same
//! prefix).

use crate::aes::Aes128;

/// A keyed prefix-preserving anonymizer for IPv4 addresses.
pub struct CryptoPan {
    aes: Aes128,
    /// The encrypted padding block used to fill the unknown low bits.
    pad: [u8; 16],
}

impl CryptoPan {
    /// Initialize from a 32-byte key: the first 16 bytes key the AES PRF,
    /// the second 16 bytes form the padding block (as in the reference
    /// implementation).
    pub fn new(key: &[u8; 32]) -> Self {
        // audit:allow(panic-path) — halving a fixed [u8; 32] key: infallible by construction
        let aes = Aes128::new(key[..16].try_into().expect("16-byte AES key"));
        // audit:allow(panic-path) — same fixed-size split as above
        let mut pad: [u8; 16] = key[16..].try_into().expect("16-byte pad");
        aes.encrypt_block(&mut pad);
        Self { aes, pad }
    }

    /// Compute the one-time pad for `addr`: bit `i` (from the MSB) depends
    /// only on the first `i` bits of `addr`.
    fn one_time_pad(&self, addr: u32) -> u32 {
        let pad_u32 = u32::from_be_bytes([self.pad[0], self.pad[1], self.pad[2], self.pad[3]]);
        let mut otp = 0u32;
        let mut block = [0u8; 16];
        block[4..].copy_from_slice(&self.pad[4..]);
        for pos in 0..32 {
            // First `pos` bits from the address, remaining bits from the pad.
            let mask = if pos == 0 { 0u32 } else { u32::MAX << (32 - pos) };
            let input = (addr & mask) | (pad_u32 & !mask);
            block[..4].copy_from_slice(&input.to_be_bytes());
            let out = self.aes.encrypt(&block);
            otp = (otp << 1) | u32::from(out[0] >> 7);
        }
        otp
    }

    /// One pad bit in isolation: the bit at position `pos` (MSB-first) of
    /// the one-time pad, which by construction depends only on the first
    /// `pos` bits of `addr`. This is exactly one iteration of
    /// [`Self::one_time_pad`]; the memoized anonymizer
    /// ([`crate::memo::MemoCryptoPan`]) uses it to precompute the prefix
    /// subtree and to fill in suffix bits, guaranteeing bit-identical
    /// output by sharing the block construction.
    pub(crate) fn pad_bit(&self, addr: u32, pos: u32) -> u32 {
        let pad_u32 = u32::from_be_bytes([self.pad[0], self.pad[1], self.pad[2], self.pad[3]]);
        let mask = if pos == 0 { 0u32 } else { u32::MAX << (32 - pos) };
        let input = (addr & mask) | (pad_u32 & !mask);
        let mut block = [0u8; 16];
        block[4..].copy_from_slice(&self.pad[4..]);
        block[..4].copy_from_slice(&input.to_be_bytes());
        let out = self.aes.encrypt(&block);
        u32::from(out[0] >> 7)
    }

    /// Anonymize one address.
    ///
    /// With the `strict-invariants` feature enabled, every call verifies
    /// its own inverse (the defining prefix-preserving bijection survives
    /// round-tripping) at roughly 2× cost.
    pub fn anonymize(&self, addr: u32) -> u32 {
        let anon = addr ^ self.one_time_pad(addr);
        #[cfg(feature = "strict-invariants")]
        {
            if self.deanonymize(anon) != addr {
                // audit:allow(panic-path) — strict-invariants mode aborts on a broken bijection by contract
                panic!("CryptoPAn round-trip failed for {addr:#010x}");
            }
        }
        anon
    }

    /// Invert the anonymization bit-sequentially: since pad bit `i`
    /// depends only on *real* bits `0..i`, the real address can be
    /// recovered MSB-first.
    pub fn deanonymize(&self, anon: u32) -> u32 {
        let pad_u32 = u32::from_be_bytes([self.pad[0], self.pad[1], self.pad[2], self.pad[3]]);
        let mut real = 0u32;
        let mut block = [0u8; 16];
        block[4..].copy_from_slice(&self.pad[4..]);
        for pos in 0..32 {
            let mask = if pos == 0 { 0u32 } else { u32::MAX << (32 - pos) };
            let input = (real & mask) | (pad_u32 & !mask);
            block[..4].copy_from_slice(&input.to_be_bytes());
            let out = self.aes.encrypt(&block);
            let pad_bit = u32::from(out[0] >> 7);
            let anon_bit = (anon >> (31 - pos)) & 1;
            let real_bit = anon_bit ^ pad_bit;
            real |= real_bit << (31 - pos);
        }
        real
    }

    /// Anonymize a batch in place.
    pub fn anonymize_slice(&self, addrs: &mut [u32]) {
        for a in addrs.iter_mut() {
            *a = self.anonymize(*a);
        }
    }
}

/// Length of the common prefix of two addresses, in bits.
pub fn common_prefix_len(a: u32, b: u32) -> u32 {
    (a ^ b).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(seed: u8) -> CryptoPan {
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = seed.wrapping_mul(31).wrapping_add(i as u8);
        }
        CryptoPan::new(&key)
    }

    #[test]
    fn anonymize_deanonymize_round_trip() {
        let c = cp(1);
        for addr in [0u32, 1, 0xC0A80001, 0x0A000001, u32::MAX, 16843009] {
            assert_eq!(c.deanonymize(c.anonymize(addr)), addr);
        }
    }

    #[test]
    fn prefix_preservation_exact() {
        let c = cp(2);
        let pairs = [
            (0x0A010203u32, 0x0A010999u32), // same /16
            (0x0A010203, 0x0A010204),       // same /30
            (0x0A010203, 0xC0000001),       // differ at bit 0
            (0x80000000, 0x80000001),       // same /31
        ];
        for (a, b) in pairs {
            let k = common_prefix_len(a, b);
            let (ea, eb) = (c.anonymize(a), c.anonymize(b));
            assert_eq!(
                common_prefix_len(ea, eb),
                k,
                "common prefix must be exactly preserved for {a:#x},{b:#x}"
            );
        }
    }

    #[test]
    fn is_injective_on_a_sample() {
        let c = cp(3);
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u32 {
            let addr = i.wrapping_mul(0x9E3779B9);
            assert!(seen.insert(c.anonymize(addr)), "collision at input {addr:#x}");
        }
    }

    #[test]
    fn different_keys_give_different_maps() {
        let (c1, c2) = (cp(4), cp(5));
        let addr = 0x08080808;
        assert_ne!(c1.anonymize(addr), c2.anonymize(addr));
    }

    #[test]
    fn anonymize_slice_matches_scalar() {
        let c = cp(6);
        let mut v = vec![1u32, 2, 3, 0xFFFF0000];
        let expect: Vec<u32> = v.iter().map(|&a| c.anonymize(a)).collect();
        c.anonymize_slice(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn anonymization_actually_changes_addresses() {
        let c = cp(7);
        let changed = (0..256u32).filter(|&a| c.anonymize(a << 24) != a << 24).count();
        assert!(changed > 250, "only {changed}/256 first-octets changed");
    }

    #[test]
    fn common_prefix_len_basics() {
        assert_eq!(common_prefix_len(0, 0), 32);
        assert_eq!(common_prefix_len(0, 1), 31);
        assert_eq!(common_prefix_len(0, 0x80000000), 0);
        assert_eq!(common_prefix_len(0xFF00FF00, 0xFF00FF00), 32);
    }
}
