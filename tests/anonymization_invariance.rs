//! Integration: anonymization changes nothing the analysis measures.
//!
//! Table II's claim — "these formulas are unaffected by matrix
//! permutations and will work on anonymized data" — checked end to end on
//! captured telescope windows, plus the trusted-sharing guarantee that
//! cross-observatory overlap survives every workflow.

use obscor::anonymize::sharing::{raw_overlap, Holder};
use obscor::anonymize::CryptoPan;
use obscor::hypersparse::reduce::{self, NetworkQuantities};
use obscor::netmodel::Scenario;
use obscor::stats::binning::differential_cumulative;
use obscor::stats::DegreeHistogram;
use obscor::telescope::{capture_window, matrix};
use std::sync::OnceLock;

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::paper_scaled(1 << 14, 808))
}

#[test]
fn every_table2_quantity_survives_anonymization() {
    let s = scenario();
    let w = capture_window(s, &s.caida_windows[0]);
    let raw = matrix::build_matrix(&w);
    let cp = CryptoPan::new(&[0x11u8; 32]);
    let anon = matrix::build_anonymized_matrix(&w, &cp);
    assert_eq!(
        NetworkQuantities::compute(&raw),
        NetworkQuantities::compute(&anon)
    );
}

#[test]
fn degree_distribution_survives_anonymization() {
    let s = scenario();
    let w = capture_window(s, &s.caida_windows[1]);
    let cp = CryptoPan::new(&[0x22u8; 32]);
    let raw = matrix::build_matrix(&w);
    let anon = matrix::build_anonymized_matrix(&w, &cp);
    let hist = |m: &obscor::hypersparse::Csr<u64>| {
        DegreeHistogram::from_degrees(reduce::source_packets(m).into_iter().map(|(_, d)| d))
    };
    let (h_raw, h_anon) = (hist(&raw), hist(&anon));
    assert_eq!(h_raw, h_anon, "histograms must be identical");
    // And therefore the Fig 3 curve is identical too.
    assert_eq!(
        differential_cumulative(&h_raw).values,
        differential_cumulative(&h_anon).values
    );
}

#[test]
fn anonymized_correlation_recovers_raw_overlap() {
    let s = scenario();
    let w0 = capture_window(s, &s.caida_windows[0]);
    let w1 = capture_window(s, &s.caida_windows[1]);
    let srcs = |w: &obscor::telescope::TelescopeWindow| {
        let mut v: Vec<u32> = w.window.packets.iter().map(|p| p.src.0).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let (a, b) = (srcs(&w0), srcs(&w1));
    let truth = raw_overlap(&a, &b);
    assert!(truth > 0, "six-week windows must share beam sources");

    let holder_a = Holder::new("a", &[1u8; 32]);
    let holder_b = Holder::new("b", &[2u8; 32]);
    let (pub_a, pub_b) = (holder_a.publish(&a), holder_b.publish(&b));

    // Naive anonymized intersection is (essentially) empty.
    assert!(
        raw_overlap(&pub_a, &pub_b) * 100 < truth,
        "different schemes must not correlate"
    );

    // Workflow 2: common scheme.
    let common = CryptoPan::new(&[3u8; 32]);
    let ca = holder_a.reanonymize_subset(&pub_a, &common, pub_a.len()).unwrap();
    let cb = holder_b.reanonymize_subset(&pub_b, &common, pub_b.len()).unwrap();
    assert_eq!(raw_overlap(&ca, &cb), truth);

    // Workflow 3: transformation tables.
    let ta = holder_a.transformation_table(&pub_a, &common);
    let tb = holder_b.transformation_table(&pub_b, &common);
    assert_eq!(
        raw_overlap(&ta.translate_all(&pub_a), &tb.translate_all(&pub_b)),
        truth
    );
}

#[test]
fn prefix_structure_survives_anonymization() {
    // CryptoPAN's defining property on real traffic: sources from the
    // same /16 stay together under anonymization.
    let s = scenario();
    let w = capture_window(s, &s.caida_windows[0]);
    let cp = CryptoPan::new(&[0x33u8; 32]);
    let mut srcs: Vec<u32> = w.window.packets.iter().map(|p| p.src.0).collect();
    srcs.sort_unstable();
    srcs.dedup();
    for pair in srcs.windows(2).take(500) {
        let common_raw = (pair[0] ^ pair[1]).leading_zeros();
        let common_anon = (cp.anonymize(pair[0]) ^ cp.anonymize(pair[1])).leading_zeros();
        assert_eq!(common_raw, common_anon, "prefix length changed for {pair:?}");
    }
}
