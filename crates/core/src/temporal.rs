//! Figs 5 & 6: temporal correlation curves.
//!
//! For each log2 degree bin of each telescope window, the fraction of the
//! bin's sources found in the honeyfarm's source set of every month of
//! the 15-month span — overlap as a function of the month lag `t − t0`.

use crate::degree::WindowDegrees;
use obscor_assoc::{KeySet, MonthMatrix, NumKeySet};
use obscor_stats::binning::bin_representative;

/// One temporal correlation curve (one window × one degree bin).
#[derive(Clone, Debug, PartialEq)]
pub struct TemporalCurve {
    /// Window label (`t0`).
    pub window_label: String,
    /// Window coordinate in months.
    pub coord: f64,
    /// Degree bin index.
    pub bin: u32,
    /// Representative degree `d_i = 2^i`.
    pub d: u64,
    /// Sources in the bin.
    pub n_sources: usize,
    /// Month indices, in grid order.
    pub months: Vec<usize>,
    /// Month lags `t − t0` (month midpoints minus window coordinate).
    pub lags: Vec<f64>,
    /// Fraction of the bin's sources in each month's honeyfarm set.
    pub fractions: Vec<f64>,
}

impl TemporalCurve {
    /// The fraction at the month closest to zero lag.
    pub fn peak_fraction(&self) -> f64 {
        let mut best = (f64::INFINITY, 0.0);
        for (&lag, &frac) in self.lags.iter().zip(&self.fractions) {
            if lag.abs() < best.0 {
                best = (lag.abs(), frac);
            }
        }
        best.1
    }
}

/// Compute the temporal curves of one window against all honeyfarm
/// months (`monthly_sources[m]` is month `m`'s row-key set).
///
/// Dispatching wrapper: when every monthly key parses as a dotted-quad IP
/// the 15-month × per-bin overlap grid runs one-sweep over a compressed
/// month×source membership matrix ([`temporal_curves_bits`]); otherwise it
/// falls back to the string-keyed oracle ([`temporal_curves_str`]). The
/// pairwise sorted-vector path ([`temporal_curves_ip`]) is retained as the
/// numeric differential oracle. Callers running many windows against the
/// same months should build one [`MonthMatrix`] and call the `_bits`
/// variant directly — that is what the pipeline does.
pub fn temporal_curves(
    window: &WindowDegrees,
    monthly_sources: &[KeySet],
    min_bin_sources: usize,
) -> Vec<TemporalCurve> {
    let numeric: Option<Vec<NumKeySet>> =
        monthly_sources.iter().map(NumKeySet::from_key_set).collect();
    match numeric {
        Some(months) => {
            temporal_curves_bits(window, &MonthMatrix::from_months(&months), min_bin_sources)
        }
        None => temporal_curves_str(window, monthly_sources, min_bin_sources),
    }
}

/// Compressed-bitmap fast path of [`temporal_curves`]: instead of one
/// pairwise intersection per month (each re-walking the bin's keys), a
/// single [`MonthMatrix::overlap_counts`] sweep visits every bin chunk
/// once and scores it against all months sharing that chunk, with
/// word-parallel popcounts on dense container pairs. Each count is the
/// exact integer the pairwise path produces and each fraction divides the
/// same two integers, so curves are bit-identical to
/// [`temporal_curves_ip`].
pub fn temporal_curves_bits(
    window: &WindowDegrees,
    months_matrix: &MonthMatrix,
    min_bin_sources: usize,
) -> Vec<TemporalCurve> {
    let _span = obscor_obs::span("core.temporal_curves");
    let n_months = months_matrix.n_months();
    let curves: Vec<TemporalCurve> = window
        .bin_bit_sets(min_bin_sources)
        .into_iter()
        .map(|(bin, keys)| {
            let months: Vec<usize> = (0..n_months).collect();
            let lags: Vec<f64> =
                months.iter().map(|&m| (m as f64 + 0.5) - window.coord).collect();
            let n_sources = keys.len();
            let counts = months_matrix.overlap_counts(&keys);
            // Bins are non-empty by construction; the guard keeps the
            // empty-probe convention aligned with `overlap_fraction`.
            let fractions: Vec<f64> = counts
                .into_iter()
                .map(|c| if n_sources == 0 { 0.0 } else { c as f64 / n_sources as f64 })
                .collect();
            TemporalCurve {
                window_label: window.label.clone(),
                coord: window.coord,
                bin,
                d: bin_representative(bin),
                n_sources,
                months,
                lags,
                fractions,
            }
        })
        .collect();
    obscor_obs::counter("core.temporal_curves.curves_total").add(curves.len() as u64);
    curves
}

/// Numeric fast path of [`temporal_curves`]: every per-bin × per-month
/// overlap is a `u32` merge/gallop count with no string allocation.
pub fn temporal_curves_ip(
    window: &WindowDegrees,
    monthly_sources: &[NumKeySet],
    min_bin_sources: usize,
) -> Vec<TemporalCurve> {
    let _span = obscor_obs::span("core.temporal_curves");
    let curves: Vec<TemporalCurve> = window
        .bin_ip_sets(min_bin_sources)
        .into_iter()
        .map(|(bin, keys)| {
            let months: Vec<usize> = (0..monthly_sources.len()).collect();
            let lags: Vec<f64> =
                months.iter().map(|&m| (m as f64 + 0.5) - window.coord).collect();
            let fractions: Vec<f64> = months
                .iter()
                .map(|&m| keys.overlap_fraction(&monthly_sources[m]).unwrap_or(0.0))
                .collect();
            TemporalCurve {
                window_label: window.label.clone(),
                coord: window.coord,
                bin,
                d: bin_representative(bin),
                n_sources: keys.len(),
                months,
                lags,
                fractions,
            }
        })
        .collect();
    obscor_obs::counter("core.temporal_curves.curves_total").add(curves.len() as u64);
    curves
}

/// String-keyed path of [`temporal_curves`], kept as the differential
/// oracle for the numeric fast path (and the fallback for key sets whose
/// keys are not dotted-quad IPs).
pub fn temporal_curves_str(
    window: &WindowDegrees,
    monthly_sources: &[KeySet],
    min_bin_sources: usize,
) -> Vec<TemporalCurve> {
    let _span = obscor_obs::span("core.temporal_curves");
    let curves: Vec<TemporalCurve> = window
        .bin_key_sets(min_bin_sources)
        .into_iter()
        .map(|(bin, keys)| {
            let months: Vec<usize> = (0..monthly_sources.len()).collect();
            let lags: Vec<f64> =
                months.iter().map(|&m| (m as f64 + 0.5) - window.coord).collect();
            let fractions: Vec<f64> = months
                .iter()
                .map(|&m| keys.overlap_fraction(&monthly_sources[m]).unwrap_or(0.0))
                .collect();
            TemporalCurve {
                window_label: window.label.clone(),
                coord: window.coord,
                bin,
                d: bin_representative(bin),
                n_sources: keys.len(),
                months,
                lags,
                fractions,
            }
        })
        .collect();
    obscor_obs::counter("core.temporal_curves.curves_total").add(curves.len() as u64);
    curves
}

/// Select the Fig 5 curve: the first window's bin at degrees
/// `(sqrt(N_V)/2, sqrt(N_V)]` (the paper's `2^14 ≤ d < 2^15` for
/// `N_V = 2^30`), if measured.
pub fn fig5_curve<'a>(
    curves: &'a [TemporalCurve],
    first_window_label: &str,
    bright_log2: f64,
) -> Option<&'a TemporalCurve> {
    let target_bin = bright_log2.round() as u32;
    curves
        .iter()
        .find(|c| c.window_label == first_window_label && c.bin == target_bin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_assoc::convert::ip_key;

    fn window() -> WindowDegrees {
        let mut degrees: Vec<(u32, u64)> = (1..=10u32).map(|ip| (ip, 4u64)).collect();
        degrees.extend((21..=30u32).map(|ip| (ip, 256u64)));
        WindowDegrees { label: "w0".into(), coord: 4.5, month: 4, degrees }
    }

    fn months(present_per_month: &[&[u32]]) -> Vec<KeySet> {
        present_per_month
            .iter()
            .map(|ips| ips.iter().map(|&ip| ip_key(ip)).collect())
            .collect()
    }

    #[test]
    fn curves_have_one_point_per_month() {
        let w = window();
        let gn = months(&[&[1, 2], &[1], &[], &[21, 22, 23]]);
        let curves = temporal_curves(&w, &gn, 1);
        assert_eq!(curves.len(), 2); // bins 2 and 8
        for c in &curves {
            assert_eq!(c.months.len(), 4);
            assert_eq!(c.lags.len(), 4);
            assert_eq!(c.fractions.len(), 4);
        }
    }

    #[test]
    fn fractions_match_overlaps() {
        let w = window();
        let gn = months(&[&[1, 2], &[1], &[], &[21, 22, 23]]);
        let curves = temporal_curves(&w, &gn, 1);
        let dim = curves.iter().find(|c| c.bin == 2).unwrap();
        assert!((dim.fractions[0] - 0.2).abs() < 1e-12);
        assert!((dim.fractions[1] - 0.1).abs() < 1e-12);
        assert_eq!(dim.fractions[2], 0.0);
        let bright = curves.iter().find(|c| c.bin == 8).unwrap();
        assert!((bright.fractions[3] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn numeric_and_string_paths_are_bit_identical() {
        let w = window();
        let gn = months(&[&[1, 2], &[1], &[], &[21, 22, 23], &[1, 21, 99]]);
        let via_str = temporal_curves_str(&w, &gn, 1);
        let gn_num: Vec<NumKeySet> =
            gn.iter().map(|ks| NumKeySet::from_key_set(ks).unwrap()).collect();
        let via_num = temporal_curves_ip(&w, &gn_num, 1);
        assert_eq!(via_str, via_num);
        let mm = MonthMatrix::from_months(&gn_num);
        mm.check_invariants().unwrap();
        let via_bits = temporal_curves_bits(&w, &mm, 1);
        assert_eq!(via_num, via_bits);
        // The public entry point dispatches to the one-sweep path here.
        assert_eq!(temporal_curves(&w, &gn, 1), via_bits);
    }

    #[test]
    fn unparseable_keys_fall_back_to_the_string_path() {
        let w = window();
        let mut gn = months(&[&[1, 2], &[1]]);
        gn[1] = ["not-an-ip".to_string(), ip_key(1)].into_iter().collect();
        let curves = temporal_curves(&w, &gn, 1);
        let dim = curves.iter().find(|c| c.bin == 2).unwrap();
        assert!((dim.fractions[0] - 0.2).abs() < 1e-12);
        assert!((dim.fractions[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn lags_are_centered_on_window() {
        let w = window();
        let gn = months(&[&[], &[], &[], &[], &[], &[]]);
        let curves = temporal_curves(&w, &gn, 1);
        let lags = &curves[0].lags;
        // Month 4 midpoint = 4.5 = window coord -> lag 0.
        assert!((lags[4] - 0.0).abs() < 1e-12);
        assert!((lags[0] + 4.0).abs() < 1e-12);
        assert!((lags[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn peak_fraction_is_at_zero_lag() {
        let w = window();
        let gn = months(&[&[], &[], &[], &[], &[1, 2, 3, 4, 5], &[]]);
        let curves = temporal_curves(&w, &gn, 1);
        let dim = curves.iter().find(|c| c.bin == 2).unwrap();
        assert!((dim.peak_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fig5_selection_picks_the_bright_knee_bin() {
        let w = window();
        let gn = months(&[&[]]);
        let curves = temporal_curves(&w, &gn, 1);
        // bright_log2 = 8 -> bin 8 (degrees 129..=256).
        let c = fig5_curve(&curves, "w0", 8.0).unwrap();
        assert_eq!(c.bin, 8);
        assert!(fig5_curve(&curves, "nope", 8.0).is_none());
        assert!(fig5_curve(&curves, "w0", 3.0).is_none());
    }
}
