// Audit fixture: seeds two `invariant-coverage` violations.

pub struct Grid {
    n: usize,
}

impl Grid {
    // Seeded violation: no test corpus in this fixture tree exercises
    // Grid::new together with check_invariants.
    pub fn new(n: usize) -> Self {
        Grid { n }
    }

    pub fn check_invariants(&self) -> Result<(), String> {
        if self.n < usize::MAX {
            Ok(())
        } else {
            Err("grid too large".into())
        }
    }
}

pub struct Loose;

impl Loose {
    // Seeded violation: Loose has a public constructor but defines no
    // check_invariants method at all.
    pub fn make() -> Self {
        Loose
    }
}
