//! The three metric primitives: monotonic counters, gauges, and
//! log2-bucketed histograms.
//!
//! All three are lock-free (plain atomics) so they can sit on hot paths —
//! a leaf compaction or a rayon-parallel fit records without taking any
//! lock. Registry lookups (name → metric) do lock; callers on hot paths
//! hold the returned `Arc` across iterations instead of re-resolving.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket `0` holds zero-valued observations,
/// bucket `i` (1..=64) holds values `v` with `floor(log2 v) == i - 1`,
/// i.e. `v` in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed); // ordering: monotonic counter; readers only need eventual visibility
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // ordering: snapshot read; staleness is acceptable for metrics
    }
}

/// A last-write-wins instantaneous value (sizes, configuration knobs).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed); // ordering: last-write-wins gauge; no reader orders against this store
    }

    /// Raise the value to at least `v`.
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed); // ordering: monotonic max; commutative RMW needs no ordering
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // ordering: snapshot read; staleness is acceptable for metrics
    }
}

/// A log2-bucketed histogram of `u64` observations (durations in
/// nanoseconds, sizes in entries) with total count, sum, min, and max.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index of value `v` (see [`HISTOGRAM_BUCKETS`]).
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            // 1 + floor(log2 v); v >= 1 so ilog2 is defined, max 63 -> 64.
            1 + v.ilog2() as usize
        }
    }

    /// The lower bound of bucket `i`'s value range (0 for bucket 0).
    pub fn bucket_floor(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed); // ordering: per-bucket count; independent of other cells
        self.count.fetch_add(1, Ordering::Relaxed); // ordering: observation count; skew vs sum is tolerated in snapshots
        self.sum.fetch_add(v, Ordering::Relaxed); // ordering: running sum; commutative RMW needs no ordering
        self.min.fetch_min(v, Ordering::Relaxed); // ordering: monotonic min; commutative RMW needs no ordering
        self.max.fetch_max(v, Ordering::Relaxed); // ordering: monotonic max; commutative RMW needs no ordering
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // ordering: snapshot read; staleness is acceptable for metrics
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed) // ordering: snapshot read; staleness is acceptable for metrics
    }

    /// Smallest observed value, if any observation was made.
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed)) // ordering: snapshot read; staleness is acceptable for metrics
        }
    }

    /// Largest observed value, if any observation was made.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed)) // ordering: snapshot read; staleness is acceptable for metrics
        }
    }

    /// Occupied `(bucket index, count)` pairs in bucket order.
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed); // ordering: snapshot read; buckets may skew vs count during updates
                if n == 0 {
                    None
                } else {
                    Some((i as u32, n))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_overwrites_and_maxes() {
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        g.set_max(10);
        g.set_max(5);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(Histogram::bucket_of(Histogram::bucket_floor(i)), i);
        }
    }

    #[test]
    fn histogram_summary_statistics() {
        let h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        for v in [0u64, 1, 5, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (3, 1), (10, 1)]);
    }

    #[test]
    fn histogram_is_thread_safe() {
        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for v in 0..1000u64 {
                        h.observe(v);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().expect("worker panicked");
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.sum(), 4 * (999 * 1000 / 2));
    }
}
