//! Constant-packet windowing.
//!
//! "To reduce statistical fluctuations, the streaming data should be
//! partitioned so that for any chosen time window all data sets have the
//! same number of valid packets." A [`ConstantPacketWindower`] cuts a
//! packet stream into [`Window`]s of exactly `N_V` *valid* packets (as
//! judged by a [`PacketFilter`]); the wall-clock duration of each window
//! varies with traffic intensity — Table I's 997–1594-second windows for
//! `N_V = 2^30`.

use crate::filter::PacketFilter;
use crate::packet::Packet;

/// A window of exactly `N_V` valid packets.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Window {
    /// Zero-based window sequence number within the stream.
    pub index: usize,
    /// The valid packets, in arrival order. `packets.len() == n_v` always.
    pub packets: Vec<Packet>,
    /// Packets rejected by the validity filter while filling this window.
    pub discarded: u64,
}

impl Window {
    /// Timestamp of the first packet (microseconds).
    pub fn start_micros(&self) -> u64 {
        self.packets.first().map(|p| p.ts_micros).unwrap_or(0)
    }

    /// Wall-clock span of the window in seconds (Table I's "Duration").
    pub fn duration_secs(&self) -> f64 {
        match (self.packets.first(), self.packets.last()) {
            (Some(a), Some(b)) => (b.ts_micros.saturating_sub(a.ts_micros)) as f64 / 1e6,
            _ => 0.0,
        }
    }
}

/// Iterator adapter yielding constant-packet windows from a packet stream.
pub struct ConstantPacketWindower<I, F> {
    inner: I,
    filter: F,
    n_v: usize,
    next_index: usize,
    /// Valid packets accumulated past the last full window.
    remainder: Vec<Packet>,
    remainder_discarded: u64,
    exhausted: bool,
}

impl<I: Iterator<Item = Packet>, F: PacketFilter> ConstantPacketWindower<I, F> {
    /// Cut `stream` into windows of `n_v` packets accepted by `filter`.
    ///
    /// # Panics
    /// Panics if `n_v == 0`.
    pub fn new(stream: I, filter: F, n_v: usize) -> Self {
        assert!(n_v > 0, "window size must be positive");
        Self {
            inner: stream,
            filter,
            n_v,
            next_index: 0,
            remainder: Vec::new(),
            remainder_discarded: 0,
            exhausted: false,
        }
    }

    /// Valid packets that arrived after the last complete window (only
    /// meaningful once iteration has finished).
    pub fn remainder(&self) -> &[Packet] {
        &self.remainder
    }
}

impl<I: Iterator<Item = Packet>, F: PacketFilter> Iterator for ConstantPacketWindower<I, F> {
    type Item = Window;

    fn next(&mut self) -> Option<Window> {
        if self.exhausted {
            return None;
        }
        let mut packets = std::mem::take(&mut self.remainder);
        packets.reserve(self.n_v.saturating_sub(packets.len()));
        let mut discarded = self.remainder_discarded;
        self.remainder_discarded = 0;
        for p in self.inner.by_ref() {
            if !self.filter.accept(&p) {
                discarded += 1;
                continue;
            }
            packets.push(p);
            if packets.len() == self.n_v {
                let w = Window { index: self.next_index, packets, discarded };
                self.next_index += 1;
                return Some(w);
            }
        }
        // Stream ended mid-window: keep the partial tail available.
        self.exhausted = true;
        self.remainder = packets;
        self.remainder_discarded = discarded;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::AcceptAll;
    use crate::packet::{Ip4, Protocol};

    fn stream(n: usize) -> impl Iterator<Item = Packet> {
        (0..n).map(|i| Packet {
            ts_micros: 1_000_000 + (i as u64) * 500,
            src: Ip4(i as u32),
            dst: Ip4(0x2C000000 | (i as u32 & 0xFF)),
            proto: Protocol::Tcp,
            src_port: 1,
            dst_port: 2,
            length: 40,
        })
    }

    #[test]
    fn exact_windows() {
        let windows: Vec<_> =
            ConstantPacketWindower::new(stream(100), AcceptAll, 25).collect();
        assert_eq!(windows.len(), 4);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.index, i);
            assert_eq!(w.packets.len(), 25);
            assert_eq!(w.discarded, 0);
        }
    }

    #[test]
    fn partial_tail_is_not_emitted() {
        let mut windower = ConstantPacketWindower::new(stream(90), AcceptAll, 25);
        let windows: Vec<_> = windower.by_ref().collect();
        assert_eq!(windows.len(), 3);
        assert_eq!(windower.remainder().len(), 15);
    }

    #[test]
    fn filter_discards_count() {
        // Accept only even sources: half the packets are invalid.
        let f = |p: &Packet| p.src.0.is_multiple_of(2);
        let windows: Vec<_> = ConstantPacketWindower::new(stream(100), f, 25).collect();
        assert_eq!(windows.len(), 2);
        // Window 0 fills at source 48 having skipped odds 1..47 (24
        // discards); window 1 fills at source 98 having skipped odds
        // 49..97 (25 discards). Odd source 99 lands in the remainder.
        assert_eq!(windows[0].discarded, 24);
        assert_eq!(windows[1].discarded, 25);
        assert!(windows.iter().all(|w| w.packets.iter().all(|p| p.src.0 % 2 == 0)));
    }

    #[test]
    fn duration_varies_with_content() {
        let windows: Vec<_> =
            ConstantPacketWindower::new(stream(50), AcceptAll, 50).collect();
        assert_eq!(windows.len(), 1);
        let w = &windows[0];
        assert_eq!(w.start_micros(), 1_000_000);
        assert!((w.duration_secs() - 49.0 * 500.0 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let windows: Vec<_> =
            ConstantPacketWindower::new(stream(0), AcceptAll, 10).collect();
        assert!(windows.is_empty());
    }

    #[test]
    #[should_panic(expected = "window size")]
    fn zero_window_panics() {
        let _ = ConstantPacketWindower::new(stream(1), AcceptAll, 0);
    }

    #[test]
    fn window_size_one() {
        let windows: Vec<_> = ConstantPacketWindower::new(stream(3), AcceptAll, 1).collect();
        assert_eq!(windows.len(), 3);
        assert!(windows.iter().all(|w| w.packets.len() == 1));
    }
}
