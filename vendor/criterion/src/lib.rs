//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — backed by a
//! simple median-of-samples wall-clock harness instead of criterion's full
//! statistical machinery. Results print to stderr as `name  median ns/iter`.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Declared throughput of a benchmark, echoed in its report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An identifier that is only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: usize,
    median_ns: f64,
}

impl Bencher {
    /// Time `routine`, keeping the median of `samples` batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then timed batches.
        let _ = std::hint::black_box(routine());
        let mut batch = 1u64;
        let mut timings = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                let _ = std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64 / batch as f64;
            timings.push(elapsed);
            // Grow the batch until one batch costs ~1ms, for timer resolution.
            if elapsed * (batch as f64) < 1.0e6 {
                batch = (batch * 2).min(1 << 20);
            }
        }
        timings.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.median_ns = timings[timings.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(2);
        self
    }

    /// Record the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        self.parent.run_one(&label, self.throughput, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        self.parent.run_one(&label, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), parent: self, throughput: None }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        label: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut b = Bencher { samples: self.sample_size, median_ns: f64::NAN };
        f(&mut b);
        let rate = match throughput {
            Some(Throughput::Elements(n)) if b.median_ns > 0.0 => {
                format!("  ({:.1} Melem/s)", n as f64 / b.median_ns * 1e3)
            }
            Some(Throughput::Bytes(n)) if b.median_ns > 0.0 => {
                format!("  ({:.1} MB/s)", n as f64 / b.median_ns * 1e3)
            }
            _ => String::new(),
        };
        eprintln!("bench: {label:<48} {:>14.1} ns/iter{rate}", b.median_ns);
    }

    /// Compatibility hook for `criterion_main!`; no persistent reports here.
    pub fn final_summary(&self) {}
}

/// Declare a group-runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 5), &5u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }
}
